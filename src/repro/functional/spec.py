"""Specification inference for functional DDBs: word congruences.

Section 3.3 defines relational specifications for functional deductive
databases in general; the paper's reference [6] computes them in
PSPACE.  This module implements the observable core of that idea for
models produced by the depth-bounded evaluator: a Myhill–Nerode-style
*word congruence*.

Two canonical words ``u ≡ v`` when every extension behaves identically:
``state(e·u) = state(e·v)`` for all extension words ``e`` (checked up
to the available depth — the congruence is *observed*, like the period
detection of the temporal engine, and exact whenever the model really
is congruence-finite within the window).  The inferred specification is

* ``T`` — one representative per congruence class (BFS-least),
* ``W`` — word rewrite rules ``s·r' → r`` collapsing each one-symbol
  extension of a representative onto its class representative,
* ``B`` — the model facts at representative words,

which answers membership for arbitrarily deep words exactly as the TDD
specification does — when the congruence is finite.  The single-symbol
case degenerates to the temporal period construction; branching
alphabets may have *no* finite congruence (then inference reports
failure), which is the Section 7 obstacle made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from ..lang.errors import EvaluationError
from .engine import FFact, word_states
from .rewrite import WordRewriteSystem, WordRule
from .terms import Word


@dataclass(frozen=True)
class WordSpec:
    """An inferred (T, B, W) for a functional DDB model."""

    representatives: tuple[Word, ...]
    primary: frozenset[FFact]
    rewrites: WordRewriteSystem
    observed_depth: int

    def holds(self, fact: FFact) -> bool:
        """Membership for arbitrarily deep words, via canonicalisation."""
        if fact.word is None:
            return fact in self.primary
        canonical = self.rewrites.normalize(fact.word)
        return FFact(fact.pred, canonical, fact.args) in self.primary

    @property
    def size(self) -> int:
        return (len(self.representatives) + len(self.primary)
                + len(self.rewrites.rules))


def _state_map(model: Iterable[FFact], alphabet: Sequence[str],
               depth: int) -> dict[Word, frozenset]:
    states = word_states(model)
    complete: dict[Word, frozenset] = {}
    frontier: list[Word] = [()]
    for _ in range(depth + 1):
        next_frontier = []
        for word in frontier:
            complete[word] = states.get(word, frozenset())
            next_frontier.extend((s,) + word for s in alphabet)
        frontier = next_frontier
    return complete


def infer_word_spec(model: Iterable[FFact], alphabet: Sequence[str],
                    depth: int,
                    evidence: int = 2) -> Union[WordSpec, None]:
    """Infer a finite specification from a depth-bounded model.

    ``depth`` is the model's evaluation bound; ``evidence`` reserves
    that many levels of extensions for congruence checking (words
    longer than ``depth - evidence`` are not classified, only used as
    witnesses).  Returns None when the observed congruence does not
    close — either genuinely infinite (Section 7) or needing a larger
    depth.
    """
    model = list(model)
    states = _state_map(model, alphabet, depth)
    classify_depth = depth - evidence
    if classify_depth < 0:
        raise EvaluationError("depth too small for the evidence margin")

    def signature(word: Word) -> tuple:
        """Observable behaviour: states of all extensions up to the
        evidence budget.  The budget is fixed (not maximal) so words of
        different lengths have comparable signatures — e.g. ``f(f(0))``
        must be comparable with ``0`` in the even example."""
        rows = []
        frontier: list[Word] = [()]
        for _ in range(evidence + 1):
            rows.extend(states[e + word] for e in frontier)
            frontier = [(s,) + e for e in frontier for s in alphabet]
        return tuple(rows)

    # BFS over words; first member of each signature class represents it.
    representatives: list[Word] = []
    rep_of: dict[tuple, Word] = {}
    rules: list[WordRule] = []
    frontier = [()]
    closed = True
    for level in range(classify_depth + 1):
        next_frontier = []
        for word in frontier:
            sig = signature(word)
            known = rep_of.get(sig)
            if known is not None:
                rules.append(WordRule(word, known))
                continue
            rep_of[sig] = word
            representatives.append(word)
            next_frontier.extend((s,) + word for s in alphabet)
        if level == classify_depth and next_frontier:
            # Unclassified representatives still spawn extensions: the
            # congruence did not close within the window.
            closed = False
        frontier = next_frontier
    if not closed:
        return None

    system = WordRewriteSystem(rules)
    primary = frozenset(
        fact for fact in model
        if fact.word is None or fact.word in set(representatives)
    )
    return WordSpec(
        representatives=tuple(representatives),
        primary=primary,
        rewrites=system,
        observed_depth=depth,
    )
