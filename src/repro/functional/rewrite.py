"""Word rewrite systems: the ``W`` of an FDDB relational specification.

Section 3.3 defines relational specifications for *functional* deductive
databases in general: ``W`` is a finite set of ground rewrite rules
whose both sides are terms of the distinguished sort.  With several
unary symbols, ground terms are words (outermost symbol first) and a
subterm is a *suffix* of the word; a rule ``l → r`` applies to ``w``
when ``w = u·l``, producing ``u·r``.

For the single-symbol TDD case this degenerates to
:class:`repro.rewrite.RewriteSystem` (words of one repeated letter are
unary numerals).  Termination is guaranteed for length-decreasing
systems; :meth:`normalize` additionally guards against divergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..lang.errors import EvaluationError
from .terms import Word


@dataclass(frozen=True)
class WordRule:
    """A ground word rewrite rule ``lhs → rhs`` (applied to suffixes)."""

    lhs: Word
    rhs: Word

    @property
    def is_decreasing(self) -> bool:
        return len(self.rhs) < len(self.lhs)

    def applies_to(self, word: Word) -> bool:
        k = len(self.lhs)
        return k <= len(word) and word[len(word) - k:] == self.lhs

    def apply(self, word: Word) -> Word:
        return word[:len(word) - len(self.lhs)] + self.rhs

    def __str__(self) -> str:
        def render(w: Word) -> str:
            return "".join(w) + "·0" if w else "0"
        return f"{render(self.lhs)} -> {render(self.rhs)}"


class WordRewriteSystem:
    """A finite set of ground word rewrite rules."""

    def __init__(self, rules: Sequence[WordRule]):
        self.rules = tuple(sorted(set(rules),
                                  key=lambda r: (r.lhs, r.rhs)))

    @property
    def is_terminating(self) -> bool:
        """Length-decreasing rules ⇒ terminating (sufficient check)."""
        return all(rule.is_decreasing for rule in self.rules)

    def step(self, word: Word) -> Word | None:
        for rule in self.rules:
            if rule.applies_to(word):
                return rule.apply(word)
        return None

    def normalize(self, word: Word, max_steps: int = 100_000) -> Word:
        current = tuple(word)
        for _ in range(max_steps):
            nxt = self.step(current)
            if nxt is None:
                return current
            current = nxt
        raise EvaluationError(
            f"rewriting of {word} did not terminate in {max_steps} steps"
        )

    def is_canonical(self, word: Word) -> bool:
        return self.step(tuple(word)) is None

    def canonical_forms(self, alphabet: Sequence[str],
                        max_depth: int) -> list[Word]:
        """All canonical words up to ``max_depth`` — the representative
        set ``T`` a specification over this system would need.

        Exponential in ``max_depth`` in the worst case: exactly the
        Section 7 obstacle.
        """
        out: list[Word] = []
        frontier: list[Word] = [()]
        for _ in range(max_depth + 1):
            next_frontier: list[Word] = []
            for word in frontier:
                if self.is_canonical(word):
                    out.append(word)
                for symbol in alphabet:
                    next_frontier.append((symbol,) + word)
            frontier = next_frontier
        return out

    def __str__(self) -> str:
        return "{" + ", ".join(str(r) for r in self.rules) + "}"
