"""Bottom-up evaluation of functional deductive databases.

FDDB rules look like TDD rules but the distinguished argument carries
words over a multi-symbol alphabet (:mod:`repro.functional.terms`).
The Herbrand universe within depth ``d`` has ``|Σ|^d`` ground words, so
the engine evaluates the depth-bounded fixpoint: every derived fact
whose word exceeds the bound is discarded — the direct analogue of
algorithm BT's window truncation, with the crucial difference the
paper's Section 7 points at: the bounded universe is *exponential* in
the bound, so no polynomial-window argument can exist.

The API is programmatic (no concrete syntax): build :class:`FAtom` /
:class:`FRule` values directly, as the tests and experiment E13 do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

from ..lang.terms import Const, DataTerm, Var
from .terms import FTerm, Word


@dataclass(frozen=True, slots=True)
class FFact:
    """A ground functional fact: predicate, word, data constants."""

    pred: str
    word: Union[Word, None]
    args: tuple[Union[str, int], ...] = ()

    def __str__(self) -> str:
        parts = []
        if self.word is not None:
            parts.append(str(FTerm(None, self.word)))
        parts.extend(str(a) for a in self.args)
        return f"{self.pred}({', '.join(parts)})" if parts else self.pred


@dataclass(frozen=True, slots=True)
class FAtom:
    """A functional or ordinary atom in a rule."""

    pred: str
    fterm: Union[FTerm, None]
    args: tuple[DataTerm, ...] = ()

    def __str__(self) -> str:
        parts = []
        if self.fterm is not None:
            parts.append(str(self.fterm))
        parts.extend(str(a) for a in self.args)
        return f"{self.pred}({', '.join(parts)})" if parts else self.pred


@dataclass(frozen=True, slots=True)
class FRule:
    head: FAtom
    body: tuple[FAtom, ...] = ()

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(a) for a in self.body)}."


Binding = dict[str, object]  # data vars -> value, functional vars -> Word


def _match_atom(atom: FAtom, fact: FFact,
                binding: Binding) -> Union[Binding, None]:
    if atom.pred != fact.pred or len(atom.args) != len(fact.args):
        return None
    if (atom.fterm is None) != (fact.word is None):
        return None
    new: Union[Binding, None] = None
    if atom.fterm is not None:
        assert fact.word is not None
        matched, word_binding = atom.fterm.matches(fact.word)
        if not matched:
            return None
        if atom.fterm.var is not None:
            bound = binding.get(atom.fterm.var)
            if bound is None:
                new = dict(binding)
                new[atom.fterm.var] = word_binding
            elif bound != word_binding:
                return None
    for pattern, value in zip(atom.args, fact.args):
        if isinstance(pattern, Const):
            if pattern.value != value:
                return None
        else:
            source = new if new is not None else binding
            bound = source.get(pattern.name)
            if bound is None:
                if new is None:
                    new = dict(binding)
                new[pattern.name] = value
            elif bound != value:
                return None
    return new if new is not None else binding


def _instantiate_head(head: FAtom, binding: Binding) -> FFact:
    word: Union[Word, None]
    if head.fterm is None:
        word = None
    elif head.fterm.var is None:
        word = head.fterm.word
    else:
        base = binding[head.fterm.var]
        assert isinstance(base, tuple)
        word = head.fterm.word + base
    args = tuple(
        binding[a.name] if isinstance(a, Var) else a.value  # type: ignore
        for a in head.args
    )
    return FFact(head.pred, word, args)


def _satisfy(body: Sequence[FAtom], facts: set[FFact],
             binding: Binding) -> Iterator[Binding]:
    if not body:
        yield binding
        return
    first, rest = body[0], body[1:]
    for fact in facts:
        extended = _match_atom(first, fact, binding)
        if extended is not None:
            yield from _satisfy(rest, facts, extended)


def ffixpoint(rules: Sequence[FRule], facts: Iterable[FFact],
              max_depth: int) -> set[FFact]:
    """The depth-bounded least fixpoint of an FDDB.

    Facts whose word is longer than ``max_depth`` are discarded — the
    FDDB analogue of BT's window truncation.
    """
    model: set[FFact] = set()
    for fact in facts:
        if fact.word is None or len(fact.word) <= max_depth:
            model.add(fact)
    changed = True
    while changed:
        changed = False
        for rule in rules:
            if not rule.body:
                fact = _instantiate_head(rule.head, {})
                if (fact.word is None or len(fact.word) <= max_depth) \
                        and fact not in model:
                    model.add(fact)
                    changed = True
                continue
            for binding in _satisfy(rule.body, set(model), {}):
                fact = _instantiate_head(rule.head, binding)
                if fact.word is not None and len(fact.word) > max_depth:
                    continue
                if fact not in model:
                    model.add(fact)
                    changed = True
    return model


def word_states(model: Iterable[FFact]) -> dict[Word, frozenset]:
    """The FDDB analogue of states: word ↦ {(pred, args)} holding there.

    For TDDs the number of distinct states is what periodicity bounds;
    for FDDBs the *domain* of this map can already be exponential in the
    depth bound, which is why the Section 4 machinery does not carry
    over (Section 7).
    """
    by_word: dict[Word, set] = {}
    for fact in model:
        if fact.word is not None:
            by_word.setdefault(fact.word, set()).add(
                (fact.pred, fact.args))
    return {word: frozenset(items) for word, items in by_word.items()}
