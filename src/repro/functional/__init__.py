"""Functional deductive databases — the Section 7 generalization.

TDDs with several unary function symbols in the distinguished argument.
The paper reports (via reference [6]) that relational specifications
still exist for this class but the Theorem 4.1 tractability equivalence
fails and no tractable subclasses are known; this package makes those
observations executable (experiment E13): a depth-bounded evaluator, the
word-level state map whose domain explodes, and word rewrite systems —
the general form of a specification's ``W``.
"""

from .engine import FAtom, FFact, FRule, ffixpoint, word_states
from .rewrite import WordRewriteSystem, WordRule
from .spec import WordSpec, infer_word_spec
from .terms import FTerm, Word, fvar, ground

__all__ = [
    "FTerm", "Word", "ground", "fvar",
    "FAtom", "FFact", "FRule", "ffixpoint", "word_states",
    "WordRule", "WordRewriteSystem",
    "WordSpec", "infer_word_spec",
]
