"""Terms of functional deductive databases (Section 7 / reference [6]).

FDDBs generalise TDDs: instead of the single successor ``+1``, the
distinguished argument ranges over terms built from ``0`` with *several*
unary function symbols, e.g. ``f(g(f(0)))``.  A ground functional term
is therefore a **word** over the function alphabet (outermost symbol
first), and a non-ground term is a word applied on top of a variable.

The paper's Section 7 observes that the relational-specification
machinery still *defines* finite representations for FDDBs, but the
Theorem 4.1 equivalence (polynomial size ⇔ polynomial time) breaks and
no tractable subclasses are known; the ``repro.functional`` package
exists to make those observations executable (see experiment E13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

#: A word over the function alphabet, outermost symbol first.
Word = tuple[str, ...]


@dataclass(frozen=True, slots=True)
class FTerm:
    """A functional term ``word(var)`` or the ground ``word(0)``.

    ``FTerm(None, ("f", "g"))`` is ``f(g(0))``; ``FTerm("X", ("f",))``
    is ``f(X)``.
    """

    var: Union[str, None]
    word: Word = ()

    @property
    def is_ground(self) -> bool:
        return self.var is None

    @property
    def depth(self) -> int:
        return len(self.word)

    def apply(self, symbol: str) -> "FTerm":
        """Wrap one more function application around this term."""
        return FTerm(self.var, (symbol,) + self.word)

    def instantiate(self, word: Word) -> Word:
        """Ground the term by substituting ``word(0)`` for the variable."""
        if self.var is None:
            return self.word
        return self.word + word

    def matches(self, ground: Word) -> tuple[bool, Union[Word, None]]:
        """Match against a ground word.

        Returns ``(matched, binding)``: ``f(X)`` matches ``f(g(0))``
        with binding ``("g",)``; a ground pattern matches only itself,
        with binding None.
        """
        if self.var is None:
            return (self.word == ground, None)
        k = len(self.word)
        if len(ground) >= k and ground[:k] == self.word:
            return (True, ground[k:])
        return (False, None)

    def __str__(self) -> str:
        inner = self.var if self.var is not None else "0"
        for symbol in reversed(self.word):
            inner = f"{symbol}({inner})"
        return inner


def ground(word: Word) -> FTerm:
    """The ground functional term ``word(0)``."""
    return FTerm(None, tuple(word))


def fvar(name: str, word: Word = ()) -> FTerm:
    """The functional term ``word(name)`` over a variable."""
    return FTerm(name, tuple(word))
