"""Predicate dependency graphs, strongly connected components, recursion.

The paper's syntactic classes of Section 6 are defined in terms of the
dependency structure of a ruleset: *mutual-recursion-free* rulesets have
no two distinct predicates that depend on each other, and Theorem 6.5's
proof assigns a *level number* to every predicate of such a ruleset.  This
module provides those notions for any ruleset (temporal or not): the
dependency graph, Tarjan SCCs, recursive predicates/rules, and topological
levels.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..lang.rules import Rule


def dependency_graph(rules: Iterable[Rule]) -> dict[str, set[str]]:
    """Map each head predicate to the set of predicates it depends on.

    Both positive and negative body literals induce dependencies.  Every
    predicate occurring anywhere in the rules appears as a key (EDB
    predicates map to an empty set).
    """
    graph: dict[str, set[str]] = {}
    for rule in rules:
        deps = graph.setdefault(rule.head.pred, set())
        for atom in rule.body:
            deps.add(atom.pred)
            graph.setdefault(atom.pred, set())
        for atom in rule.negative:
            deps.add(atom.pred)
            graph.setdefault(atom.pred, set())
    return graph


def negative_edges(rules: Iterable[Rule]) -> set[tuple[str, str]]:
    """Dependency edges induced by negative literals: (head, negated)."""
    return {
        (rule.head.pred, atom.pred)
        for rule in rules
        for atom in rule.negative
    }


def strongly_connected_components(
        graph: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan's algorithm, iterative; components in reverse topological
    order (callees before callers)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[set[str]] = []
    counter = 0

    for root in graph:
        if root in index:
            continue
        work: list[tuple[str, "list[str]"]] = [(root, list(graph[root]))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, pending = work[-1]
            if pending:
                succ = pending.pop()
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, list(graph[succ])))
                elif succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)
    return components


def derived_predicates(rules: Iterable[Rule]) -> set[str]:
    """Predicates appearing in the head of some rule (Section 5)."""
    return {rule.head.pred for rule in rules}


def recursive_predicates(rules: Sequence[Rule]) -> set[str]:
    """Predicates involved in recursion (a cycle in the dependency graph).

    This includes directly recursive predicates (self-loop) and members of
    larger cycles (mutual recursion).
    """
    graph = dependency_graph(rules)
    recursive: set[str] = set()
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            recursive.update(component)
        else:
            (pred,) = component
            if pred in graph[pred]:
                recursive.add(pred)
    return recursive


def is_mutual_recursion_free(rules: Sequence[Rule]) -> bool:
    """True when no dependency cycle involves two distinct predicates."""
    graph = dependency_graph(rules)
    return all(
        len(component) == 1
        for component in strongly_connected_components(graph)
    )


def is_recursive_rule(rule: Rule, recursive: set[str]) -> bool:
    """A rule is recursive when its head predicate is recursive and the
    body mentions a predicate from the head's recursion component.

    For mutual-recursion-free rulesets (the only place the paper needs
    rule-level recursion), this reduces to the head predicate occurring in
    its own body.
    """
    if rule.head.pred not in recursive:
        return False
    return any(atom.pred == rule.head.pred for atom in rule.body)


def predicate_levels(rules: Sequence[Rule]) -> dict[str, int]:
    """Assign a level number to every predicate (Theorem 6.5's proof).

    EDB predicates get level 0; a derived predicate's level is one more
    than the maximum level of the distinct predicates it depends on.
    Requires a mutual-recursion-free ruleset (raises ValueError
    otherwise); self-recursion is ignored for the level computation.
    """
    graph = dependency_graph(rules)
    components = strongly_connected_components(graph)
    if any(len(c) > 1 for c in components):
        raise ValueError("levels are defined for mutual-recursion-free "
                         "rulesets only")
    levels: dict[str, int] = {}
    # Components arrive callees-first, so one pass suffices.
    for component in components:
        (pred,) = component
        deps = [levels[q] + 1 for q in graph[pred] if q != pred]
        levels[pred] = max(deps, default=0)
    return levels


def stratification(rules: Sequence[Rule]) -> dict[str, int]:
    """Assign each predicate a stratum for stratified negation.

    A program is *stratifiable* when no dependency cycle passes through
    a negative edge.  Strata are the smallest numbers satisfying
    ``stratum(head) ≥ stratum(dep)`` for positive dependencies and
    ``stratum(head) > stratum(neg_dep)`` for negative ones; EDB
    predicates sit at stratum 0.  Raises ValueError for
    non-stratifiable programs (e.g. ``p :- not p``).

    Negation is an extension beyond the paper's definite rules; see
    :mod:`repro.temporal.stratified`.
    """
    graph = dependency_graph(rules)
    negatives = negative_edges(rules)
    components = strongly_connected_components(graph)
    component_of: dict[str, int] = {}
    for i, component in enumerate(components):
        for pred in component:
            component_of[pred] = i
    for head, dep in negatives:
        if component_of[head] == component_of[dep]:
            raise ValueError(
                f"not stratifiable: predicates {head} and {dep} are "
                "mutually recursive through negation"
            )
    # Components arrive callees-first; one pass computes strata.
    component_stratum = [0] * len(components)
    for i, component in enumerate(components):
        level = 0
        for pred in component:
            for dep in graph[pred]:
                j = component_of[dep]
                if j == i:
                    continue
                bump = 1 if (pred, dep) in negatives else 0
                level = max(level, component_stratum[j] + bump)
        component_stratum[i] = level
    return {pred: component_stratum[component_of[pred]]
            for pred in graph}


def is_stratifiable(rules: Sequence[Rule]) -> bool:
    """True when :func:`stratification` succeeds."""
    try:
        stratification(rules)
    except ValueError:
        return False
    return True


def negative_cycle(rules: Sequence[Rule]) -> "list[str] | None":
    """A dependency cycle through a negative edge, or None.

    Returns a predicate sequence ``[p0, p1, ..., p0]`` whose first step
    ``p0 -> p1`` is a negative edge (``p0``'s rules negate ``p1``) and
    whose remaining steps are dependency edges closing the cycle.  A
    program is stratifiable iff this returns None.  For the self-loop
    ``p :- not p`` the cycle is ``[p, p]``.
    """
    graph = dependency_graph(rules)
    negatives = negative_edges(rules)
    components = strongly_connected_components(graph)
    component_of: dict[str, int] = {}
    for i, component in enumerate(components):
        for pred in component:
            component_of[pred] = i
    for head, dep in sorted(negatives):
        if component_of[head] != component_of[dep]:
            continue
        if head == dep:
            return [head, head]
        # Shortest dependency path dep ->* head inside the component.
        component = components[component_of[head]]
        previous: dict[str, "str | None"] = {dep: None}
        queue = [dep]
        while queue:
            node = queue.pop(0)
            if node == head:
                break
            for succ in sorted(graph[node]):
                if succ in component and succ not in previous:
                    previous[succ] = node
                    queue.append(succ)
        if head not in previous:
            continue  # the SCC edge is positive-only in this direction
        back = [head]
        while back[-1] != dep:
            back.append(previous[back[-1]])  # type: ignore[arg-type]
        back.reverse()  # dep -> ... -> head
        return [head] + back
    return None


def strata_of_rules(rules: Sequence[Rule]) -> "list[list[Rule]]":
    """Group rules by the stratum of their head, ascending.

    The groups partition the (non-fact) rules; evaluating them in order,
    each with the previous strata's model as extensional input, yields
    the standard stratified (perfect) model.
    """
    proper = [r for r in rules if not r.is_fact]
    strata = stratification(proper)
    if not proper:
        return []
    top = max(strata[r.head.pred] for r in proper)
    groups: list[list[Rule]] = [[] for _ in range(top + 1)]
    for rule in proper:
        groups[strata[rule.head.pred]].append(rule)
    return [group for group in groups if group]
