"""Bottom-up evaluation of function-free Datalog (the classical substrate).

Two engines over :class:`~repro.datalog.facts.FactStore`:

* :func:`naive_evaluate` — iterate the full immediate-consequence operator
  ``T_S`` to fixpoint; the reference implementation used in tests and in
  the boundedness utilities (Theorem 6.2 talks about ``T_S^k(∅)``).
* :func:`seminaive_evaluate` — standard semi-naive evaluation with delta
  relations and greedy join ordering; the production path.

Joins order body atoms greedily by boundness and probe lazily-built hash
indexes on the bound positions (see :class:`FactStore`).
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, Iterator, Sequence, Union

from ..lang.atoms import Fact
from ..lang.errors import ValidationError
from ..lang.rules import Rule
from ..lang.terms import Const, Var
from .facts import ArgTuple, FactStore

Binding = dict[str, Union[str, int]]


def check_datalog(rules: Sequence[Rule]) -> None:
    """Ensure the rules are plain Datalog: no temporal atoms anywhere."""
    for rule in rules:
        for atom in rule.atoms():
            if atom.time is not None:
                raise ValidationError(
                    f"rule {rule} contains temporal atom {atom}; "
                    "the Datalog engine is function-free"
                )
        if not rule.is_fact and not rule.is_range_restricted:
            raise ValidationError(f"rule {rule} is not range-restricted")
        if not rule.is_safe:
            raise ValidationError(
                f"rule {rule} is not safe: negative literals must be "
                "bound by positive ones"
            )


def _negatives_absent(rule: Rule, binding: Binding,
                      store: FactStore) -> bool:
    """Check the rule's negative literals against ``store`` — sound
    when the negated predicates are frozen (stratified scheduling)."""
    for atom in rule.negative:
        pred, args = _head_fact(atom, binding)
        if store.contains(pred, args):
            return False
    return True


def plan_order(body: Sequence, first: Union[int, None] = None) -> list[int]:
    """Greedy join order over body atoms, cheapest-first.

    Returns indexes into ``body``.  When ``first`` is given, that atom
    leads (used by semi-naive evaluation to put the delta atom first).
    Ordering delegates to the static cost model
    (:func:`repro.analysis.static.cost.cost_order`): at each step the
    atom with the fewest expected matches under the current bindings is
    chosen; ties break towards textual order.  Every engine (generic
    and compiled) routes through this function, so same-round index
    visibility — which depends on join order — stays identical across
    engines.
    """
    from ..analysis.static.cost import cost_order
    return list(cost_order(body, first=first).order)


def _extend_binding(atom, args: ArgTuple,
                    binding: Binding) -> Union[Binding, None]:
    """Extend ``binding`` so that ``atom``'s data args match ``args``."""
    new: Union[Binding, None] = None
    for pattern, value in zip(atom.args, args):
        if isinstance(pattern, Const):
            if pattern.value != value:
                return None
        else:
            source = new if new is not None else binding
            bound = source.get(pattern.name)
            if bound is None:
                if new is None:
                    new = dict(binding)
                new[pattern.name] = value
            elif bound != value:
                return None
    return new if new is not None else binding


def _candidates(atom, store: FactStore,
                binding: Binding) -> Iterator[ArgTuple]:
    positions: list[int] = []
    key: list[Union[str, int]] = []
    for i, arg in enumerate(atom.args):
        if isinstance(arg, Const):
            positions.append(i)
            key.append(arg.value)
        elif arg.name in binding:
            positions.append(i)
            key.append(binding[arg.name])
    yield from store.lookup(atom.pred, tuple(positions), tuple(key))


def join(body: Sequence, order: Sequence[int], stores: Sequence[FactStore],
         binding: Union[Binding, None] = None) -> Iterator[Binding]:
    """Enumerate bindings satisfying all body atoms.

    ``stores[k]`` supplies the facts for the atom at ``order[k]`` —
    passing the delta store for position 0 and the full store elsewhere
    yields the semi-naive rule firing.
    """
    if binding is None:
        binding = {}

    def recurse(step: int, binding: Binding) -> Iterator[Binding]:
        if step == len(order):
            yield binding
            return
        atom = body[order[step]]
        store = stores[step]
        for args in _candidates(atom, store, binding):
            extended = _extend_binding(atom, args, binding)
            if extended is not None:
                yield from recurse(step + 1, extended)

    return recurse(0, binding)


def _head_fact(head, binding: Binding) -> tuple[str, ArgTuple]:
    args = tuple(
        binding[a.name] if isinstance(a, Var) else a.value
        for a in head.args
    )
    return head.pred, args


def _record_support(provenance, rule: Rule, pred: str, args: ArgTuple,
                    binding: Binding, round_no: int) -> None:
    """Materialize the rule instance behind one new fact and record it.

    Only called when a provenance store is attached, so the disabled
    path never builds premise facts.
    """
    def ground(atom) -> Fact:
        apred, aargs = _head_fact(atom, binding)
        return Fact(apred, None, aargs)

    provenance.record(rule, Fact(pred, None, args),
                      tuple(ground(a) for a in rule.body),
                      tuple(ground(a) for a in rule.negative), round_no)


def immediate_consequences(rules: Sequence[Rule],
                           store: FactStore,
                           metrics=None) -> FactStore:
    """One application of the immediate-consequence operator ``T_S``.

    Returns ``T_S(store)`` *including* the facts re-derivable from rules
    with empty bodies; the caller unions in the EDB as the paper's
    operator definition does.

    With ``metrics``, a new fact is credited to its *first* producer in
    rule order (later producers of the same fact count duplicates), so
    per-rule ``new_facts`` sums to the round's growth.
    """
    out = FactStore()
    for rule in rules:
        rm = metrics.rule(rule) if metrics is not None else None
        if rule.is_fact:
            pred, args = _head_fact(rule.head, {})
            if rm is None:
                out.add(pred, args)
                continue
            rm.firings += 1
            if out.add(pred, args) and not store.contains(pred, args):
                rm.new_facts += 1
            else:
                rm.duplicates += 1
            continue
        if rm is not None:
            rule_t0 = perf_counter()
            rm.begin_round()
        order = plan_order(rule.body)
        stores = [store] * len(order)
        for binding in join(rule.body, order, stores):
            if rm is not None:
                rm.probes += 1
            if rule.negative and not _negatives_absent(rule, binding,
                                                       store):
                continue
            pred, args = _head_fact(rule.head, binding)
            if rm is None:
                out.add(pred, args)
                continue
            rm.firings += 1
            if out.add(pred, args) and not store.contains(pred, args):
                rm.new_facts += 1
            else:
                rm.duplicates += 1
        if rm is not None:
            rm.seconds += perf_counter() - rule_t0
            rm.end_round()
    return out


def _naive_group(rules: Sequence[Rule], store: FactStore,
                 max_iterations: Union[int, None] = None,
                 stats=None, tracer=None, metrics=None) -> None:
    """Naive iteration of one (stratum's) rule group, in place."""
    iterations = 0
    while True:
        iterations += 1
        if max_iterations is not None and iterations > max_iterations:
            break
        derived = immediate_consequences(rules, store, metrics=metrics)
        changed = 0
        for fact in derived.facts():
            if store.add(fact.pred, fact.args):
                changed += 1
        if stats is not None:
            stats.record_round(derived=changed)
        if tracer is not None:
            tracer.emit("round", round=iterations, derived=changed,
                        store=len(store))
        if not changed:
            break


def _strata(rules: Sequence[Rule]) -> "list[list[Rule]]":
    """One group for definite programs; stratified groups otherwise."""
    if all(rule.is_definite for rule in rules):
        return [list(rules)] if rules else []
    from .depgraph import strata_of_rules
    try:
        groups = strata_of_rules(rules)
    except ValueError as exc:
        raise ValidationError(str(exc)) from exc
    facts = [r for r in rules if r.is_fact]
    if facts and groups:
        groups[0] = facts + groups[0]
    elif facts:
        groups = [facts]
    return groups


def naive_evaluate(rules: Sequence[Rule], edb: Iterable[Fact],
                   max_iterations: Union[int, None] = None,
                   stats=None, tracer=None, metrics=None) -> FactStore:
    """The (perfect) model by naive iteration, stratum by stratum.

    For definite programs this is the least fixpoint ``⋃ T_S^i(∅) ∪ D``;
    programs with (stratifiable) negation get the standard perfect-model
    semantics.
    """
    check_datalog(rules)
    store = FactStore(edb)
    if stats is not None:
        stats.engine = "datalog_naive"
        stats.extra["initial_facts"] = len(store)
        store.stats = stats
    for group in _strata(rules):
        _naive_group(group, store, max_iterations, stats=stats,
                     tracer=tracer, metrics=metrics)
    if metrics is not None and stats is not None:
        metrics.export_into(stats)
    store.stats = None
    return store


def _seminaive_group(rules: Sequence[Rule], store: FactStore,
                     stats=None, tracer=None, metrics=None,
                     provenance=None) -> None:
    """Semi-naive iteration of one (stratum's) rule group, in place."""
    # Round 0 below joins against the full store, so the initial delta
    # only needs the facts it introduces.  It is recorded as round 0 in
    # stats/trace so facts_derived reconciles with the final store size
    # and per-rule new_facts credits stay exhaustive.
    initial = len(store)
    probes0 = 0
    delta = FactStore()
    for rule in rules:
        if rule.is_fact:
            rm = metrics.rule(rule) if metrics is not None else None
            pred, args = _head_fact(rule.head, {})
            if rm is not None:
                rm.firings += 1
            if store.add(pred, args):
                delta.add(pred, args)
                if rm is not None:
                    rm.new_facts += 1
                if provenance is not None:
                    provenance.record(rule, Fact(pred, None, args), ())
            elif rm is not None:
                rm.duplicates += 1
    for rule in rules:
        if rule.is_fact:
            continue
        rm = metrics.rule(rule) if metrics is not None else None
        if rm is not None:
            rule_t0 = perf_counter()
            rm.begin_round()
        order = plan_order(rule.body)
        for binding in join(rule.body, order, [store] * len(order)):
            probes0 += 1
            if rm is not None:
                rm.probes += 1
            if rule.negative and not _negatives_absent(rule, binding,
                                                       store):
                continue
            pred, args = _head_fact(rule.head, binding)
            if rm is not None:
                rm.firings += 1
            if store.add(pred, args):
                delta.add(pred, args)
                if rm is not None:
                    rm.new_facts += 1
                if provenance is not None:
                    _record_support(provenance, rule, pred, args,
                                    binding, 0)
            elif rm is not None:
                rm.duplicates += 1
        if rm is not None:
            rm.seconds += perf_counter() - rule_t0
            rm.end_round()
    if stats is not None:
        stats.record_round(derived=len(delta), delta=initial)
        stats.join_probes += probes0
    if tracer is not None:
        tracer.emit("round", round=0, delta=initial,
                    derived=len(delta), probes=probes0, store=len(store))

    # Precompute, per rule, the plans that lead with each body position.
    plans: list[tuple] = []
    for rule in rules:
        if rule.is_fact:
            continue
        leads = [(i, plan_order(rule.body, first=i))
                 for i in range(len(rule.body))]
        plans.append((rule, leads,
                      metrics.rule(rule) if metrics is not None else None))

    round_no = 0
    while len(delta):
        round_no += 1
        probes = 0
        new_delta = FactStore()
        delta_preds = delta.predicates()
        for rule, leads, rm in plans:
            if rm is not None:
                rule_t0 = perf_counter()
                rm.begin_round()
            for i, order in leads:
                if rule.body[i].pred not in delta_preds:
                    continue
                stores = [delta] + [store] * (len(order) - 1)
                for binding in join(rule.body, order, stores):
                    probes += 1
                    if rm is not None:
                        rm.probes += 1
                    if rule.negative and not _negatives_absent(
                            rule, binding, store):
                        continue
                    pred, args = _head_fact(rule.head, binding)
                    if rm is not None:
                        rm.firings += 1
                    if store.add(pred, args):
                        new_delta.add(pred, args)
                        if rm is not None:
                            rm.new_facts += 1
                        if provenance is not None:
                            _record_support(provenance, rule, pred,
                                            args, binding, round_no)
                    elif rm is not None:
                        rm.duplicates += 1
            if rm is not None:
                rm.seconds += perf_counter() - rule_t0
                rm.end_round()
        if stats is not None:
            stats.record_round(derived=len(new_delta), delta=len(delta))
            stats.join_probes += probes
        if tracer is not None:
            tracer.emit("round", round=round_no,
                        delta=len(delta), derived=len(new_delta),
                        probes=probes, store=len(store))
        delta = new_delta


def seminaive_evaluate(rules: Sequence[Rule], edb: Iterable[Fact],
                       stats=None, tracer=None, metrics=None,
                       provenance=None) -> FactStore:
    """The (perfect) model by semi-naive iteration with delta relations.

    Matches :func:`naive_evaluate` (property-tested); programs with
    stratifiable negation are scheduled stratum by stratum so the
    negation checks stay stable within each fixpoint.  ``provenance``
    (a :class:`repro.obs.provenance.ProvenanceStore`) records a support
    edge for every derived fact.
    """
    check_datalog(rules)
    store = FactStore(edb)
    if stats is not None:
        stats.engine = "datalog_seminaive"
        stats.extra["initial_facts"] = len(store)
        store.stats = stats
    for group in _strata(rules):
        _seminaive_group(group, store, stats=stats, tracer=tracer,
                         metrics=metrics, provenance=provenance)
    if metrics is not None and stats is not None:
        metrics.export_into(stats)
    if provenance is not None and stats is not None:
        provenance.export_into(stats)
    store.stats = None
    return store
