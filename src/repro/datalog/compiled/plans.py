"""Rule compilation: ordered atom sequences, index probes, projection.

Each (rule, lead-atom) pair is compiled **once** into a
:class:`JoinPlan`: the greedy join order of
:func:`repro.datalog.engine.plan_order` with the delta atom leading, a
:class:`ProbeStep` per body atom describing *how* it will be matched
(delta scan, index probe on the bound argument positions, membership
check, or relation scan), and a generated Python function — nested
loops over int tuples with plain local-variable registers — that the
semi-naive loop replays every round.

The generated function has the fixed signature::

    plan(DREL, store, OUT, horizon) -> (probes, firings, new, dup)

where ``DREL`` is the round's delta relations (pred -> time -> rows),
``store`` the :class:`~repro.datalog.compiled.store.CompiledStore`,
``OUT`` the next delta being accumulated, and the four counters mean
exactly what they mean in :func:`repro.temporal.operator.fixpoint`:
complete body bindings, bindings surviving negation, facts that grew
the model, and re-derivations of present facts.  Head emission is
inlined — membership check, store insert, next-delta insert, and the
unrolled maintenance of every registered index on the head predicate.

Probe semantics mirror the generic engine: index buckets are lists (an
append during iteration is visible, as with the generic store's lazy
indexes), and any scan over a relation the rule itself derives is
materialized first (the generic ``lookup_at`` copies unindexed slices).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import FunctionType
from typing import Sequence, Union

from ...lang.errors import EvaluationError
from ...lang.rules import Rule
from ...lang.terms import Const
from .symbols import SymbolTable


class CompileError(EvaluationError):
    """A rule cannot be compiled (unsafe variables, bad time terms)."""


@dataclass(frozen=True)
class ProbeStep:
    """How one body atom is matched, decided at compile time.

    ``mode`` is ``"delta"`` (the lead atom, scanned from the round's
    delta), ``"index"`` (hash probe on ``index_positions``),
    ``"member"`` (all data positions bound: one membership check),
    ``"scan"`` (no bound positions: enumerate the slice), or
    ``"absent"`` (a negative literal: membership check, inverted).
    ``time`` says how the atom's temporal term resolves: ``"none"``
    (non-temporal), ``"ground"``, ``"bound"`` (its variable is already
    bound), or ``"free"`` (this step binds it by iterating slices).

    The last three fields record why the planner put the step here:
    ``bound_vars`` counts the selective positions at choice time
    (constants, bound variables, repeated fresh variables, plus one for
    a bound-or-ground time), ``est_matches`` the cost model's expected
    rows per probe, ``est_rows`` the expected partial bindings alive
    after the step — the plan rationale ``repro profile --format json``
    exposes.
    """

    atom_index: int
    pred: str
    mode: str
    time: str
    bound_positions: tuple[int, ...] = ()
    out_positions: tuple[int, ...] = ()
    check_positions: tuple[int, ...] = ()
    index_positions: Union[tuple[int, ...], None] = None
    bound_vars: int = 0
    est_matches: float = 1.0
    est_rows: float = 1.0


@dataclass
class JoinPlan:
    """One compiled (rule, lead) pair: inspectable steps + the function.

    The generated function's relation and index dictionaries are not
    looked up per call: they are trailing parameters with ``None``
    defaults, and :meth:`bind` clones the function with the defaults
    replaced by a concrete store's dicts (``binds`` names them, in
    parameter order).  The engine binds every plan once per evaluation
    and then calls ``fn(delta_slices, out, horizon)`` each round with
    zero prefetch work.
    """

    rule: Rule
    lead: int
    order: tuple[int, ...]
    steps: tuple[ProbeStep, ...]
    source: str
    binds: tuple = ()
    fn: object = field(default=None, repr=False)
    est_cost: float = 0.0  # cost model's total for this (rule, lead)

    @property
    def lead_pred(self) -> str:
        return self.rule.body[self.lead].pred

    def bind(self, store):
        """The plan function with ``store``'s dicts baked in as defaults."""
        values = []
        rel = store.rel
        for kind, key in self.binds:
            if kind == "rel":
                d = rel.get(key)
                if d is None:
                    d = rel[key] = {}
                values.append(d)
            else:
                values.append(store.idx[key])
        fn = self.fn
        return FunctionType(fn.__code__, fn.__globals__, fn.__name__,
                            tuple(values))

    def describe(self) -> str:
        """A compact one-line rendering of the probe sequence."""
        parts = []
        for step in self.steps:
            if step.mode == "delta":
                parts.append(f"Δ{step.pred}")
            elif step.mode == "index":
                positions = ",".join(map(str, step.index_positions))
                parts.append(f"{step.pred}[idx {positions}]")
            elif step.mode == "member":
                parts.append(f"{step.pred}?")
            elif step.mode == "absent":
                parts.append(f"¬{step.pred}?")
            else:
                parts.append(f"{step.pred}*")
        return " ⨝ ".join(parts) + f" → {self.rule.head.pred}"


# -- analysis ------------------------------------------------------------


@dataclass
class _Arg:
    """One argument position of an atom, resolved against the bindings."""

    kind: str  # "const" | "bound" | "bind" | "check"
    expr: str = ""       # value expression (const literal or local name)
    local: str = ""      # for "bind": the fresh local; for "check": bound


@dataclass
class _StepInfo:
    """Everything codegen needs for one body atom, in join order."""

    atom_index: int
    pred: str
    mode: str
    time: str            # "none" | "ground" | "bound" | "free"
    time_expr: str = ""  # fact-time expression when time is not "free"
    offset: int = 0
    time_local: str = "" # for "free": the local the base time binds to
    args: tuple = ()
    step: Union[ProbeStep, None] = None


class _Analyzer:
    """Walks a join order once, assigning locals and deciding modes."""

    def __init__(self, rule: Rule, lead: int,
                 symbols: SymbolTable) -> None:
        self.rule = rule
        self.lead = lead
        self.symbols = symbols
        self.data_locals: dict[str, str] = {}
        self.time_locals: dict[str, str] = {}

    def _fail(self, message: str) -> CompileError:
        return CompileError(f"cannot compile rule {self.rule}: {message}")

    def _analyze_args(self, atom) -> list[_Arg]:
        args: list[_Arg] = []
        fresh: dict[str, str] = {}
        for term in atom.args:
            if isinstance(term, Const):
                args.append(_Arg("const",
                                 repr(self.symbols.intern(term.value))))
            elif term.name in self.data_locals:
                args.append(_Arg("bound", self.data_locals[term.name]))
            elif term.name in fresh:
                args.append(_Arg("check", local=fresh[term.name]))
            else:
                local = f"v{len(self.data_locals) + len(fresh)}"
                fresh[term.name] = local
                args.append(_Arg("bind", local=local))
        self.data_locals.update(fresh)
        return args

    def _analyze_time(self, atom,
                      bind_free: bool) -> tuple[str, str, int, str]:
        """(time kind, fact-time expr, offset, free-time local)."""
        tt = atom.time
        if tt is None:
            return "none", "None", 0, ""
        if tt.var is None:
            return "ground", repr(tt.offset), tt.offset, ""
        local = self.time_locals.get(tt.var)
        if local is not None:
            expr = local if tt.offset == 0 else f"{local} + {tt.offset}"
            return "bound", expr, tt.offset, ""
        if not bind_free:
            raise self._fail(
                f"temporal variable {tt.var} of a negative literal or "
                "head is not bound by the positive body")
        local = f"w{len(self.time_locals)}"
        self.time_locals[tt.var] = local
        return "free", "", tt.offset, local

    def positive(self, atom_index: int, is_lead: bool) -> _StepInfo:
        atom = self.rule.body[atom_index]
        kind, expr, offset, local = self._analyze_time(atom,
                                                       bind_free=True)
        args = self._analyze_args(atom)
        bound = tuple(i for i, a in enumerate(args)
                      if a.kind in ("const", "bound"))
        out = tuple(i for i, a in enumerate(args) if a.kind == "bind")
        checks = tuple(i for i, a in enumerate(args)
                       if a.kind == "check")
        if is_lead:
            mode = "delta"
        elif len(bound) == len(args) and not checks:
            mode = "member"
        elif bound:
            mode = "index"
        else:
            mode = "scan"
        info = _StepInfo(atom_index=atom_index, pred=atom.pred,
                         mode=mode, time=kind, time_expr=expr,
                         offset=offset, time_local=local,
                         args=tuple(args))
        info.step = ProbeStep(
            atom_index=atom_index, pred=atom.pred, mode=mode,
            time=kind, bound_positions=bound, out_positions=out,
            check_positions=checks,
            index_positions=bound if mode == "index" else None,
        )
        return info

    def negative(self, neg_index: int) -> _StepInfo:
        atom = self.rule.negative[neg_index]
        kind, expr, offset, _ = self._analyze_time(atom, bind_free=False)
        args = self._analyze_args(atom)
        if any(a.kind in ("bind", "check") for a in args):
            raise self._fail(
                f"negative literal {atom} has variables not bound by "
                "the positive body")
        bound = tuple(range(len(args)))
        info = _StepInfo(atom_index=neg_index, pred=atom.pred,
                         mode="absent", time=kind, time_expr=expr,
                         offset=offset, args=tuple(args))
        info.step = ProbeStep(
            atom_index=neg_index, pred=atom.pred, mode="absent",
            time=kind, bound_positions=bound,
        )
        return info

    def head_time(self) -> tuple[str, str]:
        """(kind, expr) for the head's temporal term."""
        kind, expr, _, _ = self._analyze_time(self.rule.head,
                                              bind_free=False)
        return kind, expr

    def head_args(self) -> list[str]:
        exprs = []
        for term in self.rule.head.args:
            if isinstance(term, Const):
                exprs.append(repr(self.symbols.intern(term.value)))
            else:
                local = self.data_locals.get(term.name)
                if local is None:
                    raise self._fail(
                        f"head variable {term.name} is not bound by "
                        "the body (rule is not range-restricted)")
                exprs.append(local)
        return exprs


# -- code generation -----------------------------------------------------


def _tuple_expr(exprs: Sequence[str]) -> str:
    if not exprs:
        return "()"
    return "(" + ", ".join(exprs) + ",)"


class _Writer:
    def __init__(self, depth: int) -> None:
        self.lines: list[str] = []
        self.depth = depth

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def indent(self) -> None:
        self.depth += 1


def compile_plan(rule: Rule, lead: int, symbols: SymbolTable,
                 register_index, head_indexes, plan_name: str,
                 render_only: bool = False,
                 capture: bool = False) -> JoinPlan:
    """Compile one (rule, lead) pair.

    ``register_index(pred, positions)`` is called for every index probe
    the plan decides on; ``head_indexes`` is the full tuple of position
    sets registered for the head predicate (known only once every plan
    of the program has been analyzed — see
    :func:`~repro.datalog.compiled.engine.compile_program`, which runs
    an analysis pass with ``render_only=False`` first and then renders).

    ``capture`` renders the provenance variant: the function takes one
    extra positional parameter ``PROV`` (a list) and appends
    ``(head_time, head_row, body_triples, neg_triples)`` for every NEW
    fact, where each triple is ``(pred, time, row)`` in the rule's
    textual literal order.  The provenance-off fast path uses the plain
    variant, whose generated code is byte-for-byte unchanged.
    """
    from ...analysis.static.cost import cost_order

    body = rule.body
    cost = cost_order(body, first=lead)
    order = list(cost.order)
    analyzer = _Analyzer(rule, lead, symbols)
    infos = [analyzer.positive(i, is_lead=(k == 0))
             for k, i in enumerate(order)]
    neg_infos = [analyzer.negative(i)
                 for i in range(len(rule.negative))]
    for info in infos:
        if info.mode == "index":
            register_index(info.pred, info.step.bound_positions)
    head_kind, head_expr = analyzer.head_time()
    head_args = analyzer.head_args()
    # Stamp the cost model's rationale onto the inspectable steps.
    choices = cost.by_atom()
    positive_steps = []
    for info in infos:
        choice = choices[info.atom_index]
        positive_steps.append(replace(
            info.step, bound_vars=choice.bound_vars,
            est_matches=choice.est_matches, est_rows=choice.est_rows))
    final_rows = positive_steps[-1].est_rows if positive_steps else 1.0
    negative_steps = [
        replace(info.step,
                bound_vars=len(info.step.bound_positions)
                + (1 if info.time in ("ground", "bound") else 0),
                est_matches=1.0, est_rows=final_rows)
        for info in neg_infos
    ]
    steps = tuple(positive_steps) + tuple(negative_steps)
    plan = JoinPlan(rule=rule, lead=lead, order=tuple(order),
                    steps=steps, source="", est_cost=cost.total)
    if render_only:
        return plan

    head_pred = rule.head.pred
    derives = head_pred  # scans over this predicate must be copied

    # Matched-body-tuple expressions for the capture variant, rebuilt
    # from the join locals and re-sorted into textual literal order.
    capture_body = ""
    capture_neg = ""
    if capture:
        by_atom: list[tuple[int, str]] = []
        for k, info in enumerate(infos):
            t = f"s{k}" if info.time == "free" else info.time_expr
            if info.mode == "member":
                row = _tuple_expr([info.args[p].expr
                                   for p in info.step.bound_positions])
            elif info.args:
                row = f"r{k}"
            else:
                row = "()"
            by_atom.append((info.atom_index,
                            f"({info.pred!r}, {t}, {row})"))
        by_atom.sort()
        capture_body = _tuple_expr([expr for _, expr in by_atom])
        capture_neg = _tuple_expr([
            f"({info.pred!r}, {info.time_expr}, "
            f"{_tuple_expr([arg.expr for arg in info.args])})"
            for info in neg_infos
        ])

    # Bound parameters: relation/index dicts arrive as trailing
    # parameters, replaced per store by JoinPlan.bind().
    binds: list[tuple[str, object]] = []
    param_names: list[str] = []

    def bind_param(name: str, kind: str, key) -> None:
        param_names.append(name)
        binds.append((kind, key))

    for k, info in enumerate(infos[1:] + neg_infos, start=1):
        if info.mode == "index":
            bind_param(f"X{k}", "idx",
                       (info.pred, info.step.bound_positions))
        if info.mode in ("member", "scan", "absent") or (
                info.mode == "index" and info.time == "free"):
            bind_param(f"R{k}", "rel", info.pred)
    bind_param("H", "rel", head_pred)
    for j, positions in enumerate(head_indexes):
        bind_param(f"HX{j}", "idx", (head_pred, positions))

    w = _Writer(1)
    w.emit("P = 0; F = 0; NEW = 0; DUP = 0")
    w.emit(f"HO = OUT.get({head_pred!r})")
    w.emit("if HO is None:")
    w.emit(f"    HO = OUT[{head_pred!r}] = {{}}")
    # Hoist probes at fixed timepoints (non-temporal / ground) out of
    # the loops.  Safe only when the probed predicate is not the one
    # this plan derives — its slices can appear mid-call.
    hoisted: set[int] = set()
    for k, info in enumerate(infos[1:] + neg_infos, start=1):
        if (info.time in ("none", "ground") and info.pred != derives
                and info.mode in ("member", "scan", "absent")):
            hoisted.add(k)
            w.emit(f"M{k} = R{k}.get({info.time_expr}, ())")

    def emit_arg_bindings(info: _StepInfo, row: str) -> None:
        for position, arg in enumerate(info.args):
            if arg.kind == "bind":
                w.emit(f"{arg.local} = {row}[{position}]")
        for position, arg in enumerate(info.args):
            if arg.kind in ("const", "bound"):
                w.emit(f"if {row}[{position}] != {arg.expr}:")
                w.emit("    continue")
            elif arg.kind == "check":
                w.emit(f"if {row}[{position}] != {arg.local}:")
                w.emit("    continue")

    def emit_free_time(info: _StepInfo, slice_var: str) -> None:
        """Bind the step's temporal variable from an iterated slice."""
        w.emit(f"if {slice_var} is None:")
        w.emit("    continue")
        if info.offset:
            w.emit(f"{info.time_local} = {slice_var} - {info.offset}")
            w.emit(f"if {info.time_local} < 0:")
            w.emit("    continue")
        else:
            w.emit(f"{info.time_local} = {slice_var}")

    # Lead: scan the delta relation.
    lead_info = infos[0]
    if lead_info.time == "free":
        w.emit("for s0, m0 in D.items():")
        w.indent()
        emit_free_time(lead_info, "s0")
    else:
        w.emit(f"m0 = D.get({lead_info.time_expr})")
        w.emit("if m0:")
        w.indent()
    if lead_info.args:
        w.emit("for r0 in m0:")
        w.indent()
        emit_arg_bindings(lead_info, "r0")
    else:
        w.emit("if m0:")
        w.indent()

    # Inner positive steps against the full store.
    for k, info in enumerate(infos[1:], start=1):
        copy = info.pred == derives
        key_exprs = [info.args[p].expr
                     for p in info.step.bound_positions]
        if info.time == "free":
            if info.mode == "index":
                source = f"list(R{k})" if copy else f"R{k}"
                w.emit(f"for s{k} in {source}:")
                w.indent()
                emit_free_time(info, f"s{k}")
                probe = _tuple_expr([f"s{k}"] + key_exprs)
                w.emit(f"for r{k} in X{k}.get({probe}, ()):")
                w.indent()
                emit_arg_bindings(info, f"r{k}")
            elif info.mode == "member":
                source = f"list(R{k})" if copy else f"R{k}"
                w.emit(f"for s{k} in {source}:")
                w.indent()
                emit_free_time(info, f"s{k}")
                w.emit(f"if {_tuple_expr(key_exprs)} in R{k}[s{k}]:")
                w.indent()
            else:  # scan
                source = (f"list(R{k}.items())" if copy
                          else f"R{k}.items()")
                w.emit(f"for s{k}, m{k} in {source}:")
                w.indent()
                emit_free_time(info, f"s{k}")
                rows = f"list(m{k})" if copy else f"m{k}"
                w.emit(f"for r{k} in {rows}:")
                w.indent()
                emit_arg_bindings(info, f"r{k}")
        else:
            if info.mode == "index":
                probe = _tuple_expr([info.time_expr] + key_exprs)
                w.emit(f"for r{k} in X{k}.get({probe}, ()):")
                w.indent()
                emit_arg_bindings(info, f"r{k}")
            elif info.mode == "member":
                source = (f"M{k}" if k in hoisted
                          else f"R{k}.get({info.time_expr}, ())")
                w.emit(f"if {_tuple_expr(key_exprs)} in {source}:")
                w.indent()
            else:  # scan
                if k in hoisted:
                    w.emit(f"for r{k} in M{k}:")
                    w.indent()
                else:
                    w.emit(f"m{k} = R{k}.get({info.time_expr})")
                    w.emit(f"if m{k}:")
                    w.indent()
                    rows = f"list(m{k})" if copy else f"m{k}"
                    w.emit(f"for r{k} in {rows}:")
                    w.indent()
                emit_arg_bindings(info, f"r{k}")

    # A complete body binding.
    w.emit("P += 1")
    for k, info in enumerate(neg_infos, start=1 + len(infos) - 1):
        key_exprs = [arg.expr for arg in info.args]
        source = (f"M{k}" if k in hoisted
                  else f"R{k}.get({info.time_expr}, ())")
        w.emit(f"if {_tuple_expr(key_exprs)} not in {source}:")
        w.indent()
    w.emit("F += 1")
    w.emit(f"ht = {head_expr}")
    if head_kind != "none":
        w.emit("if ht <= horizon:")
        w.indent()
    w.emit(f"hr = {_tuple_expr(head_args)}")
    w.emit("hs = H.get(ht)")
    w.emit("if hs is None:")
    w.emit("    hs = H[ht] = set()")
    w.emit("if hr in hs:")
    w.emit("    DUP += 1")
    w.emit("else:")
    w.indent()
    w.emit("hs.add(hr)")
    w.emit("NEW += 1")
    if capture:
        w.emit(f"PROV.append((ht, hr, {capture_body}, "
               f"{capture_neg}))")
    w.emit("ho = HO.get(ht)")
    w.emit("if ho is None:")
    w.emit("    ho = HO[ht] = set()")
    w.emit("ho.add(hr)")
    for j, positions in enumerate(head_indexes):
        key = _tuple_expr(["ht"] + [head_args[p] for p in positions])
        w.emit(f"hk{j} = {key}")
        w.emit(f"hb{j} = HX{j}.get(hk{j})")
        w.emit(f"if hb{j} is None:")
        w.emit(f"    HX{j}[hk{j}] = [hr]")
        w.emit("else:")
        w.emit(f"    hb{j}.append(hr)")

    fixed = ["D", "OUT", "horizon"] + (["PROV"] if capture else [])
    signature = ", ".join(fixed
                          + [f"{name}=None" for name in param_names])
    source = "\n".join(
        [f"def {plan_name}({signature}):"]
        + w.lines
        + ["    return P, F, NEW, DUP"]
    )
    namespace: dict = {}
    exec(compile(source, f"<{plan_name}: {rule}>", "exec"),  # noqa: S102
         namespace)
    plan.source = source
    plan.binds = tuple(binds)
    plan.fn = namespace[plan_name]
    return plan
