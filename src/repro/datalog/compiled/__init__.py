"""Compiled evaluation core: interning, indexed joins, rule plans.

The generic engines evaluate rules by substitution over Python fact
sets; the constant factors (dict-of-string keys, binding dictionaries,
generator chains) swamp the paper's asymptotics on the larger
experiments.  Givan & McAllester's locality argument (PAPERS.md) says
every derivation step only needs an indexed lookup, so this package
compiles the hot path:

* :class:`~repro.datalog.compiled.symbols.SymbolTable` interns
  constants and temporal terms to dense ints;
* :class:`~repro.datalog.compiled.store.CompiledStore` keeps relations
  as tuples of ints with eager per-(predicate, argument-position) hash
  indexes;
* :mod:`~repro.datalog.compiled.plans` compiles each rule once into a
  specialized join plan (ordered atom sequence + index probes +
  projection closure, rendered to Python and ``exec``-ed);
* :func:`~repro.datalog.compiled.engine.compiled_fixpoint` replays the
  plans in the same semi-naive loop as
  :func:`repro.temporal.operator.fixpoint`, with identical
  stats/tracer/metrics semantics.
"""

from .engine import compile_program, compiled_fixpoint
from .plans import CompileError, JoinPlan, ProbeStep
from .store import CompiledStore
from .symbols import SymbolTable

__all__ = [
    "SymbolTable", "CompiledStore", "JoinPlan", "ProbeStep",
    "CompileError", "compile_program", "compiled_fixpoint",
]
