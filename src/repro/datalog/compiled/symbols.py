"""Dense-int interning of constants and temporal terms.

The compiled engine never joins on Python strings: every data constant
(and, for callers that need it, every ground temporal term) is interned
to a dense non-negative int once, and all relations, index keys, and
generated join code work on those ints.  Ids are append-only — a symbol
keeps its id for the lifetime of the table, so plans compiled early stay
valid as the database grows (the iterative-deepening loop re-interns the
same database against the same table on every window enlargement).

Symbols are *kind-tagged*: the data constant ``"5"`` (a string), the
data constant ``5`` (an int), and the ground temporal term ``5``
(``TimeTerm(None, 5)``) all render as ``"5"`` but are three distinct
symbols.  :class:`~repro.lang.terms.Const` wrappers are transparent:
``intern(Const(v))`` is ``intern(v)`` — the compiled store keeps raw
values in its tuples, exactly like :class:`~repro.lang.atoms.Fact`
does.
"""

from __future__ import annotations

from threading import Lock
from typing import Union

from ...lang.terms import Const, TimeTerm

#: What a symbol resolves back to: a raw data value or a temporal term.
Symbol = Union[str, int, TimeTerm]

#: Internal kind tags (the first element of every key).
_DATA = 0
_TIME = 1


class SymbolTable:
    """An append-only bijection between symbols and dense ints.

    ``intern`` accepts raw data values (``str`` / ``int``), ``Const``
    wrappers (unwrapped to their value), and *ground*
    :class:`~repro.lang.terms.TimeTerm` objects.  ``resolve`` returns
    the raw value for data symbols and the ``TimeTerm`` for temporal
    ones, so ``resolve(intern(x)) == x`` for every raw constant and
    every ground temporal term.
    """

    __slots__ = ("_ids", "_symbols", "_lock")

    def __init__(self) -> None:
        self._ids: dict[tuple, int] = {}
        self._symbols: list[Symbol] = []
        # Tables outlive single evaluations (the compiled-program cache
        # shares one table across every store built for a program), and
        # QueryService loads stores from worker threads.  Allocation is
        # double-checked under this lock; the hit path stays lock-free.
        self._lock = Lock()

    @staticmethod
    def _key(symbol) -> tuple:
        if isinstance(symbol, Const):
            symbol = symbol.value
        if isinstance(symbol, TimeTerm):
            if not symbol.is_ground:
                raise ValueError(
                    f"cannot intern the non-ground temporal term "
                    f"{symbol}; only ground terms denote timepoints"
                )
            # Tag with the type name too, so a data int never collides
            # with a temporal depth.
            return (_TIME, symbol.offset)
        if not isinstance(symbol, (str, int)):
            raise TypeError(
                f"cannot intern {symbol!r}: expected a str/int constant, "
                "a Const, or a ground TimeTerm"
            )
        return (_DATA, type(symbol) is str, symbol)

    def intern(self, symbol) -> int:
        """The dense id of ``symbol``, allocating one on first sight."""
        key = self._key(symbol)
        sid = self._ids.get(key)
        if sid is None:
            with self._lock:
                sid = self._ids.get(key)
                if sid is None:
                    sid = len(self._symbols)
                    if isinstance(symbol, Const):
                        symbol = symbol.value
                    self._symbols.append(symbol)
                    self._ids[key] = sid
        return sid

    def resolve(self, sid: int) -> Symbol:
        """The symbol behind ``sid``; raises ``KeyError`` when unknown."""
        if not 0 <= sid < len(self._symbols):
            raise KeyError(f"unknown symbol id {sid}")
        return self._symbols[sid]

    def resolve_all(self) -> list[Symbol]:
        """All interned symbols, in id order (id ``i`` at position ``i``)."""
        return list(self._symbols)

    def __len__(self) -> int:
        return len(self._symbols)

    def __contains__(self, symbol) -> bool:
        try:
            return self._key(symbol) in self._ids
        except (TypeError, ValueError):
            return False

    def __repr__(self) -> str:
        return f"SymbolTable({len(self._symbols)} symbols)"
