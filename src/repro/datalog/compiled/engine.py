"""The compiled semi-naive loop: replaying join plans each round.

:func:`compile_program` turns a rule set into a
:class:`CompiledProgram` — one :class:`JoinPlan` per (rule, lead-atom)
pair, a shared :class:`~repro.datalog.compiled.symbols.SymbolTable`, and
the index registry the plans probe.  Compilation is cached (LRU, keyed
on the tuple of proper rules, which hash structurally and ignore source
spans), so the iterative-deepening loop of algorithm BT and repeated
``QueryService`` requests pay it once.

:func:`compiled_fixpoint` is a drop-in for
:func:`repro.temporal.operator.fixpoint`: same signature, same window
truncation, same round structure, and — deliberately — the same
observable accounting.  ``EvalStats`` rounds/deltas/probes,
``Tracer`` events, and per-rule ``MetricsRegistry`` credit (probes per
complete binding, firings before the horizon gate, new vs duplicate)
all match the generic engine fact for fact, which is what the
differential battery in ``tests/test_compiled_differential.py`` pins
down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from time import perf_counter
from typing import Sequence, Union

from ...lang.atoms import Fact
from ...lang.errors import EvaluationError
from ...lang.rules import Rule
from .plans import JoinPlan, compile_plan
from .store import CompiledStore
from .symbols import SymbolTable


@dataclass
class CompiledProgram:
    """Everything reusable across evaluations of one rule set."""

    rules: tuple[Rule, ...]  # the proper (non-fact) rules, input order
    symbols: SymbolTable
    plans: tuple[tuple[JoinPlan, ...], ...]  # plans[i] belongs to rules[i]
    registered: dict[str, tuple[tuple[int, ...], ...]]
    #: Lazily compiled provenance-capturing twins of ``plans`` (see
    #: ``compile_plan(..., capture=True)``); built on first use so the
    #: provenance-off path pays nothing.
    _capture: object = field(default=None, repr=False)

    def describe(self) -> list[str]:
        """One line per plan — what ``repro profile`` prints."""
        return [plan.describe()
                for per_rule in self.plans for plan in per_rule]

    def capture_plans(self) -> tuple:
        """Capture variants of every plan, compiled once per program.

        The index registry is already frozen (pass 1 of compilation saw
        every probe), so re-registration is a no-op.
        """
        if self._capture is None:
            def noop(pred, positions):
                return None
            self._capture = tuple(
                tuple(compile_plan(rule, lead, self.symbols, noop,
                                   self.registered.get(rule.head.pred,
                                                       ()),
                                   plan_name=f"_c{k}_{lead}",
                                   capture=True)
                      for lead in range(len(rule.body)))
                for k, rule in enumerate(self.rules)
            )
        return self._capture


@lru_cache(maxsize=128)
def _compile_cached(proper: tuple[Rule, ...]) -> CompiledProgram:
    symbols = SymbolTable()
    registered: dict[str, list[tuple[int, ...]]] = {}

    def register(pred: str, positions: tuple[int, ...]) -> None:
        sets = registered.setdefault(pred, [])
        if positions not in sets:
            sets.append(positions)

    # Pass 1: analyze every plan to learn the full index registry (a
    # head emit must maintain every index on its predicate, including
    # ones demanded by plans analyzed later).
    for k, rule in enumerate(proper):
        for lead in range(len(rule.body)):
            compile_plan(rule, lead, symbols, register, (),
                         plan_name=f"_p{k}_{lead}", render_only=True)
    frozen = {pred: tuple(sets) for pred, sets in registered.items()}
    # Pass 2: render and exec, with head-index maintenance unrolled.
    plans = tuple(
        tuple(compile_plan(rule, lead, symbols, register,
                           frozen.get(rule.head.pred, ()),
                           plan_name=f"_p{k}_{lead}")
              for lead in range(len(rule.body)))
        for k, rule in enumerate(proper)
    )
    return CompiledProgram(rules=proper, symbols=symbols, plans=plans,
                           registered=frozen)


def compile_program(rules: Sequence[Rule]) -> CompiledProgram:
    """The compiled form of ``rules`` (facts excluded), LRU-cached."""
    return _compile_cached(tuple(r for r in rules if not r.is_fact))


def _record_captured(provenance, rule, captured, values,
                     round_no: int) -> None:
    """Translate one plan call's captured tuples into support edges.

    ``captured`` rows are ``(head_time, head_row, body, neg)`` with
    interned-int rows; ``values`` resolves ids back to symbols.  Only
    called when provenance is on, so the fast path never sees it.
    """
    head_pred = rule.head.pred
    for ht, hr, body, neg in captured:
        provenance.record(
            rule,
            Fact(head_pred, ht, tuple(values[i] for i in hr)),
            tuple(Fact(p, t, tuple(values[i] for i in r))
                  for p, t, r in body),
            tuple(Fact(p, t, tuple(values[i] for i in r))
                  for p, t, r in neg),
            round_no)


def compiled_fixpoint(rules: Sequence[Rule], database,
                      horizon: int,
                      max_facts: Union[int, None] = None,
                      stats=None, tracer=None, metrics=None,
                      provenance=None):
    """Least fixpoint of the window-truncated operator, compiled.

    Semantics (and the raised errors) match
    :func:`repro.temporal.operator.fixpoint` exactly; only the inner
    machinery differs.  Returns a fresh
    :class:`~repro.temporal.store.TemporalStore`.

    ``provenance`` swaps in capture variants of the join plans that
    surface every matched body tuple; with ``provenance=None`` the
    plain plans run and the round loop is unchanged.
    """
    negated = {a.pred for r in rules for a in r.negative}
    derived_here = {r.head.pred for r in rules}
    clash = negated & derived_here
    if clash:
        raise EvaluationError(
            f"predicates {sorted(clash)} are both negated and derived in "
            "one fixpoint group; use stratified_fixpoint"
        )
    program = compile_program(rules)
    store = CompiledStore(program.symbols, program.registered)
    store.load(database, horizon)
    for rule in rules:
        if rule.is_fact:
            fact = rule.head.to_fact()
            if fact.time is not None and fact.time > horizon:
                continue
            if store.add_fact(fact) and provenance is not None:
                provenance.record(rule, fact, ())

    if stats is not None:
        if not stats.engine:
            stats.engine = "compiled"
        stats.horizon = (horizon if stats.horizon is None
                         else max(stats.horizon, horizon))
        stats.extra["initial_facts"] = (
            stats.extra.get("initial_facts", 0) + store.count)
    if tracer is not None:
        tracer.emit("eval_start", engine=stats.engine if stats else
                    "compiled", horizon=horizon,
                    rules=len(program.rules),
                    initial_facts=store.count)

    # Attribute metrics to the *caller's* rule objects: the cached
    # program may hold structurally-equal rules from an earlier caller,
    # and the registry keys records by object identity.
    proper = [r for r in rules if not r.is_fact]
    records = [metrics.rule(r) if metrics is not None else None
               for r in proper]
    # Bind every plan to this store once (baking its relation and index
    # dicts in as argument defaults); the round loop touches only tuples.
    plan_sets = (program.plans if provenance is None
                 else program.capture_plans())
    dispatch = [
        (rm, rule, tuple((plan.lead_pred, plan.bind(store))
                         for plan in per_rule))
        for per_rule, rm, rule in zip(plan_sets, records, proper)
    ]

    # Without per-rule metrics the round loop needs no per-rule
    # bookkeeping; flatten the dispatch (same plan order — execution
    # order is observable through same-round index visibility).
    fast = None
    if metrics is None and provenance is None:
        fast = [pair for _, _, plan_fns in dispatch for pair in plan_fns]
    # No new symbols appear during the rounds (head args project body
    # values), so one resolution serves every captured row.
    values = (program.symbols.resolve_all() if provenance is not None
              else None)

    delta_rel = store.snapshot_rel()
    delta_count = store.count
    round_no = 0
    while delta_count:
        round_no += 1
        probes = 0
        derived = 0
        out: dict = {}
        delta_get = delta_rel.get
        if fast is not None:
            for lead_pred, fn in fast:
                lead_delta = delta_get(lead_pred)
                if not lead_delta:
                    continue
                p, f, new, dup = fn(lead_delta, out, horizon)
                probes += p
                store.count += new
                derived += new
        else:
            for rm, rule, plan_fns in dispatch:
                if rm is not None:
                    rule_t0 = perf_counter()
                    rm.begin_round()
                for lead_pred, fn in plan_fns:
                    lead_delta = delta_get(lead_pred)
                    if not lead_delta:
                        continue
                    if provenance is None:
                        p, f, new, dup = fn(lead_delta, out, horizon)
                    else:
                        captured: list = []
                        p, f, new, dup = fn(lead_delta, out, horizon,
                                            captured)
                        if captured:
                            _record_captured(provenance, rule,
                                             captured, values,
                                             round_no)
                    probes += p
                    store.count += new
                    derived += new
                    if rm is not None:
                        rm.probes += p
                        rm.firings += f
                        rm.new_facts += new
                        rm.duplicates += dup
                if rm is not None:
                    rm.seconds += perf_counter() - rule_t0
                    rm.end_round()
        if max_facts is not None and store.count > max_facts:
            raise EvaluationError(
                f"model exceeded max_facts={max_facts} within the "
                f"window (currently {store.count} facts)"
            )
        if stats is not None:
            stats.record_round(derived=derived, delta=delta_count)
            stats.join_probes += probes
        if tracer is not None:
            tracer.emit("round", round=round_no, delta=delta_count,
                        derived=derived, probes=probes,
                        store=store.count)
            values = program.symbols.resolve_all()
            for pred, slices in out.items():
                for time, rows in slices.items():
                    for row in rows:
                        tracer.emit("fact", pred=pred, time=time,
                                    args=[values[i] for i in row])
        delta_rel = out
        delta_count = derived

    if stats is not None and metrics is not None:
        metrics.export_into(stats)
    if stats is not None and provenance is not None:
        provenance.export_into(stats)
    if tracer is not None:
        tracer.emit("eval_end", facts=store.count)
    return store.to_temporal_store()


__all__ = ["CompiledProgram", "compile_program", "compiled_fixpoint"]
