"""Int-tuple relation storage with eager positional hash indexes.

A :class:`CompiledStore` is the compiled engine's counterpart of
:class:`~repro.temporal.store.TemporalStore`: facts are tuples of
interned ints grouped by ``(predicate, timepoint)``; non-temporal facts
live under the timepoint ``None`` of the same mapping, so generated
join code addresses both uniformly.

Indexes differ from the generic store in two ways.  They are *eager*:
the set of (predicate, argument-positions) pairs a program's join plans
probe is known at compile time, so the indexes are registered up front,
built when the database is loaded, and maintained inline by the
generated head-emission code — never rebuilt mid-evaluation.  And they
are keyed by ``(timepoint, arg, arg, ...)`` in a single dict per
(predicate, positions) pair, so a probe is one hash lookup regardless
of how many slices the relation spans.
"""

from __future__ import annotations

from typing import Iterator, Union

from ...lang.atoms import Fact
from ...temporal.store import TemporalStore
from .symbols import SymbolTable

#: A relation: timepoint (or None for non-temporal) -> rows of int ids.
Slices = dict[Union[int, None], set[tuple]]


class CompiledStore:
    """Interned facts plus the indexes a compiled program declared."""

    __slots__ = ("symbols", "rel", "idx", "registered", "count")

    def __init__(self, symbols: SymbolTable,
                 registered: Union[dict[str, tuple], None] = None):
        self.symbols = symbols
        self.rel: dict[str, Slices] = {}
        #: (pred, positions) -> {(time, *args-at-positions): [rows]}
        self.idx: dict[tuple[str, tuple[int, ...]],
                       dict[tuple, list[tuple]]] = {}
        #: pred -> tuple of position-sets the program's plans probe.
        self.registered: dict[str, tuple[tuple[int, ...], ...]] = {}
        self.count = 0
        if registered:
            for pred, position_sets in registered.items():
                for positions in position_sets:
                    self.register_index(pred, positions)

    # -- index registry ---------------------------------------------------

    def register_index(self, pred: str,
                       positions: tuple[int, ...]) -> None:
        """Declare that plans will probe ``pred`` on ``positions``.

        Builds the index over any rows already present; thereafter
        :meth:`add` (and the generated emit code, which unrolls the same
        maintenance) keeps it current.
        """
        key = (pred, positions)
        if key in self.idx:
            return
        index: dict[tuple, list[tuple]] = {}
        self.idx[key] = index
        existing = self.registered.get(pred, ())
        self.registered[pred] = existing + (positions,)
        slices = self.rel.get(pred)
        if slices:
            for time, rows in slices.items():
                for row in rows:
                    k = (time,) + tuple(row[p] for p in positions)
                    index.setdefault(k, []).append(row)

    def indexes_for(self, pred: str) -> tuple[tuple[int, ...], ...]:
        """The registered position-sets for ``pred`` (may be empty)."""
        return self.registered.get(pred, ())

    # -- mutation ---------------------------------------------------------

    def add(self, pred: str, time: Union[int, None],
            row: tuple) -> bool:
        """Insert an already-interned row; True when it was new.

        Maintains every registered index on ``pred`` — the slow-path
        twin of the unrolled maintenance in generated emit code.
        """
        slices = self.rel.get(pred)
        if slices is None:
            slices = self.rel[pred] = {}
        rows = slices.get(time)
        if rows is None:
            rows = slices[time] = set()
        if row in rows:
            return False
        rows.add(row)
        self.count += 1
        for positions in self.registered.get(pred, ()):
            index = self.idx[(pred, positions)]
            k = (time,) + tuple(row[p] for p in positions)
            bucket = index.get(k)
            if bucket is None:
                index[k] = [row]
            else:
                bucket.append(row)
        return True

    def add_fact(self, fact: Fact) -> bool:
        """Intern and insert one :class:`~repro.lang.atoms.Fact`."""
        intern = self.symbols.intern
        return self.add(fact.pred, fact.time,
                        tuple(intern(value) for value in fact.args))

    def contains(self, pred: str, time: Union[int, None],
                 row: tuple) -> bool:
        slices = self.rel.get(pred)
        if slices is None:
            return False
        rows = slices.get(time)
        return rows is not None and row in rows

    # -- conversion -------------------------------------------------------

    def load(self, store: TemporalStore, horizon: int) -> None:
        """Intern a temporal store's facts up to ``horizon``.

        Temporal facts beyond the horizon are dropped (the ``L'(0...m)``
        truncation); the non-temporal part is kept in full.
        """
        intern = self.symbols.intern
        for pred, time, relation in store.slices():
            if time <= horizon:
                for args in relation:
                    self.add(pred, time,
                             tuple(intern(value) for value in args))
        nt = store.nt
        for pred in nt.predicates():
            for args in nt.relation(pred):
                self.add(pred, None,
                         tuple(intern(value) for value in args))

    def facts(self) -> Iterator[Fact]:
        """Resolve every row back to a :class:`Fact`."""
        values = self.symbols.resolve_all()
        for pred, slices in self.rel.items():
            for time, rows in slices.items():
                for row in rows:
                    yield Fact(pred, time,
                               tuple(values[i] for i in row))

    def to_temporal_store(self) -> TemporalStore:
        """Resolve the whole store into a fresh TemporalStore.

        Row resolution is memoized across slices: periodic programs
        re-derive the same few ground rows at thousands of timepoints,
        so nearly every row after the first slice is a dict hit instead
        of a fresh tuple.
        """
        out = TemporalStore()
        value = self.symbols.resolve_all().__getitem__
        nt_add = out.nt.add
        resolved: dict = {}
        memo: dict = {}
        memo_get = memo.get
        memo_set = memo.setdefault
        for pred, slices in self.rel.items():
            by_time = {}
            for time, rows in slices.items():
                if time is None:
                    for row in rows:
                        nt_add(pred, tuple(map(value, row)))
                elif rows:
                    # Nullary rows are () before and after resolution;
                    # non-empty rows resolve to non-empty (truthy)
                    # tuples, so `or` short-circuits on memo hits.
                    if () in rows:
                        by_time[time] = set(rows)
                    else:
                        by_time[time] = {
                            memo_get(row)
                            or memo_set(row, tuple(map(value, row)))
                            for row in rows}
            if by_time:
                resolved[pred] = by_time
        out.adopt_slices(resolved)
        return out

    def snapshot_rel(self) -> dict[str, Slices]:
        """A row-level copy of the relations (the round-1 delta).

        The first semi-naive round treats the whole store as the delta;
        generated lead scans iterate the delta while emits mutate the
        store, so the two must not share set objects.
        """
        return {
            pred: {time: set(rows) for time, rows in slices.items()
                   if rows}
            for pred, slices in self.rel.items()
        }

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"CompiledStore({self.count} facts, "
                f"{len(self.idx)} indexes)")
