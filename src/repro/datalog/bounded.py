"""Boundedness utilities for Datalog programs.

Theorem 6.2 of the paper reduces *strong k-boundedness* of function-free
rules (``LFP(S, D) = T_{S∧D}^k(∅)`` for every database ``D``, shown
undecidable by Gaifman/Sagiv/Mairson/Vardi 1987) to 1-periodicity of
temporal rules.  Boundedness itself is undecidable, but for a *fixed*
database the number of naive iterations to fixpoint is computable; these
helpers expose it so the reduction can be exercised empirically
(experiment E8).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..lang.atoms import Fact
from ..lang.rules import Rule
from .engine import check_datalog, immediate_consequences
from .facts import FactStore


def stage_sequence(rules: Sequence[Rule], edb: Iterable[Fact],
                   max_stages: int = 10_000) -> list[FactStore]:
    """The naive evaluation stages ``D, T(D), T²(D), ...`` up to fixpoint.

    Each stage includes the database (the paper's operator unions ``D``
    in).  The returned list ends with the first repeated store, i.e. the
    least fixpoint.  Raises ``RuntimeError`` past ``max_stages``.
    """
    check_datalog(rules)
    current = FactStore(edb)
    stages = [current]
    for _ in range(max_stages):
        derived = immediate_consequences(rules, current)
        nxt = current.copy()
        for fact in derived.facts():
            nxt.add(fact.pred, fact.args)
        if nxt == current:
            return stages
        stages.append(nxt)
        current = nxt
    raise RuntimeError(f"no fixpoint within {max_stages} stages")


def iterations_to_fixpoint(rules: Sequence[Rule],
                           edb: Iterable[Fact]) -> int:
    """Number of naive iterations until ``T`` adds nothing new."""
    return len(stage_sequence(rules, edb)) - 1


def is_k_bounded_on(rules: Sequence[Rule], edb: Iterable[Fact],
                    k: int) -> bool:
    """Does naive evaluation on this particular database converge within
    ``k`` iterations?

    Strong k-boundedness quantifies over *all* databases and is
    undecidable; this is the per-database check used to study the
    Theorem 6.2 correspondence on concrete instances.
    """
    return iterations_to_fixpoint(rules, edb) <= k
