"""Fact storage for the function-free Datalog engine.

A :class:`FactStore` keeps one set of argument tuples per predicate plus
lazily-built hash indexes on argument positions.  Indexes are created the
first time a join probes a predicate on a given set of bound positions and
are maintained incrementally on insertion, so repeated semi-naive rounds
pay for index construction once.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from ..lang.atoms import Fact

ArgTuple = tuple[Union[str, int], ...]


class FactStore:
    """A mutable set of ground non-temporal facts with positional indexes."""

    def __init__(self, facts: Iterable[Fact] = ()):
        self._relations: dict[str, set[ArgTuple]] = {}
        # (pred, positions) -> {key_values: [arg_tuples]}
        # pred -> {positions: {key: [args]}} — keyed by predicate so
        # insertion only maintains that predicate's indexes.
        self._indexes: dict[str, dict[tuple[int, ...],
                                      dict[ArgTuple,
                                           list[ArgTuple]]]] = {}
        #: Optional EvalStats accumulator counting index hits/misses;
        #: attached by the engines, never copied with the store.
        self.stats = None
        for fact in facts:
            self.add(fact.pred, fact.args)

    def add(self, pred: str, args: ArgTuple) -> bool:
        """Insert a fact; returns True when it was not already present."""
        relation = self._relations.setdefault(pred, set())
        if args in relation:
            return False
        relation.add(args)
        pred_indexes = self._indexes.get(pred)
        if pred_indexes:
            for positions, index in pred_indexes.items():
                key = tuple(args[p] for p in positions)
                index.setdefault(key, []).append(args)
        return True

    def add_fact(self, fact: Fact) -> bool:
        if fact.time is not None:
            raise ValueError(f"temporal fact {fact} in non-temporal store")
        return self.add(fact.pred, fact.args)

    def discard(self, pred: str, args: ArgTuple) -> bool:
        """Remove a fact; returns True when it was present.

        Indexes on the predicate are dropped and rebuilt lazily on the
        next probe (deletion is rare relative to lookup).
        """
        relation = self._relations.get(pred)
        if relation is None or args not in relation:
            return False
        relation.discard(args)
        self._indexes.pop(pred, None)
        return True

    def contains(self, pred: str, args: ArgTuple) -> bool:
        relation = self._relations.get(pred)
        return relation is not None and args in relation

    def relation(self, pred: str) -> set[ArgTuple]:
        """The (possibly empty) set of tuples of one predicate."""
        return self._relations.get(pred, set())

    def predicates(self) -> set[str]:
        return set(self._relations)

    def lookup(self, pred: str, positions: tuple[int, ...],
               key: ArgTuple) -> list[ArgTuple]:
        """All tuples of ``pred`` whose ``positions`` equal ``key``.

        With empty ``positions`` this returns every tuple of the
        predicate.  Builds (and thereafter maintains) a hash index on the
        requested positions.
        """
        if not positions:
            return list(self._relations.get(pred, ()))
        pred_indexes = self._indexes.setdefault(pred, {})
        index = pred_indexes.get(positions)
        if index is None:
            index = {}
            for args in self._relations.get(pred, ()):
                index_key = tuple(args[p] for p in positions)
                index.setdefault(index_key, []).append(args)
            pred_indexes[positions] = index
            if self.stats is not None:
                self.stats.index_misses += 1
        elif self.stats is not None:
            self.stats.index_hits += 1
        return index.get(key, [])

    def facts(self) -> Iterator[Fact]:
        """Iterate all facts in no particular order."""
        for pred, relation in self._relations.items():
            for args in relation:
                yield Fact(pred, None, args)

    def copy(self) -> "FactStore":
        clone = FactStore()
        for pred, relation in self._relations.items():
            clone._relations[pred] = set(relation)
        return clone

    def __len__(self) -> int:
        return sum(len(r) for r in self._relations.values())

    def __contains__(self, fact: Fact) -> bool:
        return fact.time is None and self.contains(fact.pred, fact.args)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FactStore):
            return NotImplemented
        mine = {p: r for p, r in self._relations.items() if r}
        theirs = {p: r for p, r in other._relations.items() if r}
        return mine == theirs

    def __repr__(self) -> str:
        return f"FactStore({len(self)} facts, {len(self._relations)} preds)"
