"""Classical function-free Datalog substrate.

Provides the non-temporal evaluation engine (naive and semi-naive), fact
storage with positional indexes, predicate dependency analysis, and the
boundedness utilities that back the Theorem 6.2 reduction.
"""

from .bounded import (is_k_bounded_on, iterations_to_fixpoint,
                      stage_sequence)
from .depgraph import (dependency_graph, derived_predicates,
                       is_mutual_recursion_free, is_recursive_rule,
                       is_stratifiable, negative_edges, predicate_levels,
                       recursive_predicates, strata_of_rules,
                       stratification, strongly_connected_components)
from .engine import (check_datalog, immediate_consequences, join,
                     naive_evaluate, plan_order, seminaive_evaluate)
from .facts import ArgTuple, FactStore

__all__ = [
    "FactStore", "ArgTuple",
    "naive_evaluate", "seminaive_evaluate", "immediate_consequences",
    "check_datalog", "join", "plan_order",
    "dependency_graph", "strongly_connected_components",
    "derived_predicates", "recursive_predicates",
    "is_mutual_recursion_free", "is_recursive_rule", "predicate_levels",
    "stratification", "is_stratifiable", "strata_of_rules",
    "negative_edges",
    "stage_sequence", "iterations_to_fixpoint", "is_k_bounded_on",
]
