"""Durable storage for temporal databases (SQLite, stdlib-only)."""

from .sqlite_store import (append_facts, fact_count, iter_facts,
                           load_database, save_database)

__all__ = [
    "save_database", "load_database", "append_facts", "iter_facts",
    "fact_count",
]
