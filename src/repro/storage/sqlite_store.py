"""SQLite persistence for temporal databases (stdlib only).

A production deductive database needs its extensional data to live
somewhere durable.  This module stores temporal databases in a SQLite
file with a simple two-table schema:

* ``facts(pred TEXT, time INTEGER NULL, args TEXT)`` — one row per
  fact, arguments JSON-encoded to keep int/str constants typed;
* ``meta(key TEXT PRIMARY KEY, value TEXT)`` — format version.

The API is deliberately small: save, load, append, and a streaming
iterator for databases too large to hold twice.  Programs (rules) are
text — version them next to the data with
:func:`repro.lang.format_program`.
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import closing
from pathlib import Path
from typing import Iterable, Iterator, Union

from ..lang.atoms import Fact
from ..temporal.database import TemporalDatabase

FORMAT_VERSION = "1"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS facts (
    pred TEXT NOT NULL,
    time INTEGER,
    args TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS facts_pred_time ON facts (pred, time);
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


def _connect(path: Union[str, Path]) -> sqlite3.Connection:
    connection = sqlite3.connect(str(path))
    connection.executescript(_SCHEMA)
    row = connection.execute(
        "SELECT value FROM meta WHERE key = 'format'").fetchone()
    if row is None:
        connection.execute(
            "INSERT INTO meta (key, value) VALUES ('format', ?)",
            (FORMAT_VERSION,))
        connection.commit()
    elif row[0] != FORMAT_VERSION:
        connection.close()
        raise ValueError(f"unsupported storage format {row[0]!r}")
    return connection


def save_database(database: Union[TemporalDatabase, Iterable[Fact]],
                  path: Union[str, Path]) -> int:
    """Write all facts to ``path``, replacing existing contents.

    Returns the number of rows written.
    """
    facts = (database.facts()
             if isinstance(database, TemporalDatabase) else database)
    # ``closing`` matters: a bare ``with connection:`` commits the
    # transaction but leaves the connection (and its file handle) open
    # forever — and held open mid-transaction if the facts iterable
    # throws.
    with closing(_connect(path)) as connection, connection:
        connection.execute("DELETE FROM facts")
        count = 0
        for fact in facts:
            connection.execute(
                "INSERT INTO facts (pred, time, args) VALUES (?, ?, ?)",
                (fact.pred, fact.time, json.dumps(list(fact.args))))
            count += 1
    return count


def append_facts(facts: Iterable[Fact],
                 path: Union[str, Path]) -> int:
    """Append facts to an existing (or fresh) store; returns the count.

    Duplicates are tolerated in the file and collapse on load (facts
    are set-valued).
    """
    with closing(_connect(path)) as connection, connection:
        count = 0
        for fact in facts:
            connection.execute(
                "INSERT INTO facts (pred, time, args) VALUES (?, ?, ?)",
                (fact.pred, fact.time, json.dumps(list(fact.args))))
            count += 1
    return count


def iter_facts(path: Union[str, Path],
               pred: Union[str, None] = None,
               time_range: Union[tuple[int, int], None] = None
               ) -> Iterator[Fact]:
    """Stream facts from a store, optionally filtered.

    ``pred`` restricts to one predicate; ``time_range = (lo, hi)``
    restricts temporal facts to the inclusive range (non-temporal facts
    are excluded by a time filter).
    """
    query = "SELECT pred, time, args FROM facts"
    clauses, params = [], []
    if pred is not None:
        clauses.append("pred = ?")
        params.append(pred)
    if time_range is not None:
        clauses.append("time BETWEEN ? AND ?")
        params.extend(time_range)
    if clauses:
        query += " WHERE " + " AND ".join(clauses)
    connection = _connect(path)
    try:
        for row_pred, time, args in connection.execute(query, params):
            yield Fact(row_pred, time, tuple(json.loads(args)))
    finally:
        connection.close()


def load_database(path: Union[str, Path],
                  pred: Union[str, None] = None,
                  time_range: Union[tuple[int, int], None] = None
                  ) -> TemporalDatabase:
    """Load (a filtered view of) a stored database."""
    return TemporalDatabase(iter_facts(path, pred=pred,
                                       time_range=time_range))


def fact_count(path: Union[str, Path]) -> int:
    """Number of fact rows in a store (duplicates counted)."""
    connection = _connect(path)
    try:
        (count,) = connection.execute(
            "SELECT COUNT(*) FROM facts").fetchone()
        return count
    finally:
        connection.close()
