"""Benchmark report generator: pytest-benchmark JSON → markdown tables.

The harness stores claim-relevant measurements in each benchmark's
``extra_info`` (see ``benchmarks/_util.py``).  This module groups a
``--benchmark-json`` dump by experiment module and renders one markdown
table per experiment — the mechanical part of refreshing
EXPERIMENTS.md after an engine change:

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python -m repro.benchreport bench.json > report.md
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import TextIO, Union


def _experiment_of(fullname: str) -> str:
    """``benchmarks/bench_e3_exponential.py::test_x[2]`` → ``e3``."""
    module = fullname.split("::")[0]
    stem = Path(module).stem
    if stem.startswith("bench_"):
        return stem[len("bench_"):]
    return stem


def _fmt_time(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (list, dict)):
        return json.dumps(value)
    return str(value)


def _hot_rule_columns(stats: dict) -> dict:
    """Top-3 hot rules from ``extra.rules`` → ``stats.hot1..hot3``.

    Sorted by self-time descending; each cell names the rule and its
    cost so a hot-rule regression is visible in the report diff.
    """
    rules = stats.get("extra", {}).get("rules")
    if not isinstance(rules, list):
        return {}
    ranked = sorted(
        (r for r in rules if isinstance(r, dict)),
        key=lambda r: r.get("seconds", 0.0), reverse=True)
    out: dict = {}
    for index, record in enumerate(ranked[:3], start=1):
        label = str(record.get("label", record.get("id", "?")))
        seconds = record.get("seconds", 0.0)
        new = record.get("new_facts", 0)
        out[f"stats.hot{index}"] = \
            f"{label} ({seconds * 1e3:.1f} ms, {new} new)"
    return out


def _flatten_eval_stats(stats: dict) -> dict:
    """``eval_stats`` dict → ``stats.*`` scalar columns.

    Per-round series and nested dicts would swamp a markdown table, so
    only scalar fields survive; the period renders as ``(b, p)`` and a
    per-rule ``extra.rules`` block contributes ``stats.hot1..hot3``.
    """
    out: dict = {}
    for key, value in stats.items():
        if key == "period":
            if value is not None:
                out["stats.period"] = f"(b={value[0]}, p={value[1]})"
        elif not isinstance(value, (list, dict)):
            out[f"stats.{key}"] = value
    out.update(_hot_rule_columns(stats))
    return out


def load_rows(data: dict) -> dict[str, list[dict]]:
    """Group benchmark records by experiment, sorted by test name.

    An ``eval_stats`` entry in a record's ``extra_info`` (see
    ``benchmarks/_util.py:record_stats``) is flattened into ``stats.*``
    columns; other extra-info keys pass through unchanged.
    """
    by_experiment: dict[str, list[dict]] = {}
    for bench in data.get("benchmarks", []):
        experiment = _experiment_of(bench["fullname"])
        row = {
            "test": bench["name"],
            "mean": bench["stats"]["mean"],
            "rounds": bench["stats"]["rounds"],
        }
        for key, value in bench.get("extra_info", {}).items():
            if key == "eval_stats" and isinstance(value, dict):
                row.update(_flatten_eval_stats(value))
            else:
                row[key] = value
        by_experiment.setdefault(experiment, []).append(row)
    for rows in by_experiment.values():
        rows.sort(key=lambda r: r["test"])
    return by_experiment


def render(data: dict, out: TextIO) -> None:
    """Write the markdown report for one benchmark JSON dump."""
    machine = data.get("machine_info", {})
    print("# Benchmark report", file=out)
    if machine:
        print(f"\nPython {machine.get('python_version', '?')} on "
              f"{machine.get('system', '?')} "
              f"({machine.get('cpu', {}).get('brand_raw', '')})".rstrip(),
              file=out)
    for experiment, rows in sorted(load_rows(data).items()):
        print(f"\n## {experiment}\n", file=out)
        # Column set: the union of extra-info keys, stable order.
        keys: list[str] = []
        for row in rows:
            for key in row:
                if key not in ("test", "mean", "rounds") and \
                        key not in keys:
                    keys.append(key)
        header = ["test", "mean"] + keys
        print("| " + " | ".join(header) + " |", file=out)
        print("|" + "|".join("---" for _ in header) + "|", file=out)
        for row in rows:
            cells = [row["test"], _fmt_time(row["mean"])]
            cells.extend(_fmt_value(row.get(key, "")) for key in keys)
            print("| " + " | ".join(cells) + " |", file=out)


def main(argv: Union[list, None] = None,
         out: Union[TextIO, None] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    stream = out if out is not None else sys.stdout
    if len(argv) != 1:
        print("usage: python -m repro.benchreport BENCH.json",
              file=sys.stderr)
        return 2
    data = json.loads(Path(argv[0]).read_text())
    render(data, stream)
    return 0


if __name__ == "__main__":
    sys.exit(main())
