"""repro — temporal deductive databases with polynomial-time queries.

A complete, faithful reproduction of Jan Chomicki, *Polynomial Time Query
Processing in Temporal Deductive Databases*, PODS 1990.

Quick start::

    from repro import TDD

    tdd = TDD.from_text('''
        plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
        offseason(T+365) :- offseason(T).
        plane(12, hunter).
        resort(hunter).
        offseason(90..272).
    ''')
    tdd.ask("exists T: plane(T, hunter)")
    tdd.answers("plane(T, hunter)").expand(1000)

The public surface is re-exported here; subpackages:

* :mod:`repro.lang`     — terms, atoms, rules, parser;
* :mod:`repro.datalog`  — classical function-free Datalog substrate;
* :mod:`repro.temporal` — temporal stores, algorithm BT, periodicity;
* :mod:`repro.rewrite`  — ground temporal rewrite systems;
* :mod:`repro.core`     — specifications, queries, tractable classes;
* :mod:`repro.obs`      — evaluation statistics and structured tracing;
* :mod:`repro.workloads` — synthetic workload generators for the benchmarks.
"""

from .core import (AnswerSet, Classification, RelationalSpec, TDD,
                   compute_specification, is_inflationary,
                   is_multi_separable, is_separable, one_period_bound,
                   parse_query, temporalize)
from .lang import Atom, Fact, Rule, parse_program
from .obs import EvalStats, Tracer
from .temporal import Period, TemporalDatabase, bt_evaluate, bt_verbatim

__version__ = "1.0.0"

__all__ = [
    "TDD", "Classification", "RelationalSpec", "AnswerSet",
    "TemporalDatabase", "Period",
    "Atom", "Fact", "Rule",
    "parse_program", "parse_query",
    "bt_evaluate", "bt_verbatim", "compute_specification",
    "EvalStats", "Tracer",
    "is_inflationary", "is_multi_separable", "is_separable",
    "one_period_bound", "temporalize",
    "__version__",
]
