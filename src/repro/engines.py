"""The engine registry: every selectable evaluation engine, by name.

Two tiers of engine names exist:

* *Window engines* compute the truncated least fixpoint one window at a
  time and are interchangeable inside algorithm BT (and inside each
  stratum of the stratified extension): ``seminaive`` — the generic
  delta-driven loop of :func:`repro.temporal.operator.fixpoint` — and
  ``compiled`` — the interning + indexed-join-plan engine of
  :func:`repro.datalog.compiled.compiled_fixpoint`.  ``bt`` is accepted
  as an alias of ``seminaive`` wherever a window engine is named, since
  that is what the BT driver runs by default.

* *Profile engines* (:data:`PROFILE_ENGINES`) additionally include the
  whole-model and goal-directed engines that are not window-fixpoint
  drop-ins (``verbatim``, ``interval``, ``magic``, ``topdown``); they
  are what ``repro profile --engine`` validates against.

Lookups raise :class:`~repro.lang.errors.EvaluationError` for unknown
names, listing the valid ones — the CLI and the query service surface
that message verbatim.
"""

from __future__ import annotations

from typing import Callable

from .lang.errors import EvaluationError

#: Canonical window-fixpoint engine names.
WINDOW_ENGINES = ("seminaive", "compiled")

#: Accepted aliases (alias -> canonical name).
_WINDOW_ALIASES = {"bt": "seminaive"}

#: Engine names the query surfaces (ask/answers/spec/serve) accept:
#: the BT driver with either window engine underneath.
QUERY_ENGINES = ("bt", "compiled")

#: Engine names accepted by ``repro profile`` /
#: :func:`repro.obs.profile.profile_tdd`.
PROFILE_ENGINES = ("bt", "compiled", "verbatim", "interval", "magic",
                   "topdown")


def canonical_window_engine(name: str) -> str:
    """Resolve ``name`` (or an alias) to a canonical window engine.

    Raises :class:`EvaluationError` for unknown names, listing the
    valid ones.
    """
    resolved = _WINDOW_ALIASES.get(name, name)
    if resolved not in WINDOW_ENGINES:
        valid = sorted(set(WINDOW_ENGINES) | set(_WINDOW_ALIASES))
        raise EvaluationError(
            f"unknown engine {name!r}; choose from {', '.join(valid)}"
        )
    return resolved


def window_fixpoint(name: str = "seminaive") -> Callable:
    """The window-fixpoint function registered under ``name``.

    Every returned callable has the
    :func:`repro.temporal.operator.fixpoint` signature:
    ``(rules, database, horizon, max_facts=None, stats=None,
    tracer=None, metrics=None) -> TemporalStore``.
    """
    resolved = canonical_window_engine(name)
    if resolved == "compiled":
        from .datalog.compiled import compiled_fixpoint
        return compiled_fixpoint
    from .temporal.operator import fixpoint
    return fixpoint


__all__ = ["WINDOW_ENGINES", "QUERY_ENGINES", "PROFILE_ENGINES",
           "canonical_window_engine", "window_fixpoint"]
