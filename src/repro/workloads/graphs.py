"""Graph workloads for the inflationary experiments (E1, E5).

The paper's second worked example (Section 2): bounded path search in a
directed graph, expressed by an inflationary ruleset whose third rule
makes every derived fact persist::

    path(K, X, X)   :- node(X), null(K).
    path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
    path(K+1, X, Y) :- path(K, X, Y).

``path(K, X, Y)`` reads "there is a path of length at most K from X to
Y".  The ruleset is inflationary (Theorem 5.1 ⇒ tractable) but not
1-periodic, because path lengths are unbounded over all graphs.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..lang.atoms import Fact
from ..lang.rules import Rule
from ..lang.sorts import parse_rules

_PATH_RULES = """
path(K, X, X) :- node(X), null(K).
path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
path(K+1, X, Y) :- path(K, X, Y).
"""


def bounded_path_program() -> tuple[Rule, ...]:
    """The paper's bounded-path ruleset, verbatim."""
    return parse_rules(_PATH_RULES)


def graph_database(edges: Sequence[tuple[str, str]]) -> list[Fact]:
    """Database facts for a digraph: node/1, edge/2 and null(0)."""
    nodes = sorted({v for edge in edges for v in edge})
    facts = [Fact("null", 0, ())]
    facts.extend(Fact("node", None, (v,)) for v in nodes)
    facts.extend(Fact("edge", None, (u, v)) for u, v in edges)
    return facts


def random_digraph(n_nodes: int, n_edges: int,
                   seed: int = 0) -> list[tuple[str, str]]:
    """A random simple digraph with exactly ``n_edges`` distinct edges."""
    rng = random.Random(seed)
    names = [f"v{i}" for i in range(n_nodes)]
    possible = n_nodes * (n_nodes - 1)
    if n_edges > possible:
        raise ValueError(f"at most {possible} edges on {n_nodes} nodes")
    edges: set[tuple[str, str]] = set()
    while len(edges) < n_edges:
        u, v = rng.sample(names, 2)
        edges.add((u, v))
    return sorted(edges)


def line_graph(n_nodes: int) -> list[tuple[str, str]]:
    """The path graph v0 -> v1 -> ... -> v(n-1): the diameter-maximising
    family (period threshold grows linearly with n)."""
    return [(f"v{i}", f"v{i + 1}") for i in range(n_nodes - 1)]


def cycle_graph(n_nodes: int) -> list[tuple[str, str]]:
    """The directed cycle on ``n_nodes`` nodes."""
    return [(f"v{i}", f"v{(i + 1) % n_nodes}") for i in range(n_nodes)]


def complete_graph(n_nodes: int) -> list[tuple[str, str]]:
    """The complete digraph (diameter 1, densest slice states)."""
    names = [f"v{i}" for i in range(n_nodes)]
    return [(u, v) for u in names for v in names if u != v]
