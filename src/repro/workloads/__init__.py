"""Synthetic workload generators for the benchmark harness.

The paper (a 1990 theory paper) ships no datasets; these generators
expose the growth parameters its complexity claims quantify over —
database size ``n``, maximum temporal depth ``c``, predicate count — for
the three rule families the experiments use: inflationary graph search,
multi-separable schedules, and coprime-cycle counters.
"""

from .cycles import (coprime_cycles_database, coprime_cycles_program,
                     coprime_sync_database, coprime_sync_program,
                     copy_chain_database, copy_chain_program,
                     expected_period, first_primes,
                     single_counter_program)
from .graphs import (bounded_path_program, complete_graph, cycle_graph,
                     graph_database, line_graph, random_digraph)
from .protocols import ring_database, token_ring_program
from .schedules import (paper_travel_database, scaled_travel_database,
                        travel_agent_program)

__all__ = [
    "bounded_path_program", "graph_database", "random_digraph",
    "line_graph", "cycle_graph", "complete_graph",
    "travel_agent_program", "paper_travel_database",
    "scaled_travel_database",
    "coprime_cycles_program", "coprime_cycles_database",
    "coprime_sync_program", "coprime_sync_database",
    "expected_period", "first_primes", "single_counter_program",
    "copy_chain_program", "copy_chain_database",
    "token_ring_program", "ring_database",
]
