"""Protocol workloads: the token ring (Section 8's open question).

The paper closes with: "Other useful tractable classes should exist as
well."  The token-ring protocol is a crisp witness: a token circulates
around ``n`` processes, one hop per tick::

    token(T+1, Y) :- token(T, X), next(X, Y).

Its least model has period exactly ``n`` — *polynomially* periodic, so
tractable by Theorem 4.1 — yet the ruleset is

* **not inflationary** (the token leaves each process), and
* **not multi-separable** (the recursive rule changes both the time and
  the data argument, so it is neither time-only nor data-only).

Both sufficient criteria of Sections 5 and 6 miss it; algorithm BT
still handles it comfortably because the period is small.  Experiment
coverage: the `token_ring` tests and ``examples/token_ring.py``.
"""

from __future__ import annotations

from ..lang.atoms import Fact
from ..lang.rules import Rule
from ..lang.sorts import parse_rules

_TOKEN_RULES = """
token(T+1, Y) :- token(T, X), next(X, Y).
served(T+1, X) :- token(T, X).
served(T+1, X) :- served(T, X).
"""


def token_ring_program() -> tuple[Rule, ...]:
    """Token circulation plus an inflationary 'served' ledger."""
    return parse_rules(_TOKEN_RULES)


def ring_database(n_processes: int, start: int = 0) -> list[Fact]:
    """A ring of ``n_processes`` with the token seeded at ``proc0``.

    ``start`` places the seed at a later timepoint to exercise non-zero
    database depths.
    """
    if n_processes < 1:
        raise ValueError("a ring needs at least one process")
    facts = [Fact("token", start, ("proc0",))]
    facts.extend(
        Fact("next", None, (f"proc{i}", f"proc{(i + 1) % n_processes}"))
        for i in range(n_processes)
    )
    return facts
