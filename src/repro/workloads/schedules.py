"""Airline-schedule workloads for the multi-separable experiments (E2).

The paper's first worked example (Section 2): a travel agent's seasonal
flight schedule.  The ruleset is multi-separable (but not separable, and
not inflationary), hence 1-periodic with a database-independent period;
E2 verifies that the measured period stays constant while the database
grows by orders of magnitude.
"""

from __future__ import annotations

import random

from ..lang.atoms import Fact
from ..lang.rules import Rule
from ..lang.sorts import parse_rules

_TRAVEL_RULES = """
plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
plane(T+1, X) :- plane(T, X), resort(X), holiday(T).
offseason(T+365) :- offseason(T).
winter(T+365) :- winter(T).
holiday(T+365) :- holiday(T).
"""


def travel_agent_program(year_length: int = 365) -> tuple[Rule, ...]:
    """The paper's travel-agent ruleset (year length parameterised)."""
    text = _TRAVEL_RULES.replace("365", str(year_length))
    return parse_rules(text)


def paper_travel_database() -> list[Fact]:
    """The database from the paper's example, dates mapped to integers.

    Footnote 1: dates abbreviate temporal terms ``0+1+...+1``.  Day 0
    is 1989-12-20, the start of ``winter(<12/20/89, 03/20/90>)`` = days
    0..90; ``offseason(<03/21/90, 12/19/90>)`` = days 91..364; holidays
    are 1989-12-25 (day 5) and 1990-01-01 (day 12, also the first plane
    departure).  The next winter arrives through the ``+365`` rules.
    The mapping is verified in ``tests/test_dates.py``.
    """
    facts = [
        Fact("plane", 12, ("hunter",)),
        Fact("resort", None, ("hunter",)),
    ]
    facts.extend(Fact("winter", t, ()) for t in range(0, 91))
    facts.extend(Fact("offseason", t, ()) for t in range(91, 365))
    facts.append(Fact("holiday", 5, ()))
    facts.append(Fact("holiday", 12, ()))
    return facts


def scaled_travel_database(n_resorts: int, year_length: int = 365,
                           n_holidays: int = 8,
                           seed: int = 0) -> list[Fact]:
    """A travel database with ``n_resorts`` resorts and random seasons.

    Database size grows linearly with ``n_resorts`` (one plane seed and
    one resort fact each) while the rules stay fixed — the E2 workload
    demonstrating that the period is database-independent.
    """
    rng = random.Random(seed)
    facts: list[Fact] = []
    winter_end = year_length // 4
    offseason_end = 3 * year_length // 4
    facts.extend(Fact("winter", t, ()) for t in range(0, winter_end))
    facts.extend(Fact("offseason", t, ())
                 for t in range(winter_end, offseason_end))
    facts.extend(Fact("winter", t, ())
                 for t in range(offseason_end, year_length))
    for _ in range(n_holidays):
        facts.append(Fact("holiday", rng.randrange(year_length), ()))
    for i in range(n_resorts):
        name = f"resort{i}"
        facts.append(Fact("resort", None, (name,)))
        facts.append(Fact("plane", rng.randrange(year_length), (name,)))
    return facts
