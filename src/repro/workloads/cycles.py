"""Cycle-family workloads for the worst-case experiments (E3, E4).

Theorem 3.1 bounds ``b + p`` only exponentially in the database size,
and Theorem 3.3 exhibits exponential-size specifications.  The standard
witness family is a set of independent counters with pairwise coprime
cycle lengths::

    tick1(T+2) :- tick1(T).      tick1(0).
    tick2(T+3) :- tick2(T).      tick2(0).
    tick3(T+5) :- tick3(T).      tick3(0).
    ...

The least model's period is ``lcm(2, 3, 5, ...)`` — the primorial, which
grows as ``e^{(1+o(1)) k ln k}`` with the number of counters ``k``, i.e.
super-polynomially in the (linear-size) database.  Each family member is
multi-separable (so 1-periodic!), showing that 1-periodicity caps the
period per *ruleset* while the worst case over growing rulesets is still
exponential — exactly the landscape Sections 4–6 describe.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..lang.atoms import Fact
from ..lang.rules import Rule
from ..lang.sorts import parse_rules

_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]


def first_primes(k: int) -> list[int]:
    """The first ``k`` primes (k ≤ 12 precomputed, then sieved)."""
    if k <= len(_PRIMES):
        return _PRIMES[:k]
    primes = list(_PRIMES)
    candidate = primes[-1] + 2
    while len(primes) < k:
        if all(candidate % p for p in primes
               if p * p <= candidate):
            primes.append(candidate)
        candidate += 2
    return primes


def coprime_cycles_program(periods: Sequence[int]) -> tuple[Rule, ...]:
    """One independent counter rule per requested cycle length."""
    lines = [
        f"tick{i}(T+{p}) :- tick{i}(T)."
        for i, p in enumerate(periods)
    ]
    return parse_rules("\n".join(lines))


def coprime_cycles_database(periods: Sequence[int]) -> list[Fact]:
    """One seed fact ``tick_i(0)`` per counter."""
    return [Fact(f"tick{i}", 0, ()) for i in range(len(periods))]


def expected_period(periods: Sequence[int]) -> int:
    """The least model's period length: lcm of the cycle lengths."""
    return math.lcm(*periods) if periods else 1


def coprime_sync_program(periods: Sequence[int]) -> tuple[Rule, ...]:
    """Coprime counters over tokens, plus the lcm-witness conjunction.

    Each counter carries a data argument (one independent copy of the
    cycle family per token) and ``sync(T, X)`` holds exactly when every
    counter fires at once — at multiples of ``lcm(periods)``.  The
    ``sync`` predicate makes Theorem 3.1's blow-up *observable as one
    relation*: its period is the primorial itself, not merely the
    period of the joint model.  The join-dense shape (k-way conjunction
    on a shared data variable) is also the engine benchmarks' dense
    counterpart to the bare counters.
    """
    lines = [
        f"tick{i}(T+{p}, X) :- tick{i}(T, X)."
        for i, p in enumerate(periods)
    ]
    body = ", ".join(f"tick{i}(T, X)" for i in range(len(periods)))
    lines.append(f"sync(T, X) :- {body}.")
    return parse_rules("\n".join(lines))


def coprime_sync_database(periods: Sequence[int],
                          n_items: int = 1) -> list[Fact]:
    """Seed every counter at 0 for each of ``n_items`` tokens."""
    return [Fact(f"tick{i}", 0, (f"item{j}",))
            for i in range(len(periods)) for j in range(n_items)]


def single_counter_program(p: int) -> tuple[Rule, ...]:
    """The paper's even/odd example generalised to step ``p``."""
    return parse_rules(f"tick0(T+{p}) :- tick0(T).")


def copy_chain_program(length: int) -> tuple[Rule, ...]:
    """A linear chain of copies: stage_{i+1} lags stage_i by one step.

    Inflationary-free, 1-periodic with threshold growing linearly in the
    chain length; used to vary the period start ``b`` independently of
    the period length ``p``.
    """
    lines = [f"stage{i + 1}(T+1, X) :- stage{i}(T, X)."
             for i in range(length)]
    lines.append(f"stage{length}(T+1, X) :- stage{length}(T, X).")
    return parse_rules("\n".join(lines))


def copy_chain_database(n_items: int) -> list[Fact]:
    """Seed items at stage 0 of the copy chain."""
    return [Fact("stage0", 0, (f"item{i}",)) for i in range(n_items)]
