"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``run FILE``
    Parse and evaluate a TDD program file; print the period, the
    specification summary and the classification.
``ask FILE QUERY``
    Answer a yes/no query against the program's least model.
``answers FILE QUERY [--expand N]``
    Print the finite representation of an open query's answers,
    optionally expanded up to timepoint N.
``classify FILE``
    Report membership in the paper's tractable classes.
``spec FILE [--save OUT.json]``
    Print (and optionally persist) the relational specification.
``lint FILE...``
    Run the span-aware diagnostics engine; text, JSON or SARIF output
    (``--format``), code selection (``--select``/``--ignore``), and a
    severity gate for CI (``--max-severity``).
``profile FILE [--engine E] [--query Q]``
    Run evaluation under the per-rule profiler and print a hot-rule
    table (``--format json`` for machines, ``--folded`` for
    flamegraph.pl / speedscope).
``traceview TRACE.jsonl``
    Summarize an existing ``--trace`` file into a round-by-round
    convergence timeline with phase times and the period round.
``explain FILE FACT``
    Print a derivation tree justifying a ground model fact (recorded
    provenance when available, search-based reconstruction otherwise).
``why FILE FACT [--format {text,json,dot}]``
    Print the *recorded* proof tree for a model fact — the proof DAG
    the engine actually built, verified against the model, with
    ``file:line`` rule spans (JSON node/edge lists or Graphviz DOT on
    request).
``whynot FILE FACT``
    Explain why a fact is **not** in the model: for each candidate
    rule, the nearest failed firing — which body literal broke, at
    which time point.
``repl FILE``
    Interactive query loop; ``:period``, ``:spec``, ``:classify``,
    ``:quit`` are built in.
``serve [--port N] [--workers N] [--cache FILE] [--deadline S]
[--access-log FILE] [--slow-ms MS]``
    HTTP query service (JSON protocol) answering batches of ask /
    answers requests from cached relational specifications, with
    request-level telemetry: trace ids, ``GET /metrics`` (Prometheus
    text format), a structured JSON access log, and a slow-query
    span-tree log.  ``--trace FILE`` exports per-request spans.
    ``--workers N`` runs a multi-process tier: a front-end that
    consistent-hash routes on the program key to N supervised worker
    processes (crashed workers are respawned; their requests retried).
``top [--url URL] [--interval S]``
    Live terminal dashboard polling a running server's ``/stats``:
    QPS, cache hit ratio, latency percentiles, degraded count, and —
    for a tier — the per-worker balance table.
``trace {ls,show} [--url URL]``
    Inspect the assembled request traces a collection-enabled server
    retains: ``ls`` lists recent trace ids, ``show ID`` prints one
    cross-process span tree (front-end *and* worker spans stitched
    through the propagated trace id).
``cache {ls,rm,stats} CACHE.sqlite``
    Inspect or prune a persistent spec cache file.

``ask``, ``answers``, ``spec``, ``why`` and ``whynot`` also accept
``--cache FILE``: a warm cache hit answers from the persisted
specification without running BT.  They (and ``serve``) also accept
``--engine {bt,seminaive,compiled}`` to pick the window engine BT runs
on; ``compiled`` interns constants and replays indexed join plans for
the same answers in less time.  ``--trace FILE --trace-provenance N``
additionally records provenance and samples every Nth derived support
edge into the trace as a schema-4 ``derive`` event.

Program files use the paper's rule syntax (see README).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence, TextIO, Union

from .analysis import UnknownCodeError
from .core.serialize import save_spec
from .core.tdd import TDD
from .lang.errors import LocatedError, ReproError
from .obs import EvalStats, JsonLinesSink, Tracer


class _SourceError(Exception):
    """A located static error plus the file and text it occurred in,
    so :func:`main` can render ``file:line:col`` with a caret excerpt."""

    def __init__(self, path: str, text: str, cause: LocatedError):
        super().__init__(str(cause))
        self.path = path
        self.text = text
        self.cause = cause


def _parse_file(path: str) -> tuple[TDD, str]:
    """Read + parse a program file, wrapping located static errors."""
    text = Path(path).read_text()
    try:
        return TDD.from_text(text), text
    except LocatedError as exc:
        if exc.line is None:
            raise
        raise _SourceError(path, text, exc) from exc


def _load(args) -> TDD:
    tdd, text = _parse_file(args.file)
    engine = getattr(args, "engine", None)
    if engine is not None:
        from .engines import canonical_window_engine
        tdd.engine = canonical_window_engine(engine)
    stats, tracer = getattr(args, "_obs", (None, None))
    provenance = None
    if getattr(args, "trace_provenance", None):
        from .obs.provenance import ProvenanceStore
        provenance = ProvenanceStore(tracer=tracer,
                                     sample=args.trace_provenance)
    if getattr(args, "cache", None):
        from .serve import SpecCache, tdd_key
        cache = SpecCache(args.cache)
        key = tdd_key(tdd)
        spec, source = cache.get_with_source(key)
        if spec is not None and provenance is None:
            # Warm path: no BT run at all; queries go straight to the
            # cached finite specification.
            tdd.adopt_specification(spec)
        else:
            if tracer is not None:
                tracer.emit_run_start("bt", program=args.file,
                                      text=text)
            tdd.evaluate(stats=stats, tracer=tracer,
                         provenance=provenance)
            cache.put(key, tdd.specification())
            source = "computed"
        if stats is not None:
            stats.extra["cache"] = dict(cache.counters(),
                                        source=source, key=key)
        return tdd
    if stats is not None or tracer is not None or provenance is not None:
        # Evaluate eagerly under instrumentation; the result is cached,
        # so the command's own queries reuse it.
        if tracer is not None:
            tracer.emit_run_start("bt", program=args.file, text=text)
        tdd.evaluate(stats=stats, tracer=tracer, provenance=provenance)
    return tdd


def _ground_atom(tdd: TDD, text: str, what: str):
    """Parse ``text`` as a ground atom query, or raise a clean error."""
    from .core.queries import AtomQ, parse_query
    from .lang.errors import EvaluationError
    query = parse_query(text, tdd.temporal_preds)
    if not isinstance(query, AtomQ) or not query.atom.is_ground:
        raise EvaluationError(
            f"{what} needs a ground atom, e.g. 'even(4)'; got {text!r}"
        )
    return query.atom


def _print_source_error(exc: _SourceError) -> None:
    from .analysis import source_excerpt
    from .lang.spans import Span
    cause = exc.cause
    location = f"{exc.path}:{cause.line}"
    if cause.column is not None:
        location += f":{cause.column}"
    print(f"{location}: error: {cause.bare_message}", file=sys.stderr)
    excerpt = source_excerpt(
        exc.text, Span(cause.line, cause.column or 1))
    if excerpt:
        print(excerpt, file=sys.stderr)


def _print_period(tdd: TDD, out: TextIO) -> None:
    period = tdd.period()
    certified = "certified" if period.certified else "verified"
    print(f"period: (b={period.b}, p={period.p})  [{certified}]",
          file=out)


def _print_spec(tdd: TDD, out: TextIO) -> None:
    spec = tdd.specification()
    print(f"representatives: 0..{len(spec.representatives) - 1} "
          f"({len(spec.representatives)} terms)", file=out)
    print(f"rewrite system:  {spec.rewrites}", file=out)
    print(f"primary database: {len(spec.primary)} facts", file=out)
    print(f"specification size: {spec.size}", file=out)


def _print_classification(tdd: TDD, out: TextIO) -> None:
    cls = tdd.classification()
    inflationary = ("n/a (outside the Thm 5.2 assumptions)"
                    if cls.inflationary is None else cls.inflationary)
    print(f"inflationary (Thm 5.2 test): {inflationary}", file=out)
    print(f"multi-separable (Thm 6.5):   {cls.multi_separable}",
          file=out)
    print(f"separable ([7]):             {cls.separable}", file=out)
    print(f"forward:                     {cls.forward}", file=out)
    print(f"provably tractable:          {cls.provably_tractable}",
          file=out)
    if cls.report.predicate_kinds:
        print("recursive predicate kinds:", file=out)
        for pred, kind in sorted(cls.report.predicate_kinds.items()):
            print(f"  {pred}: {kind}", file=out)


def cmd_run(args, out: TextIO) -> int:
    tdd = _load(args)
    print(f"rules: {len(tdd.rules)}   database: n={tdd.database.n}, "
          f"c={tdd.database.c}", file=out)
    _print_period(tdd, out)
    _print_spec(tdd, out)
    _print_classification(tdd, out)
    return 0


def cmd_ask(args, out: TextIO) -> int:
    tdd = _load(args)
    verdict = tdd.ask(args.query)
    print("yes" if verdict else "no", file=out)
    return 0 if verdict else 1


def cmd_answers(args, out: TextIO) -> int:
    tdd = _load(args)
    answers = tdd.answers(args.query)
    names = [name for name, _ in answers.variables]
    print(f"variables: {', '.join(names) if names else '(closed)'}",
          file=out)
    print(f"canonical answers: {len(answers)}"
          f"{'  (infinite set)' if answers.is_infinite else ''}",
          file=out)
    print(f"rewrite system: {answers.rewrites}", file=out)
    shown = args.expand
    if shown is not None:
        print(f"answers with timepoints <= {shown}:", file=out)
        for substitution in answers.expand(shown):
            rendered = ", ".join(f"{k}={substitution[k]}" for k in names)
            print(f"  {rendered}", file=out)
    else:
        for substitution in answers:
            rendered = ", ".join(f"{k}={substitution[k]}" for k in names)
            print(f"  {rendered}", file=out)
    return 0


def cmd_classify(args, out: TextIO) -> int:
    tdd = _load(args)
    _print_classification(tdd, out)
    return 0


def cmd_spec(args, out: TextIO) -> int:
    tdd = _load(args)
    _print_spec(tdd, out)
    if args.save:
        save_spec(tdd.specification(), args.save)
        print(f"saved to {args.save}", file=out)
    return 0


def cmd_analyze(args, out: TextIO) -> int:
    tdd = _load(args)
    from .core.analysis import analyze
    report = analyze(tdd.rules, tdd.database.facts(),
                     query=args.query)
    if args.format == "json":
        import json as _json
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True),
              file=out)
    else:
        print(report.render(), file=out)
    return 0 if not report.warnings else 1


def cmd_lint(args, out: TextIO) -> int:
    from .analysis import (gate, lint_text, render_json, render_sarif,
                           render_text)
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    results = []
    for path in args.files:
        text = Path(path).read_text()
        results.append(lint_text(text, path, select=select,
                                 ignore=ignore, query=args.query))
    if args.format == "json":
        print(render_json(results), file=out)
    elif args.format == "sarif":
        print(render_sarif(results), file=out)
    else:
        rendered = render_text(results)
        if rendered:
            print(rendered, file=out)
    all_diagnostics = [d for r in results for d in r.diagnostics]
    return 1 if gate(all_diagnostics, args.max_severity) else 0


def cmd_timeline(args, out: TextIO) -> int:
    tdd = _load(args)
    from .temporal.intervals import timeline
    result = tdd.evaluate()
    predicates = (args.predicates.split(",") if args.predicates
                  else sorted(result.store.temporal_predicates()))
    until = min(args.until, result.horizon)
    print(timeline(result.store, predicates, until), file=out)
    period = result.period
    if period is not None:
        print(f"\nperiod: (b={period.b}, p={period.p}) — the pattern "
              f"repeats every {period.p} from {period.b}", file=out)
    return 0


def cmd_profile(args, out: TextIO) -> int:
    from .engines import PROFILE_ENGINES
    from .obs.profile import (profile_tdd, render_folded, render_json,
                              render_table)
    if args.engine not in PROFILE_ENGINES:
        # Same shape as the registry's own error, but emitted before
        # any file I/O so `--engine typo` fails fast with exit 2.
        print(f"error: unknown engine {args.engine!r}; choose from "
              f"{', '.join(PROFILE_ENGINES)}", file=sys.stderr)
        return 2
    tdd, text = _parse_file(args.file)
    _, tracer = getattr(args, "_obs", (None, None))
    query = (None if args.query is None
             else _ground_atom(tdd, args.query, "profile --query"))
    if tracer is not None:
        tracer.emit_run_start(args.engine, program=args.file, text=text)
    report = profile_tdd(tdd, args.file, engine=args.engine,
                         query=query, tracer=tracer)
    if args.folded:
        print(render_folded(report), file=out)
    elif args.format == "json":
        print(render_json(report), file=out)
    else:
        print(render_table(report), file=out)
    return 0


def cmd_traceview(args, out: TextIO) -> int:
    from .lang.errors import ParseError
    from .obs.traceview import parse_trace, render_summary, summarize
    try:
        text = Path(args.trace_file).read_text()
    except (OSError, UnicodeDecodeError) as exc:
        print(f"error: cannot read trace file: {exc}", file=sys.stderr)
        return 2
    try:
        events = parse_trace(text)
    except ParseError as exc:
        raise _SourceError(args.trace_file, text, exc) from exc
    print(render_summary(summarize(events), args.trace_file), file=out)
    return 0


def cmd_explain(args, out: TextIO) -> int:
    from .lang.errors import EvaluationError
    tdd = _load(args)
    atom = _ground_atom(tdd, args.fact, "explain")
    # Record provenance up front so `explain` returns the proof the
    # engine actually built (constant-time per node); the search-based
    # reconstruction remains the fallback for facts outside the store.
    tdd.provenance()
    try:
        derivation = tdd.explain(atom)
    except EvaluationError as exc:
        # Underivable is a "no" answer (like `ask`), not a usage error.
        print(f"no: {exc}", file=out)
        return 1
    print(derivation.render(), file=out)
    return 0


def _fold_to_window(tdd: TDD, fact):
    """Fold a beyond-horizon ground fact through the period — its
    derivation is the folded representative's, by periodicity."""
    from .lang.atoms import Fact
    result = tdd.evaluate()
    if (fact.time is not None and fact.time > result.horizon
            and result.period is not None):
        return Fact(fact.pred, result.period.fold(fact.time), fact.args)
    return fact


def cmd_why(args, out: TextIO) -> int:
    from .obs.provenance import render_proof
    tdd = _load(args)
    atom = _ground_atom(tdd, args.fact, "why")
    provenance = tdd.provenance()
    result = tdd.evaluate()
    fact = atom.to_fact()
    folded = _fold_to_window(tdd, fact)
    derivation = provenance.derivation(folded, database=tdd.database)
    if derivation is None:
        print(f"no: {folded} is not in the least model "
              f"(try `repro whynot`)", file=out)
        return 1
    problems = provenance.verify(folded, tdd.database, result.store)
    if problems:
        for problem in problems:
            print(f"error: recorded proof fails verification: "
                  f"{problem}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(provenance.to_json(root=folded), file=out)
    elif args.format == "dot":
        print(provenance.to_dot(root=folded), file=out)
    else:
        if folded != fact:
            period = result.period
            print(f"{fact} folds to {folded} through the period "
                  f"(b={period.b}, p={period.p})", file=out)
        print(render_proof(derivation, path=args.file), file=out)
    return 0


def cmd_whynot(args, out: TextIO) -> int:
    from .obs.provenance import why_not
    tdd = _load(args)
    atom = _ground_atom(tdd, args.fact, "whynot")
    result = tdd.evaluate()
    fact = atom.to_fact()
    folded = _fold_to_window(tdd, fact)
    report = why_not(tdd.rules, result.store, folded)
    if args.format == "json":
        import json as _json
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True),
              file=out)
    else:
        if folded != fact:
            period = result.period
            print(f"{fact} folds to {folded} through the period "
                  f"(b={period.b}, p={period.p})", file=out)
        print(report.render(args.file), file=out)
    # A present fact is the wrong tool (like `ask`'s "yes" exiting 0,
    # the caller asked the inverse question).
    return 1 if report.in_model else 0


def cmd_serve(args, out: TextIO) -> int:
    if getattr(args, "workers", 0):
        return _cmd_serve_tier(args, out)
    from .obs import Telemetry
    from .serve import (AccessLog, Collector, QueryService, SpecCache,
                        make_server)
    cache = SpecCache(args.cache) if args.cache else SpecCache()
    stats, tracer = getattr(args, "_obs", (None, None))
    collector = None if args.no_collect else Collector()
    # `--trace FILE` on serve exports schema-3 span events: one
    # `span` line per request phase, same sink machinery as engine
    # traces.
    service = QueryService(cache=cache,
                           default_deadline=args.deadline,
                           telemetry=Telemetry(tracer,
                                               collector=collector),
                           engine=args.engine,
                           max_predicted_cost=args.max_predicted_cost,
                           collect=collector)
    if tracer is not None and tracer.enabled:
        # A self-describing trace: the header ties the span stream to
        # the tool version and schema before the first request.
        tracer.emit_run_start("serve")
    access_log = None
    if args.access_log:
        try:
            access_log = AccessLog(args.access_log)
        except OSError as exc:
            print(f"error: cannot open access log: {exc}",
                  file=sys.stderr)
            return 2
    try:
        server = make_server(service, host=args.host, port=args.port,
                             quiet=not args.verbose,
                             access_log=access_log,
                             slow_ms=args.slow_ms,
                             collector=collector)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        if access_log is not None:
            access_log.close()
        return 2
    host, port = server.server_address[:2]
    where = args.cache if args.cache else "(in-memory)"
    print(f"serving on http://{host}:{port}  cache: {where}",
          file=out, flush=True)
    extra = "" if args.no_collect else " /trace/<id> /profile"
    print(f"POST /query   GET /stats /metrics /healthz{extra}   "
          "— Ctrl-C stops", file=out, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        if access_log is not None:
            access_log.close()
        if stats is not None:
            service.attach_stats(stats)
    return 0


def _cmd_serve_tier(args, out: TextIO) -> int:
    """``repro serve --workers N``: the multi-process tier.

    Spawns N supervised worker processes, each a full single-process
    server on a loopback port, and binds the consistent-hash routing
    front-end over them.  ``--cache FILE`` is what makes the tier
    share work: every worker opens the same SQLite spec cache, so a
    spec computed by one worker is a disk hit for its successor after
    a crash.  Without it each worker keeps a private in-memory cache —
    still correct (routing pins each program to one worker), just no
    cross-process fallback.
    """
    from .obs import Telemetry
    from .serve import (AccessLog, Collector, WorkerConfig,
                        WorkerError, WorkerPool, make_frontend)
    if args.workers < 1:
        print(f"error: --workers must be positive, got {args.workers}",
              file=sys.stderr)
        return 2
    stats, tracer = getattr(args, "_obs", (None, None))
    access_log = None
    if args.access_log:
        try:
            access_log = AccessLog(args.access_log)
        except OSError as exc:
            print(f"error: cannot open access log: {exc}",
                  file=sys.stderr)
            return 2
    config = WorkerConfig(cache=args.cache, engine=args.engine,
                          deadline=args.deadline,
                          max_predicted_cost=args.max_predicted_cost)
    collector = None if args.no_collect else Collector()
    # Bind the front-end *before* starting the pool: the front-end's
    # port is what arms every worker's collect URL, and workers only
    # read their config at spawn time.
    pool = WorkerPool(args.workers, config)
    try:
        frontend = make_frontend(pool, host=args.host, port=args.port,
                                 quiet=not args.verbose,
                                 access_log=access_log,
                                 slow_ms=args.slow_ms,
                                 telemetry=Telemetry(tracer),
                                 collector=collector)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        if access_log is not None:
            access_log.close()
        return 2
    try:
        pool.start()
    except WorkerError as exc:
        print(f"error: cannot start workers: {exc}", file=sys.stderr)
        frontend.server_close()
        if access_log is not None:
            access_log.close()
        return 2
    if tracer is not None and tracer.enabled:
        tracer.emit_run_start("serve")
    host, port = frontend.server_address[:2]
    where = args.cache if args.cache else "(per-worker memory)"
    print(f"serving on http://{host}:{port}  "
          f"workers: {args.workers}  cache: {where}",
          file=out, flush=True)
    extra = "" if args.no_collect else " /trace/<id> /profile"
    print(f"POST /query   GET /stats /metrics /healthz{extra}   "
          "— Ctrl-C stops", file=out, flush=True)
    try:
        frontend.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        frontend.server_close()
        # Stats aggregation polls the workers, so it must run before
        # the pool goes down.
        if stats is not None:
            frontend.attach_stats(stats)
        pool.close()
        if access_log is not None:
            access_log.close()
    return 0


def cmd_top(args, out: TextIO) -> int:
    from .serve import TopError, run_top
    url = args.url if args.url else f"http://{args.host}:{args.port}"
    url = url.rstrip("/")
    try:
        return run_top(url, out, interval=args.interval,
                       iterations=args.iterations)
    except TopError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _fetch_json(url: str, path: str, timeout: float = 5.0) -> dict:
    """GET one JSON endpoint of a running server."""
    import json as _json
    import urllib.request
    with urllib.request.urlopen(url + path, timeout=timeout) as reply:
        return _json.loads(reply.read())


def cmd_trace(args, out: TextIO) -> int:
    """``repro trace ls|show``: the server-side trace store."""
    import urllib.error
    url = args.url if args.url else f"http://{args.host}:{args.port}"
    url = url.rstrip("/")
    try:
        if args.trace_command == "ls":
            payload = _fetch_json(url, "/trace")
            rows = payload.get("traces", [])
            if not rows:
                print("(no retained traces)", file=out)
                return 0
            print(f"{'trace id':<32} {'root':<14} {'ms':>9} "
                  f"{'spans':>5} {'derives':>7} workers", file=out)
            for row in rows:
                duration = row.get("duration_ms")
                shown = "-" if duration is None else f"{duration:.1f}"
                workers = ",".join(str(w) for w in row.get("workers", []))
                print(f"{row['trace_id'][:32]:<32} "
                      f"{(row.get('root') or '-')[:14]:<14} "
                      f"{shown:>9} {row['spans']:>5} "
                      f"{row['derives']:>7} {workers or '-'}", file=out)
            return 0
        # show
        payload = _fetch_json(url, f"/trace/{args.trace_id}")
        if args.format == "json":
            import json as _json
            print(_json.dumps(payload, indent=2, sort_keys=True),
                  file=out)
        else:
            from .obs.collector import render_trace_tree
            print(render_trace_tree(payload), file=out)
        return 0
    except urllib.error.HTTPError as exc:
        try:
            import json as _json
            detail = _json.loads(exc.read()).get("error", str(exc))
        except ValueError:
            detail = str(exc)
        print(f"error: {detail}", file=sys.stderr)
        return 1
    except (OSError, ValueError) as exc:
        print(f"error: cannot reach {url}: {exc}", file=sys.stderr)
        return 2


def _format_created(created: Union[float, None]) -> str:
    if created is None:
        return "-"
    from datetime import datetime, timezone
    stamp = datetime.fromtimestamp(created, tz=timezone.utc)
    return stamp.strftime("%Y-%m-%d %H:%M:%S")


def cmd_cache(args, out: TextIO) -> int:
    import sqlite3

    from .serve import SpecCache
    cache = SpecCache(args.cache_file)
    try:
        return _cmd_cache(args, out, cache)
    except sqlite3.Error as exc:
        print(f"error: {args.cache_file} is not a usable spec cache: "
              f"{exc}", file=sys.stderr)
        return 2


def _cmd_cache(args, out: TextIO, cache) -> int:
    if args.cache_command == "ls":
        entries = cache.entries()
        if not entries:
            print("(empty cache)", file=out)
            return 0
        print(f"{'key':<16} {'format':>6} {'bytes':>10} created (UTC)",
              file=out)
        for entry in entries:
            size = "-" if entry["bytes"] is None else entry["bytes"]
            print(f"{entry['key'][:16]:<16} {entry['format']:>6} "
                  f"{size:>10} {_format_created(entry['created'])}",
                  file=out)
        return 0
    if args.cache_command == "rm":
        if args.all:
            removed = cache.clear()
            print(f"removed {removed} entries", file=out)
            return 0
        if args.key is None:
            print("error: cache rm needs a KEY or --all",
                  file=sys.stderr)
            return 2
        matches = [entry["key"] for entry in cache.entries()
                   if entry["key"].startswith(args.key)]
        if not matches:
            print(f"error: no cache entry matches {args.key!r}",
                  file=sys.stderr)
            return 1
        if len(matches) > 1:
            print(f"error: {args.key!r} is ambiguous "
                  f"({len(matches)} entries match)", file=sys.stderr)
            return 1
        cache.invalidate(matches[0])
        print(f"removed {matches[0]}", file=out)
        return 0
    # stats
    entries = cache.entries()
    total = sum(entry["bytes"] or 0 for entry in entries)
    print(f"path:    {args.cache_file}", file=out)
    print(f"entries: {len(entries)}", file=out)
    print(f"bytes:   {total}", file=out)
    return 0


def cmd_repl(args, out: TextIO,
             input_stream: Union[TextIO, None] = None) -> int:
    tdd = _load(args)
    stream = input_stream if input_stream is not None else sys.stdin
    print(f"loaded {args.file}; enter queries, :help for commands",
          file=out)
    for line in stream:
        line = line.strip()
        if not line:
            continue
        if line in (":quit", ":q", ":exit"):
            break
        if line == ":help":
            print(":period :spec :classify :timeline [N] "
                  ":explain FACT :quit — or any query", file=out)
            continue
        if line == ":period":
            _print_period(tdd, out)
            continue
        if line == ":spec":
            _print_spec(tdd, out)
            continue
        if line == ":classify":
            _print_classification(tdd, out)
            continue
        if line.startswith(":timeline"):
            parts = line.split()
            until = int(parts[1]) if len(parts) > 1 else 40
            print(tdd.timeline(until=min(until,
                                         tdd.evaluate().horizon)),
                  file=out)
            continue
        if line.startswith(":explain "):
            try:
                from .core.queries import AtomQ, parse_query
                query = parse_query(line[len(":explain "):],
                                    tdd.temporal_preds)
                if not isinstance(query, AtomQ) or \
                        not query.atom.is_ground:
                    print("error: :explain needs a ground atom",
                          file=out)
                    continue
                print(tdd.explain(query.atom).render(), file=out)
            except ReproError as exc:
                print(f"error: {exc}", file=out)
            continue
        try:
            from .core.queries import free_variables
            query = tdd._coerce_query(line)
            if free_variables(query):
                answers = tdd.answers(query)
                print(f"{len(answers)} canonical answers"
                      f"{' (infinite set)' if answers.is_infinite else ''}:",
                      file=out)
                for substitution in answers:
                    print(f"  {substitution}", file=out)
            else:
                print("yes" if tdd.ask(query) else "no", file=out)
        except ReproError as exc:
            print(f"error: {exc}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Temporal deductive databases (Chomicki, PODS 1990)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags, shared by every subcommand.
    obs = argparse.ArgumentParser(add_help=False)
    obs.add_argument("--stats", action="store_true",
                     help="print evaluation statistics (rounds, deltas, "
                          "join probes, period) after the command")
    obs.add_argument("--trace", metavar="FILE", default=None,
                     help="write a JSON-lines evaluation trace to FILE")
    obs.add_argument("--trace-provenance", type=int, default=None,
                     metavar="N",
                     help="with --trace: record derivation provenance "
                          "and emit every Nth support edge as a "
                          "schema-4 `derive` trace event")

    run = sub.add_parser("run", parents=[obs],
                         help="evaluate a program file")
    run.add_argument("file")
    run.set_defaults(func=cmd_run)

    # Spec-cache flag, shared by the query-answering subcommands.
    cached = argparse.ArgumentParser(add_help=False)
    cached.add_argument("--cache", metavar="FILE", default=None,
                        help="content-addressed spec cache (SQLite); "
                             "warm hits skip BT entirely")
    cached.add_argument("--engine",
                        choices=("bt", "seminaive", "compiled"),
                        default="bt",
                        help="window engine driving BT (compiled: "
                             "interned constants + indexed join plans; "
                             "same answers, faster fixpoints; "
                             "seminaive is the generic reference loop)")

    ask = sub.add_parser("ask", parents=[obs, cached],
                         help="yes/no query")
    ask.add_argument("file")
    ask.add_argument("query")
    ask.set_defaults(func=cmd_ask)

    answers = sub.add_parser("answers", parents=[obs, cached],
                             help="open query answers")
    answers.add_argument("file")
    answers.add_argument("query")
    answers.add_argument("--expand", type=int, default=None,
                         metavar="N",
                         help="expand temporal answers up to timepoint N")
    answers.set_defaults(func=cmd_answers)

    classify = sub.add_parser("classify", parents=[obs],
                              help="tractable-class membership")
    classify.add_argument("file")
    classify.set_defaults(func=cmd_classify)

    spec = sub.add_parser("spec", parents=[obs, cached],
                          help="relational specification")
    spec.add_argument("file")
    spec.add_argument("--save", metavar="OUT.json", default=None)
    spec.set_defaults(func=cmd_spec)

    analyze = sub.add_parser("analyze", parents=[obs],
                             help="static analysis and lints")
    analyze.add_argument("file")
    analyze.add_argument("--query", default=None, metavar="PRED",
                         help="query predicate: arms the reachability "
                              "checks (TDD018/TDD019) and reports the "
                              "reachable rule slice")
    analyze.add_argument("--format", choices=("text", "json"),
                         default="text")
    analyze.set_defaults(func=cmd_analyze)

    lint = sub.add_parser("lint",
                          help="span-aware diagnostics (text/JSON/SARIF)")
    lint.add_argument("files", nargs="+", metavar="FILE")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="comma-separated codes or names to run "
                           "(e.g. TDD002,unsafe-negation)")
    lint.add_argument("--ignore", default=None, metavar="CODES",
                      help="comma-separated codes or names to skip")
    lint.add_argument("--max-severity",
                      choices=("info", "warning", "error"),
                      default="warning",
                      help="worst severity tolerated before exiting 1 "
                           "(default: warning, i.e. errors gate)")
    lint.add_argument("--query", default=None, metavar="PRED",
                      help="query predicate: arms the query-gated "
                           "reachability checks (TDD018/TDD019)")
    lint.set_defaults(func=cmd_lint)

    timeline = sub.add_parser("timeline", parents=[obs],
                              help="ASCII timeline of the model")
    timeline.add_argument("file")
    timeline.add_argument("--until", type=int, default=40)
    timeline.add_argument("--predicates", default=None,
                          help="comma-separated predicate filter")
    timeline.set_defaults(func=cmd_timeline)

    profile = sub.add_parser(
        "profile", parents=[obs],
        help="per-rule hot-rule profile (time, firings, duplicates)")
    profile.add_argument("file")
    profile.add_argument("--engine", default="bt", metavar="ENGINE",
                         help="engine to profile: bt, compiled, "
                              "verbatim, interval, magic, topdown "
                              "(default: bt; magic and topdown need "
                              "--query); validated against the engine "
                              "registry")
    profile.add_argument("--query", default=None, metavar="Q",
                         help="ground atom goal for the goal-directed "
                              "engines")
    profile.add_argument("--format", choices=("text", "json"),
                         default="text")
    profile.add_argument("--folded", action="store_true",
                         help="emit folded stacks for flamegraph.pl / "
                              "speedscope instead of the table")
    profile.set_defaults(func=cmd_profile)

    traceview = sub.add_parser(
        "traceview",
        help="summarize a JSON-lines trace (rounds, phases, period)")
    traceview.add_argument("trace_file", metavar="TRACE.jsonl")
    traceview.set_defaults(func=cmd_traceview)

    explain = sub.add_parser(
        "explain", parents=[obs],
        help="derivation tree justifying a model fact")
    explain.add_argument("file")
    explain.add_argument("fact", metavar="FACT",
                         help="ground atom to justify, e.g. 'even(4)'")
    explain.set_defaults(func=cmd_explain)

    why = sub.add_parser(
        "why", parents=[obs, cached],
        help="recorded, verified proof tree for a model fact")
    why.add_argument("file")
    why.add_argument("fact", metavar="FACT",
                     help="ground atom to justify, e.g. 'even(4)'")
    why.add_argument("--format", choices=("text", "json", "dot"),
                     default="text",
                     help="indented text tree (default), JSON "
                          "node/edge lists, or Graphviz DOT")
    why.set_defaults(func=cmd_why)

    whynot = sub.add_parser(
        "whynot", parents=[obs, cached],
        help="nearest failed rule firings for an absent fact")
    whynot.add_argument("file")
    whynot.add_argument("fact", metavar="FACT",
                        help="ground atom to refute, e.g. 'even(3)'")
    whynot.add_argument("--format", choices=("text", "json"),
                        default="text")
    whynot.set_defaults(func=cmd_whynot)

    repl = sub.add_parser("repl", parents=[obs],
                          help="interactive query loop")
    repl.add_argument("file")
    repl.set_defaults(func=cmd_repl)

    serve = sub.add_parser(
        "serve", parents=[obs],
        help="HTTP query service over cached specifications")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="multi-process tier: consistent-hash "
                            "route on the program key to N worker "
                            "processes (default 0 = serve in-process);"
                            " combine with --cache to share specs "
                            "across workers")
    serve.add_argument("--cache", metavar="FILE", default=None,
                       help="persistent spec cache (SQLite); default "
                            "is in-memory only")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-request spec-computation "
                            "budget; exceeded budgets degrade to "
                            "windowed evaluation")
    serve.add_argument("--engine", choices=("bt", "compiled"),
                       default="bt",
                       help="window engine for spec computations and "
                            "degraded evaluations (requests may "
                            "override per-request)")
    serve.add_argument("--max-predicted-cost", type=float,
                       default=None, metavar="COST",
                       help="admission control: refuse programs whose "
                            "static cost estimate (see repro analyze) "
                            "exceeds COST probe units")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per HTTP request")
    serve.add_argument("--access-log", metavar="FILE", default=None,
                       help="structured JSON access log (one line per "
                            "HTTP request: trace id, program sha, "
                            "kind, cache state, status, duration)")
    serve.add_argument("--slow-ms", type=float, default=None,
                       metavar="MS",
                       help="dump the full span tree of any request "
                            "slower than MS milliseconds (to the "
                            "access log, else stderr)")
    serve.add_argument("--no-collect", action="store_true",
                       help="disable the trace/profile collector "
                            "(GET /trace/<id>, GET /profile, the "
                            "cost-calibration metrics and, under "
                            "--workers, the POST /ingest shipping "
                            "path)")
    serve.set_defaults(func=cmd_serve)

    top = sub.add_parser(
        "top",
        help="live dashboard over a running `repro serve` (/stats)")
    top.add_argument("--url", default=None, metavar="URL",
                     help="server base URL (default: "
                          "http://HOST:PORT)")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8765)
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="poll interval (default: 2.0)")
    top.add_argument("--iterations", type=int, default=None,
                     metavar="N",
                     help="stop after N refreshes (default: run "
                          "until Ctrl-C)")
    top.set_defaults(func=cmd_top)

    cache = sub.add_parser("cache",
                           help="inspect or prune a spec cache file")
    cache_sub = cache.add_subparsers(dest="cache_command",
                                     required=True)
    cache_ls = cache_sub.add_parser("ls", help="list cached specs")
    cache_ls.add_argument("cache_file", metavar="CACHE.sqlite")
    cache_rm = cache_sub.add_parser("rm", help="remove cached specs")
    cache_rm.add_argument("cache_file", metavar="CACHE.sqlite")
    cache_rm.add_argument("key", nargs="?", default=None,
                          help="key (or unambiguous prefix) to remove")
    cache_rm.add_argument("--all", action="store_true",
                          help="remove every entry")
    cache_stats = cache_sub.add_parser(
        "stats", help="entry count and payload bytes")
    cache_stats.add_argument("cache_file", metavar="CACHE.sqlite")
    cache.set_defaults(func=cmd_cache)

    trace_p = sub.add_parser(
        "trace",
        help="inspect the trace store of a running `repro serve`")
    trace_sub = trace_p.add_subparsers(dest="trace_command",
                                       required=True)
    trace_ls = trace_sub.add_parser(
        "ls", help="list retained traces (most recent first)")
    trace_show = trace_sub.add_parser(
        "show", help="render one assembled cross-process span tree")
    trace_show.add_argument("trace_id", metavar="TRACE_ID",
                            help="trace id (from `repro trace ls`, "
                                 "the X-Repro-Trace-Id response "
                                 "header, or the access log)")
    trace_show.add_argument("--format", choices=("text", "json"),
                            default="text")
    for trace_cmd in (trace_ls, trace_show):
        trace_cmd.add_argument("--url", default=None, metavar="URL",
                               help="server base URL (default: "
                                    "http://HOST:PORT)")
        trace_cmd.add_argument("--host", default="127.0.0.1")
        trace_cmd.add_argument("--port", type=int, default=8765)
    trace_p.set_defaults(func=cmd_trace)

    return parser


def main(argv: Union[Sequence[str], None] = None,
         out: Union[TextIO, None] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    stream = out if out is not None else sys.stdout
    stats = EvalStats() if getattr(args, "stats", False) else None
    tracer = None
    if getattr(args, "trace", None):
        try:
            tracer = Tracer(JsonLinesSink(args.trace))
        except OSError as exc:
            print(f"error: cannot open trace file: {exc}",
                  file=sys.stderr)
            return 2
    if getattr(args, "trace_provenance", None) and tracer is None:
        print("error: --trace-provenance needs --trace FILE",
              file=sys.stderr)
        return 2
    try:
        args._obs = (stats, tracer)
        code = args.func(args, stream)
        if stats is not None:
            print("\n-- eval stats --", file=stream)
            print(stats.summary(), file=stream)
        return code
    except _SourceError as exc:
        _print_source_error(exc)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except UnknownCodeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (OSError, UnicodeDecodeError) as exc:
        # Unreadable program files (missing, a directory, wrong
        # encoding, permissions) exit cleanly instead of tracebacking.
        print(f"error: cannot read program file: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            tracer.close()
