"""Temporal Horn rules and their syntactic properties.

A temporal rule (Section 3.1) is a Horn clause ``A0 :- A1, ..., Ak`` built
from temporal and non-temporal atoms.  This module defines :class:`Rule`
plus the syntactic predicates the paper relies on:

* **range-restricted** — every variable in the head appears in the body
  (assumed throughout the paper, Section 3.3);
* **semi-normal** — at most one temporal variable, appearing only as the
  temporal argument of literals;
* **normal** — semi-normal with non-ground temporal terms of depth ≤ 1;
* **forward** — the head's temporal offset is ≥ every body offset, so
  facts propagate forward in time only (all the paper's examples are
  forward; this property is what lets us certify detected periods).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from .atoms import Atom
from .errors import ValidationError
from .spans import Span
from .terms import Var


@dataclass(frozen=True, slots=True)
class Rule:
    """A temporal rule ``head :- body, not negative``.

    ``body`` holds the positive literals, ``negative`` the negated ones
    (empty for the paper's definite Horn rules — negation is this
    library's stratified-semantics extension, see
    :mod:`repro.temporal.stratified`).  A rule with an empty body and no
    negative literals is a fact.

    ``span`` optionally records the rule's source location (its head
    token); like atom spans it is excluded from equality and hashing.
    """

    head: Atom
    body: tuple[Atom, ...] = ()
    negative: tuple[Atom, ...] = ()
    span: Union[Span, None] = field(default=None, compare=False,
                                    repr=False)

    @property
    def is_fact(self) -> bool:
        return not self.body and not self.negative

    @property
    def is_definite(self) -> bool:
        """True for pure Horn rules (no negative literals)."""
        return not self.negative

    def atoms(self) -> Iterator[Atom]:
        """Yield the head, the positive body, then the negative body."""
        yield self.head
        yield from self.body
        yield from self.negative

    def data_variables(self) -> set[str]:
        """All data variable names appearing in the rule."""
        return {v.name for atom in self.atoms() for v in atom.data_variables()}

    def temporal_variables(self) -> set[str]:
        """All temporal variable names appearing in the rule."""
        names = set()
        for atom in self.atoms():
            var = atom.temporal_variable()
            if var is not None:
                names.add(var)
        return names

    def head_data_variables(self) -> set[str]:
        return {v.name for v in self.head.data_variables()}

    def body_data_variables(self) -> set[str]:
        """Data variables of the *positive* body (the binding source)."""
        return {v.name for atom in self.body for v in atom.data_variables()}

    def negative_data_variables(self) -> set[str]:
        return {v.name for atom in self.negative
                for v in atom.data_variables()}

    @property
    def is_safe(self) -> bool:
        """Every variable of a negative literal is bound positively.

        Vacuously true for definite rules; required for negation to be
        evaluated by checking absence under a complete binding.
        """
        if not self.negative:
            return True
        if not self.negative_data_variables() <= \
                self.body_data_variables():
            return False
        positive_tvs = {a.temporal_variable() for a in self.body}
        for atom in self.negative:
            tvar = atom.temporal_variable()
            if tvar is not None and tvar not in positive_tvs:
                return False
        return True

    @property
    def is_range_restricted(self) -> bool:
        """Every head variable (of either sort) also appears in the body.

        Facts are range-restricted when they are ground.
        """
        if self.is_fact:
            return self.head.is_ground
        if not self.head_data_variables() <= self.body_data_variables():
            return False
        head_tv = self.head.temporal_variable()
        if head_tv is not None:
            body_tvs = {a.temporal_variable() for a in self.body}
            if head_tv not in body_tvs:
                return False
        return True

    @property
    def is_semi_normal(self) -> bool:
        """At most one temporal variable in the rule (Section 3.1)."""
        return len(self.temporal_variables()) <= 1

    @property
    def is_normal(self) -> bool:
        """Semi-normal with non-ground temporal terms of depth at most 1."""
        if not self.is_semi_normal:
            return False
        for atom in self.atoms():
            if atom.time is not None and not atom.time.is_ground:
                if atom.time.offset > 1:
                    return False
        return True

    @property
    def has_ground_temporal_terms(self) -> bool:
        """True if any temporal argument in the rule is ground.

        The paper assumes rules contain no ground terms (end of
        Section 3.1); the validator enforces this for rules with bodies.
        """
        return any(
            atom.time is not None and atom.time.is_ground
            for atom in self.atoms()
        )

    @property
    def head_offset(self) -> Union[int, None]:
        """Temporal offset of the head, or None for a non-temporal head."""
        if self.head.time is None:
            return None
        return self.head.time.offset

    def body_offsets(self) -> list[int]:
        """Temporal offsets of the non-ground temporal body literals
        (positive and negative: forwardness must account for both)."""
        return [
            atom.time.offset
            for atom in (*self.body, *self.negative)
            if atom.time is not None and not atom.time.is_ground
        ]

    @property
    def is_forward(self) -> bool:
        """Head offset is at least every body offset.

        A set of forward rules only propagates information forward along
        the time axis, which makes period detection certifiable (see
        ``repro.temporal.periodicity``).  Rules with a non-temporal head
        and a temporal body are *not* forward: they feed information from
        arbitrary timepoints back into the time-independent part.
        """
        offsets = self.body_offsets()
        if self.head.time is None:
            return not offsets
        if self.head.time.is_ground:
            return not offsets
        return all(self.head.time.offset >= k for k in offsets)

    @property
    def temporal_depth(self) -> int:
        """Maximum depth of a non-ground temporal term in the rule (``g``)."""
        depths = [
            atom.time.offset
            for atom in self.atoms()
            if atom.time is not None and not atom.time.is_ground
        ]
        return max(depths, default=0)

    def rename(self, mapping: dict[str, str]) -> "Rule":
        """Rename variables (both sorts) according to ``mapping``."""
        def rename_atom(atom: Atom) -> Atom:
            time = atom.time
            if time is not None and time.var is not None:
                time = time.__class__(mapping.get(time.var, time.var),
                                      time.offset)
            args = tuple(
                Var(mapping.get(a.name, a.name)) if isinstance(a, Var) else a
                for a in atom.args
            )
            return Atom(atom.pred, time, args, span=atom.span)

        return Rule(rename_atom(self.head),
                    tuple(rename_atom(a) for a in self.body),
                    tuple(rename_atom(a) for a in self.negative),
                    span=self.span)

    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        literals = [str(a) for a in self.body]
        literals.extend(f"not {a}" for a in self.negative)
        return f"{self.head} :- {', '.join(literals)}."


def validate_rule(rule: Rule, require_semi_normal: bool = False,
                  allow_ground_times: bool = False) -> None:
    """Check one rule against the paper's static restrictions.

    Raises :class:`ValidationError` on the first violation.  ``facts``
    (empty-body rules) must be ground; proper rules must be
    range-restricted and, unless ``allow_ground_times``, free of ground
    temporal terms.
    """
    span = rule.span if rule.span is not None else rule.head.span
    line = span.line if span is not None else None
    column = span.column if span is not None else None
    if rule.is_fact:
        if not rule.head.is_ground:
            raise ValidationError(f"fact {rule} is not ground",
                                  line, column)
        return
    if not rule.is_range_restricted:
        raise ValidationError(f"rule {rule} is not range-restricted",
                              line, column)
    if not allow_ground_times and rule.has_ground_temporal_terms:
        raise ValidationError(
            f"rule {rule} contains ground temporal terms; the paper "
            "assumes rules without ground terms (Section 3.1)",
            line, column
        )
    if not rule.is_safe:
        raise ValidationError(
            f"rule {rule} is not safe: every variable of a negative "
            "literal must occur in a positive body literal",
            line, column
        )
    if require_semi_normal and not rule.is_semi_normal:
        raise ValidationError(f"rule {rule} is not semi-normal",
                              line, column)
    # Temporal variables must not leak into data positions and vice versa.
    tvars = rule.temporal_variables()
    dvars = rule.data_variables()
    clash = tvars & dvars
    if clash:
        raise ValidationError(
            f"rule {rule}: variables {sorted(clash)} are used both as "
            "temporal and as data arguments",
            line, column
        )


def validate_rules(rules: "list[Rule] | tuple[Rule, ...]",
                   require_semi_normal: bool = False,
                   allow_ground_times: bool = False) -> None:
    """Validate every rule in a ruleset; see :func:`validate_rule`."""
    for rule in rules:
        validate_rule(rule, require_semi_normal=require_semi_normal,
                      allow_ground_times=allow_ground_times)
