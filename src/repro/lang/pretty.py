"""Pretty-printing of programs back to parseable text.

``str()`` on terms, atoms, rules and facts already produces the concrete
syntax; this module adds whole-program formatting with stable ordering so
that round-tripping through :func:`repro.lang.parse_program` is exact (up
to whitespace and fact/rule ordering).
"""

from __future__ import annotations

from typing import Iterable

from .atoms import Fact
from .rules import Rule


def format_rules(rules: Iterable[Rule]) -> str:
    """Render rules one per line, in the given order."""
    return "\n".join(str(rule) for rule in rules)


def format_facts(facts: Iterable[Fact], sort: bool = True) -> str:
    """Render facts one per line.

    With ``sort`` (default) facts are ordered by predicate, then time,
    then arguments, for reproducible output.
    """
    items = list(facts)
    if sort:
        items.sort(key=lambda f: (f.pred, f.time if f.time is not None else -1,
                                  tuple(str(a) for a in f.args)))
    return "\n".join(f"{fact}." for fact in items)


def format_program(rules: Iterable[Rule], facts: Iterable[Fact],
                   temporal_preds: Iterable[str] = ()) -> str:
    """Render a full program: declarations, then rules, then facts.

    Declarations are emitted for every temporal predicate so the rendered
    text parses back with identical sorts even if some predicate's
    temporality is not inferrable from the remaining text.
    """
    sections: list[str] = []
    decls = sorted(set(temporal_preds))
    if decls:
        sections.append("\n".join(f"@temporal {p}." for p in decls))
    rule_text = format_rules(rules)
    if rule_text:
        sections.append(rule_text)
    fact_text = format_facts(facts)
    if fact_text:
        sections.append(fact_text)
    return "\n\n".join(sections) + ("\n" if sections else "")
