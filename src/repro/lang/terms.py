"""Terms of the temporal deductive database language.

The paper (Section 3.1) distinguishes two disjoint sorts of terms:

* **Non-temporal (data) terms** — constants and variables, with no function
  symbols (the Datalog restriction).  Represented by :class:`Const` and
  :class:`Var`.
* **Temporal terms** — built from the single temporal constant ``0`` and
  the unary postfix function symbol ``+1``.  A ground temporal term
  ``((0+1)+1)...+1`` (k applications) is abbreviated ``k``; a non-ground
  temporal term contains exactly one temporal variable and is abbreviated
  ``T+k``.  Represented by :class:`TimeTerm`, a pair ``(var, offset)``
  where ``var is None`` encodes a ground term of depth ``offset``.

Timepoints are plain Python ints throughout the library, which matches the
paper's convention of encoding temporal terms in unary when measuring
database size (Section 4: the size of a database is ``max(n, c)`` where
``c`` is the maximum temporal depth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Const:
    """A non-temporal constant (a standard database constant).

    Values are strings or ints; ints in data positions are ordinary
    constants with no arithmetic meaning.
    """

    value: Union[str, int]

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Var:
    """A non-temporal (data) variable."""

    name: str

    def __str__(self) -> str:
        return self.name


#: A data term is a constant or a variable.
DataTerm = Union[Const, Var]


@dataclass(frozen=True, slots=True)
class TimeTerm:
    """A temporal term ``var + offset`` (or the ground term ``offset``).

    ``TimeTerm(None, 5)`` is the ground temporal term ``5`` (i.e. the
    constant 0 with five applications of ``+1``); ``TimeTerm("T", 2)`` is
    the term ``T+2``.  Offsets are always non-negative: the language has no
    ``-1`` function symbol.
    """

    var: Union[str, None]
    offset: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(
                f"temporal offsets must be non-negative, got {self.offset}"
            )

    @property
    def is_ground(self) -> bool:
        """True for ground temporal terms (no variable)."""
        return self.var is None

    @property
    def depth(self) -> int:
        """The depth of the term: number of ``+1`` applications."""
        return self.offset

    def shift(self, delta: int) -> "TimeTerm":
        """Return this term with ``delta`` added to its offset."""
        return TimeTerm(self.var, self.offset + delta)

    def instantiate(self, timepoint: int) -> int:
        """Ground this term by binding its variable to ``timepoint``.

        For a ground term the variable binding is ignored.
        """
        if self.var is None:
            return self.offset
        return timepoint + self.offset

    def __str__(self) -> str:
        if self.var is None:
            return str(self.offset)
        if self.offset == 0:
            return self.var
        return f"{self.var}+{self.offset}"


def ground_time(timepoint: int) -> TimeTerm:
    """Build the ground temporal term for an integer timepoint."""
    return TimeTerm(None, timepoint)


def time_var(name: str, offset: int = 0) -> TimeTerm:
    """Build the temporal term ``name + offset``."""
    return TimeTerm(name, offset)
