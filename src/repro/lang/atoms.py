"""Atoms of the temporal deductive database language.

Following Section 3.1 of the paper, an atom is either

* a **temporal atom** ``P(v, x1, ..., xn)`` where ``v`` is a temporal term
  and the ``xi`` are data terms, or
* a **non-temporal atom** ``R(x1, ..., xn)`` with only data terms.

Both are represented by :class:`Atom`; the distinction is whether the
``time`` field is ``None``.  Ground temporal facts are represented by
:class:`Fact`, an interned, lightweight ``(pred, timepoint, args)`` triple
used by the evaluation engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from .spans import Span
from .terms import Const, DataTerm, TimeTerm, Var


@dataclass(frozen=True, slots=True)
class Atom:
    """A temporal or non-temporal atom.

    ``time is None`` means the predicate is non-temporal.  ``args`` holds
    only the non-temporal arguments; the temporal argument is always the
    distinguished first argument and lives in ``time``.

    ``span`` optionally records where the atom was written in the source
    text.  It is excluded from equality and hashing so that atoms from
    different places (or none) still compare structurally.
    """

    pred: str
    time: Union[TimeTerm, None]
    args: tuple[DataTerm, ...]
    span: Union[Span, None] = field(default=None, compare=False,
                                    repr=False)

    @property
    def is_temporal(self) -> bool:
        """True if this atom has a temporal argument."""
        return self.time is not None

    @property
    def arity(self) -> int:
        """Number of non-temporal arguments."""
        return len(self.args)

    @property
    def is_ground(self) -> bool:
        """True when the atom contains no variables of either sort."""
        if self.time is not None and not self.time.is_ground:
            return False
        return all(isinstance(a, Const) for a in self.args)

    def data_variables(self) -> Iterator[Var]:
        """Yield the data variables of the atom, with repetitions."""
        for arg in self.args:
            if isinstance(arg, Var):
                yield arg

    def temporal_variable(self) -> Union[str, None]:
        """Name of the temporal variable, or None if absent/ground."""
        if self.time is not None:
            return self.time.var
        return None

    def to_fact(self) -> "Fact":
        """Convert a ground atom to a :class:`Fact`.

        Raises :class:`ValueError` if the atom is not ground.
        """
        if not self.is_ground:
            raise ValueError(f"atom {self} is not ground")
        args = tuple(a.value for a in self.args)  # type: ignore[union-attr]
        timepoint = self.time.offset if self.time is not None else None
        return Fact(self.pred, timepoint, args, span=self.span)

    def __str__(self) -> str:
        parts: list[str] = []
        if self.time is not None:
            parts.append(str(self.time))
        parts.extend(str(a) for a in self.args)
        if not parts:
            return self.pred
        return f"{self.pred}({', '.join(parts)})"


@dataclass(frozen=True, slots=True)
class Fact:
    """A ground fact: predicate, optional timepoint, constant arguments.

    ``time is None`` encodes a non-temporal fact.  Argument values are the
    raw constant values (strings or ints), not :class:`Const` wrappers, to
    keep the evaluation engines allocation-light.
    """

    pred: str
    time: Union[int, None]
    args: tuple[Union[str, int], ...]
    span: Union[Span, None] = field(default=None, compare=False,
                                    repr=False)

    @property
    def is_temporal(self) -> bool:
        return self.time is not None

    def shifted(self, delta: int) -> "Fact":
        """Return this fact moved ``delta`` steps forward in time."""
        if self.time is None:
            raise ValueError(f"cannot shift non-temporal fact {self}")
        return Fact(self.pred, self.time + delta, self.args,
                    span=self.span)

    def to_atom(self) -> Atom:
        """Convert back to a ground :class:`Atom`."""
        time = TimeTerm(None, self.time) if self.time is not None else None
        return Atom(self.pred, time, tuple(Const(v) for v in self.args),
                    span=self.span)

    def __str__(self) -> str:
        parts: list[str] = []
        if self.time is not None:
            parts.append(str(self.time))
        parts.extend(str(a) for a in self.args)
        if not parts:
            return self.pred
        return f"{self.pred}({', '.join(parts)})"
