"""Language layer: terms, atoms, rules, parsing and validation.

This package defines the abstract syntax of temporal deductive databases
(Section 3.1 of Chomicki, PODS 1990) and a parser for the paper's concrete
rule syntax.  Everything above (the Datalog and temporal engines, the
relational-specification machinery) is built on these types.
"""

from .atoms import Atom, Fact
from .dates import date_of, day_number, day_range
from .errors import (ClassificationError, EvaluationError, ParseError,
                     ReproError, SortError, ValidationError)
from .parse import is_variable_name, parse_raw, tokenize
from .pretty import format_facts, format_program, format_rules
from .rules import Rule, validate_rule, validate_rules
from .sorts import ParsedProgram, parse_facts, parse_program, parse_rules
from .spans import Span
from .subst import Binding, apply_to_atom, instantiate_head, match_atom
from .terms import Const, DataTerm, TimeTerm, Var, ground_time, time_var

__all__ = [
    "Atom", "Fact", "Rule", "Span", "Const", "Var", "TimeTerm", "DataTerm",
    "ground_time", "time_var",
    "parse_program", "parse_rules", "parse_facts", "ParsedProgram",
    "parse_raw", "tokenize", "is_variable_name",
    "format_rules", "format_facts", "format_program",
    "validate_rule", "validate_rules",
    "Binding", "match_atom", "apply_to_atom", "instantiate_head",
    "ReproError", "ParseError", "SortError", "ValidationError",
    "EvaluationError", "ClassificationError",
    "day_number", "day_range", "date_of",
]
