"""Parser for the paper's rule syntax.

The concrete syntax follows the paper's examples::

    plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
    even(T+2) :- even(T).
    even(0).
    edge(a, b).
    winter(84..174).          % interval fact (footnote 1 of the paper)
    @temporal null.           % optional explicit sort declaration

Conventions:

* identifiers starting with an upper-case letter (or ``_``) are variables,
  everything else is a constant;
* an integer or a ``Var+k`` expression in the first argument marks the
  predicate as temporal; temporality also propagates through shared
  variables (see :mod:`repro.lang.sorts`);
* ``a..b`` intervals are allowed only in the temporal argument of facts
  and expand to one fact per timepoint, mirroring the paper's footnote 1;
* comments run from ``%`` or ``#`` to end of line.

Parsing is two-phase: this module produces a *raw* token-level AST, and
:mod:`repro.lang.sorts` resolves predicate temporality and converts raw
clauses into :class:`~repro.lang.rules.Rule` and
:class:`~repro.lang.atoms.Fact` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .errors import ParseError

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_SYMBOLS = (":-", "..", "(", ")", ",", ".", "+", "@", "/", ":", "=")


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # 'ident', 'int', 'string', 'symbol', 'eof'
    text: str
    line: int
    column: int


def tokenize(text: str) -> list[Token]:
    """Split program text into tokens; raises :class:`ParseError`."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch in "%#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        col = i - line_start + 1
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            # Guard against '12..34': the digits stop before the dots.
            tokens.append(Token("int", text[i:j], line, col))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("ident", text[i:j], line, col))
            i = j
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\n":
                    raise ParseError("unterminated string", line, col)
                j += 1
            if j >= n:
                raise ParseError("unterminated string", line, col)
            tokens.append(Token("string", text[i + 1:j], line, col))
            i = j + 1
            continue
        for sym in _SYMBOLS:
            if text.startswith(sym, i):
                # '.' followed by '.' is handled by the '..' entry first.
                tokens.append(Token("symbol", sym, line, col))
                i += len(sym)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, n - line_start + 1))
    return tokens


# ---------------------------------------------------------------------------
# Raw AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class RawTerm:
    """A term as parsed, before sort resolution.

    ``kind`` is one of ``'int'``, ``'interval'``, ``'name'``, ``'plus'``,
    ``'string'``.  ``value`` holds the int / ``(lo, hi)`` pair / name /
    ``(name, k)`` pair / string respectively.  ``line``/``column`` are the
    1-based source position of the term's first token.
    """

    kind: str
    value: object
    line: int
    column: int = 0


@dataclass(frozen=True, slots=True)
class RawAtom:
    pred: str
    terms: tuple[RawTerm, ...]
    line: int
    negated: bool = False
    column: int = 0
    end_column: int = 0  # exclusive; 0 when unknown


@dataclass(frozen=True, slots=True)
class RawClause:
    head: RawAtom
    body: tuple[RawAtom, ...]
    line: int
    column: int = 0

    @property
    def is_fact(self) -> bool:
        return not self.body


@dataclass(slots=True)
class RawProgram:
    clauses: list[RawClause] = field(default_factory=list)
    temporal_decls: set[str] = field(default_factory=set)
    nontemporal_decls: set[str] = field(default_factory=set)


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _expect(self, kind: str, text: Union[str, None] = None) -> Token:
        tok = self._next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, got {tok.text!r}",
                             tok.line, tok.column)
        return tok

    def program(self) -> RawProgram:
        prog = RawProgram()
        while self._peek().kind != "eof":
            if self._peek().kind == "symbol" and self._peek().text == "@":
                self._declaration(prog)
            else:
                prog.clauses.append(self._clause())
        return prog

    def _declaration(self, prog: RawProgram) -> None:
        self._expect("symbol", "@")
        keyword = self._expect("ident")
        name = self._expect("ident").text
        if self._peek().kind == "symbol" and self._peek().text == "/":
            self._next()
            self._expect("int")  # arity accepted for documentation only
        self._expect("symbol", ".")
        if keyword.text == "temporal":
            prog.temporal_decls.add(name)
        elif keyword.text == "nontemporal":
            prog.nontemporal_decls.add(name)
        else:
            raise ParseError(f"unknown declaration @{keyword.text}",
                             keyword.line, keyword.column)

    def _clause(self) -> RawClause:
        head = self._atom()
        body: list[RawAtom] = []
        tok = self._peek()
        if tok.kind == "symbol" and tok.text == ":-":
            self._next()
            body.append(self._literal())
            while self._peek().kind == "symbol" and self._peek().text == ",":
                self._next()
                body.append(self._literal())
        self._expect("symbol", ".")
        return RawClause(head, tuple(body), head.line, column=head.column)

    def _literal(self) -> RawAtom:
        """A body literal: an atom, optionally prefixed with ``not``.

        Negation is this library's stratified-semantics extension; the
        paper's rules are definite.
        """
        tok = self._peek()
        if tok.kind == "ident" and tok.text == "not":
            self._next()
            atom = self._atom()
            return RawAtom(atom.pred, atom.terms, atom.line,
                           negated=True, column=atom.column,
                           end_column=atom.end_column)
        return self._atom()

    def _atom(self) -> RawAtom:
        name = self._expect("ident")
        end = name.column + len(name.text)
        terms: list[RawTerm] = []
        if self._peek().kind == "symbol" and self._peek().text == "(":
            self._next()
            terms.append(self._term())
            while self._peek().kind == "symbol" and self._peek().text == ",":
                self._next()
                terms.append(self._term())
            close = self._expect("symbol", ")")
            if close.line == name.line:
                end = close.column + 1
        return RawAtom(name.text, tuple(terms), name.line,
                       column=name.column, end_column=end)

    def _term(self) -> RawTerm:
        tok = self._next()
        if tok.kind == "int":
            lo = int(tok.text)
            if self._peek().kind == "symbol" and self._peek().text == "..":
                self._next()
                hi_tok = self._expect("int")
                hi = int(hi_tok.text)
                if hi < lo:
                    raise ParseError(f"empty interval {lo}..{hi}",
                                     tok.line, tok.column)
                return RawTerm("interval", (lo, hi), tok.line, tok.column)
            return RawTerm("int", lo, tok.line, tok.column)
        if tok.kind == "string":
            return RawTerm("string", tok.text, tok.line, tok.column)
        if tok.kind == "ident":
            if self._peek().kind == "symbol" and self._peek().text == "+":
                self._next()
                k_tok = self._expect("int")
                return RawTerm("plus", (tok.text, int(k_tok.text)),
                               tok.line, tok.column)
            return RawTerm("name", tok.text, tok.line, tok.column)
        raise ParseError(f"expected a term, got {tok.text!r}",
                         tok.line, tok.column)


def parse_raw(text: str) -> RawProgram:
    """Parse program text to the raw (sort-unresolved) AST."""
    return _Parser(tokenize(text)).program()


def is_variable_name(name: str) -> bool:
    """Prolog-style convention: variables start upper-case or with '_'."""
    return bool(name) and (name[0].isupper() or name[0] == "_")
