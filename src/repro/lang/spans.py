"""Source spans: where in the program text a construct came from.

The tokenizer records a 1-based line and column for every token; the
parser threads them through the raw AST so that
:class:`~repro.lang.atoms.Atom`,
:class:`~repro.lang.atoms.Fact` and :class:`~repro.lang.rules.Rule` can
carry an optional :class:`Span`.  Spans are carried *outside* structural
equality (``compare=False`` fields): two atoms differing only in their
span compare and hash equal, so evaluation, memoization and the
round-trip property tests are unaffected by where a rule was written.

Spans power the diagnostics engine (:mod:`repro.analysis`): every lint
finding points at ``file:line:col`` and the renderers underline the
offending source text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Span:
    """A 1-based source location: a line, a column, and an optional
    end column (exclusive) on the same line."""

    line: int
    column: int
    end_column: Union[int, None] = None

    @property
    def width(self) -> int:
        """Character width of the span (at least 1)."""
        if self.end_column is None:
            return 1
        return max(1, self.end_column - self.column)

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"
