"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Each subclass corresponds to one phase of processing: parsing,
sort inference, static validation, or evaluation.  The static-phase errors
(parse, sort, validation) optionally carry a 1-based source line and
column, which the CLI uses to render ``file:line:col`` messages with a
caret-underlined excerpt (see :mod:`repro.analysis.render`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class LocatedError(ReproError):
    """A static error that knows where in the source text it occurred.

    ``line`` and ``column`` are 1-based and ``None`` when unknown (e.g.
    for programmatically constructed rules).  The location is folded into
    the message for plain ``str()`` consumers.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.line = line
        self.column = column
        self.bare_message = message
        if line is not None:
            message = f"line {line}" + (
                f", column {column}" if column is not None else ""
            ) + f": {message}"
        super().__init__(message)


class ParseError(LocatedError):
    """Raised when program text cannot be parsed.

    Carries the 1-based line and column of the offending token when known.
    """


class SortError(LocatedError):
    """Raised when predicate/variable temporal sorts cannot be reconciled.

    Examples: a variable used both as a temporal and a data argument, or a
    predicate used with inconsistent arity or temporality.
    """


class ValidationError(LocatedError):
    """Raised when a rule or database violates the paper's restrictions.

    The main restrictions (Section 3.1 of the paper) are: rules must be
    range-restricted, temporal terms may appear only in the distinguished
    temporal argument, and database facts must be ground.
    """


class EvaluationError(ReproError):
    """Raised when bottom-up evaluation cannot complete.

    Typical causes: an explicit horizon too small to certify a period, or a
    resource cap (maximum horizon / fact count) being exceeded.
    """


class ClassificationError(ReproError):
    """Raised when a classifier's preconditions are not met.

    Example: asking for the Theorem 6.3 one-period bound of a ruleset that
    is not reduced time-only, or exceeding the skeleton-database cap.
    """
