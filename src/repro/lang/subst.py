"""Substitutions and matching for bottom-up evaluation.

Bottom-up evaluation only needs one-sided *matching* of a rule-body atom
against ground facts (no full unification): a binding environment maps data
variables to constant values and the rule's temporal variable (there is at
most one in a semi-normal rule, but we support several) to an integer
timepoint.

Bindings are plain dicts ``{var_name: value}`` shared between both sorts;
the validator guarantees sort disjointness, and temporal bindings are the
only int-typed entries produced by temporal positions.
"""

from __future__ import annotations

from typing import Mapping, Union

from .atoms import Atom, Fact
from .terms import Const, TimeTerm, Var

Binding = dict[str, Union[str, int]]


def match_atom(atom: Atom, fact: Fact,
               binding: Binding) -> Union[Binding, None]:
    """Match ``atom`` against ground ``fact``, extending ``binding``.

    Returns the extended binding (a new dict; the input is not mutated) or
    ``None`` when the match fails.  Temporal terms ``T+k`` match timepoint
    ``t`` only when ``t >= k`` (the language has no negative timepoints).
    """
    if atom.pred != fact.pred or len(atom.args) != len(fact.args):
        return None
    new: Union[Binding, None] = None

    if (atom.time is None) != (fact.time is None):
        return None
    if atom.time is not None:
        assert fact.time is not None
        tt = atom.time
        if tt.var is None:
            if tt.offset != fact.time:
                return None
        else:
            base = fact.time - tt.offset
            if base < 0:
                return None
            bound = binding.get(tt.var)
            if bound is None:
                new = dict(binding)
                new[tt.var] = base
            elif bound != base:
                return None

    for pattern, value in zip(atom.args, fact.args):
        if isinstance(pattern, Const):
            if pattern.value != value:
                return None
        else:
            source = new if new is not None else binding
            bound = source.get(pattern.name)
            if bound is None:
                if new is None:
                    new = dict(binding)
                new[pattern.name] = value
            elif bound != value:
                return None
    if new is None:
        new = dict(binding)
    return new


def apply_to_atom(atom: Atom, binding: Mapping[str, Union[str, int]]) -> Atom:
    """Apply a binding to an atom, grounding the bound variables."""
    time = atom.time
    if time is not None and time.var is not None and time.var in binding:
        timepoint = binding[time.var]
        assert isinstance(timepoint, int)
        time = TimeTerm(None, timepoint + time.offset)
    args = tuple(
        Const(binding[a.name])
        if isinstance(a, Var) and a.name in binding else a
        for a in atom.args
    )
    return Atom(atom.pred, time, args)


def instantiate_head(atom: Atom,
                     binding: Mapping[str, Union[str, int]]) -> Fact:
    """Ground a (range-restricted) head atom under a complete binding.

    Faster than ``apply_to_atom(...).to_fact()``: builds the
    :class:`Fact` directly.  Raises :class:`KeyError` if a head variable
    is unbound, which would indicate a non-range-restricted rule.
    """
    time: Union[int, None]
    if atom.time is None:
        time = None
    elif atom.time.var is None:
        time = atom.time.offset
    else:
        base = binding[atom.time.var]
        assert isinstance(base, int)
        time = base + atom.time.offset
    args = tuple(
        binding[a.name] if isinstance(a, Var) else a.value
        for a in atom.args
    )
    return Fact(atom.pred, time, args)
