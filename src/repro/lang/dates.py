"""Calendar-date convenience, after the paper's footnote 1.

The paper's travel database is written with dates — ``plane(01/01/90)``,
``winter(<12/20/89, 03/20/90>)`` — and footnote 1 explains they
abbreviate temporal terms ``(...((0+1)+1)...+1)`` relative to some
epoch.  These helpers perform that expansion so databases can be
authored with calendar dates:

>>> day_number("01/01/90", epoch="12/20/89")
12
>>> day_range("12/20/89", "12/25/89", epoch="12/20/89")
(0, 5)
>>> date_of(12, epoch="12/20/89")
'01/01/90'

Dates use the paper's US ``MM/DD/YY`` spelling with a 1900s/2000s pivot
(two-digit years < 70 are 20xx), or ISO ``YYYY-MM-DD``.
"""

from __future__ import annotations

import datetime

_PIVOT = 70


def _parse(text: str) -> datetime.date:
    text = text.strip()
    if "-" in text:
        return datetime.date.fromisoformat(text)
    month, day, year = text.split("/")
    y = int(year)
    if y < 100:
        y += 1900 if y >= _PIVOT else 2000
    return datetime.date(y, int(month), int(day))


def day_number(date: str, epoch: str) -> int:
    """The temporal term (day offset) a date abbreviates.

    Raises :class:`ValueError` for dates before the epoch: temporal
    terms are non-negative.
    """
    delta = (_parse(date) - _parse(epoch)).days
    if delta < 0:
        raise ValueError(
            f"{date} is before the epoch {epoch}; temporal terms are "
            "non-negative"
        )
    return delta


def day_range(start: str, end: str, epoch: str) -> tuple[int, int]:
    """The inclusive interval a date pair abbreviates (footnote 1's
    ``<12/20/89, 03/20/90>`` notation)."""
    lo = day_number(start, epoch)
    hi = day_number(end, epoch)
    if hi < lo:
        raise ValueError(f"empty interval {start}..{end}")
    return (lo, hi)


def date_of(day: int, epoch: str, iso: bool = False) -> str:
    """The calendar date a timepoint denotes (for display)."""
    date = _parse(epoch) + datetime.timedelta(days=day)
    if iso:
        return date.isoformat()
    return f"{date.month:02d}/{date.day:02d}/{date.year % 100:02d}"
