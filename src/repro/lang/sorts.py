"""Sort resolution: deciding which predicates and variables are temporal.

The paper's language partitions predicates, constants and variables into
temporal and non-temporal sorts (Section 3.1).  The concrete syntax does
not annotate sorts, so we infer them:

1. a predicate used with a ``Var+k`` or interval expression in its first
   argument is temporal;
2. if a predicate is temporal, the variable in its first argument is a
   temporal variable *within that clause*;
3. any predicate whose first argument is a clause's temporal variable is
   itself temporal.

Rules 2–3 iterate to a fixpoint over the whole program, which resolves
programs such as the paper's bounded-path example, where ``null(K)``
becomes temporal because ``K`` is the temporal argument of ``path``.
Explicit ``@temporal p.`` / ``@nontemporal p.`` declarations seed or
override the inference; contradictions raise :class:`SortError`.

Bare integer first arguments (e.g. a fact ``p(5).`` for a predicate never
used with ``+``) are *not* taken as temporal evidence — an integer is a
perfectly good data constant — so such predicates need a declaration if
they are meant to be temporal.
"""

from __future__ import annotations

from dataclasses import dataclass

from .atoms import Atom, Fact
from .errors import SortError, ValidationError
from .parse import (RawAtom, RawClause, RawProgram, is_variable_name,
                    parse_raw)
from .rules import Rule, validate_rules
from .spans import Span
from .terms import Const, DataTerm, TimeTerm, Var


def _span_of(atom: RawAtom) -> Span:
    return Span(atom.line, atom.column or 1, atom.end_column or None)


@dataclass(frozen=True)
class ParsedProgram:
    """The result of parsing: rules, database facts, and inferred sorts."""

    rules: tuple[Rule, ...]
    facts: tuple[Fact, ...]
    temporal_preds: frozenset[str]

    @property
    def predicates(self) -> frozenset[str]:
        preds = {r.head.pred for r in self.rules}
        preds.update(a.pred for r in self.rules for a in r.body)
        preds.update(f.pred for f in self.facts)
        return frozenset(preds)


def infer_temporal_predicates(raw: RawProgram) -> frozenset[str]:
    """Run the sort-inference fixpoint described in the module docstring."""
    temporal: set[str] = set(raw.temporal_decls)

    def atoms() -> list[RawAtom]:
        out: list[RawAtom] = []
        for clause in raw.clauses:
            out.append(clause.head)
            out.extend(clause.body)
        return out

    for atom in atoms():
        if atom.terms and atom.terms[0].kind in ("plus", "interval"):
            temporal.add(atom.pred)

    changed = True
    while changed:
        changed = False
        for clause in raw.clauses:
            clause_atoms = (clause.head,) + clause.body
            temporal_vars: set[str] = set()
            for atom in clause_atoms:
                if not atom.terms:
                    continue
                first = atom.terms[0]
                if first.kind == "plus":
                    name = first.value[0]  # type: ignore[index]
                    if is_variable_name(name):
                        temporal_vars.add(name)
                elif (first.kind == "name" and atom.pred in temporal
                        and is_variable_name(
                            first.value)):  # type: ignore[arg-type]
                    temporal_vars.add(first.value)  # type: ignore[arg-type]
            if not temporal_vars:
                continue
            for atom in clause_atoms:
                if not atom.terms:
                    continue
                first = atom.terms[0]
                if (first.kind == "name" and first.value in temporal_vars
                        and atom.pred not in temporal):
                    temporal.add(atom.pred)
                    changed = True

    conflict = temporal & raw.nontemporal_decls
    if conflict:
        raise SortError(
            f"predicates {sorted(conflict)} declared @nontemporal but "
            "used with temporal first arguments"
        )
    return frozenset(temporal)


def _check_arities(raw: RawProgram) -> None:
    arities: dict[str, int] = {}
    for clause in raw.clauses:
        for atom in (clause.head,) + clause.body:
            seen = arities.setdefault(atom.pred, len(atom.terms))
            if seen != len(atom.terms):
                raise SortError(
                    f"predicate {atom.pred} used with both {seen} and "
                    f"{len(atom.terms)} arguments",
                    atom.line, atom.column or None
                )


def _convert_data_term(term, pred: str, temporal_vars: set[str]) -> DataTerm:
    if term.kind == "int":
        return Const(term.value)
    if term.kind == "string":
        return Const(term.value)
    if term.kind == "name":
        name = term.value
        if is_variable_name(name):
            if name in temporal_vars:
                raise SortError(
                    f"temporal variable {name} used as a data argument "
                    f"of {pred}",
                    term.line, term.column or None
                )
            return Var(name)
        return Const(name)
    raise SortError(
        f"term of kind {term.kind!r} not allowed in a data position of "
        f"{pred}",
        term.line, term.column or None
    )


def _convert_atom(atom: RawAtom, temporal: frozenset[str],
                  temporal_vars: set[str],
                  allow_interval: bool) -> "list[Atom]":
    """Convert a raw atom; intervals expand to several atoms."""
    span = _span_of(atom)
    if atom.pred not in temporal:
        args = tuple(
            _convert_data_term(t, atom.pred, temporal_vars)
            for t in atom.terms
        )
        return [Atom(atom.pred, None, args, span=span)]

    if not atom.terms:
        raise SortError(
            f"temporal predicate {atom.pred} used without a temporal "
            "argument",
            atom.line, atom.column or None
        )
    first, rest = atom.terms[0], atom.terms[1:]
    args = tuple(
        _convert_data_term(t, atom.pred, temporal_vars) for t in rest
    )
    if first.kind == "int":
        return [Atom(atom.pred, TimeTerm(None, first.value), args,
                     span=span)]
    if first.kind == "plus":
        name, k = first.value
        if not is_variable_name(name):
            raise SortError(
                f"{name}+{k}: temporal terms must be built on a variable "
                f"or on 0",
                first.line, first.column or None
            )
        return [Atom(atom.pred, TimeTerm(name, k), args, span=span)]
    if first.kind == "name":
        name = first.value
        if not is_variable_name(name):
            raise SortError(
                f"constant {name!r} used as the temporal argument of "
                f"{atom.pred}; only the constant 0 "
                "and variables are temporal terms",
                first.line, first.column or None
            )
        return [Atom(atom.pred, TimeTerm(name, 0), args, span=span)]
    if first.kind == "interval":
        if not allow_interval:
            raise SortError(
                "interval temporal terms are only allowed in facts",
                first.line, first.column or None
            )
        lo, hi = first.value
        return [
            Atom(atom.pred, TimeTerm(None, t), args, span=span)
            for t in range(lo, hi + 1)
        ]
    raise SortError(
        f"term of kind {first.kind!r} not allowed as a temporal argument",
        first.line, first.column or None
    )


def _clause_temporal_vars(clause: RawClause,
                          temporal: frozenset[str]) -> set[str]:
    tvars: set[str] = set()
    for atom in (clause.head,) + clause.body:
        if not atom.terms:
            continue
        first = atom.terms[0]
        if first.kind == "plus" and is_variable_name(first.value[0]):
            tvars.add(first.value[0])
        elif (first.kind == "name" and atom.pred in temporal
                and is_variable_name(first.value)):
            tvars.add(first.value)
    return tvars


def resolve(raw: RawProgram) -> ParsedProgram:
    """Resolve sorts and convert a raw program to rules and facts."""
    _check_arities(raw)
    temporal = infer_temporal_predicates(raw)

    rules: list[Rule] = []
    facts: list[Fact] = []
    for clause in raw.clauses:
        temporal_vars = _clause_temporal_vars(clause, temporal)
        heads = _convert_atom(clause.head, temporal, temporal_vars,
                              allow_interval=clause.is_fact)
        if clause.is_fact:
            for head in heads:
                if not head.is_ground:
                    raise ValidationError(
                        f"fact {head} is not ground",
                        clause.line, clause.column or None
                    )
                facts.append(head.to_fact())
            continue
        body: list[Atom] = []
        negative: list[Atom] = []
        for raw_atom in clause.body:
            converted = _convert_atom(raw_atom, temporal, temporal_vars,
                                      allow_interval=False)
            if raw_atom.negated:
                negative.extend(converted)
            else:
                body.extend(converted)
        assert len(heads) == 1
        rules.append(Rule(heads[0], tuple(body), tuple(negative),
                          span=heads[0].span))

    return ParsedProgram(tuple(rules), tuple(facts), temporal)


def parse_program(text: str, validate: bool = True) -> ParsedProgram:
    """Parse program text into rules and database facts.

    When ``validate`` is true (the default), the rules are checked against
    the paper's static restrictions (range-restriction, no ground temporal
    terms in rules, sort discipline).
    """
    program = resolve(parse_raw(text))
    if validate:
        validate_rules(program.rules)
    return program


def parse_rules(text: str, validate: bool = True) -> tuple[Rule, ...]:
    """Parse text expected to contain only rules (no facts)."""
    program = parse_program(text, validate=validate)
    if program.facts:
        raise ValidationError(
            f"expected rules only, found facts: {program.facts[:3]}"
        )
    return program.rules


def parse_facts(text: str) -> tuple[Fact, ...]:
    """Parse text expected to contain only ground facts."""
    program = parse_program(text, validate=False)
    if program.rules:
        raise ValidationError(
            f"expected facts only, found rules: {program.rules[:3]}"
        )
    return program.facts
