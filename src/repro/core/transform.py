"""Program transformations of Section 6: Theorems 6.2 and 6.4.

* :func:`temporalize` — the reduction behind Theorem 6.2's
  undecidability proof: a function-free Datalog program ``S`` becomes a
  temporal program ``S'`` that *counts the iterations* of ``S`` (every
  rule gets a temporal argument stepping by one, every predicate gets a
  copy rule, every database fact is stamped with timepoint 0).  ``S`` is
  strongly k-bounded iff ``S'`` is 1-periodic with 1-period ``(k, 1)`` —
  exercised empirically by experiment E8.

* :func:`to_time_only` — Theorem 6.4's converse construction: every
  1-periodic ruleset ``Z`` is matched by a set ``Z1`` of reduced
  time-only copy rules ``P(T+p, x̄) :- P(T, x̄)`` plus a database ``D1``
  holding a prefix of the least model, such that the least models agree.
  Note the fine print (recorded in DESIGN.md): copy rules regenerate the
  periodic part exactly, but also re-copy *pre-periodic* facts ``p``
  steps forward, so the models provably agree from the period threshold
  ``b`` onwards (and everywhere when the model has no pre-periodic
  exceptions); :func:`to_time_only` reports the agreement threshold.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from ..lang.atoms import Atom, Fact
from ..lang.errors import ClassificationError
from ..lang.rules import Rule
from ..lang.terms import TimeTerm, Var
from ..temporal.bt import bt_evaluate
from ..temporal.database import TemporalDatabase

#: The temporal variable introduced by temporalize; fresh w.r.t. data
#: variables because sorts are disjoint.
_TVAR = "T"


def _stamp(atom: Atom, offset: int) -> Atom:
    """Attach temporal argument ``T+offset`` to a non-temporal atom."""
    if atom.time is not None:
        raise ClassificationError(
            f"temporalize expects function-free rules; {atom} is "
            "already temporal"
        )
    return Atom(atom.pred, TimeTerm(_TVAR, offset), atom.args)


def temporalize(rules: Sequence[Rule],
                facts: Iterable[Fact] = ()) -> tuple[list[Rule],
                                                     list[Fact]]:
    """The Theorem 6.2 reduction: count iterations of a Datalog program.

    Each rule ``a(X̄) :- b1(Ȳ1), ..., bk(Ȳk)`` becomes
    ``a(T+1, X̄) :- b1(T, Ȳ1), ..., bk(T, Ȳk)``; every predicate gets a
    copy rule ``p(T+1, X̄) :- p(T, X̄)``; every database fact is stamped
    with timepoint 0.  In the least model of the result,
    ``p(k, x̄)`` holds iff ``x̄ ∈ T_{S∧D}^{k+1}(∅)`` — the k-th naive
    iteration stage of the original program.
    """
    out: list[Rule] = []
    predicates: dict[str, int] = {}
    for rule in rules:
        for atom in rule.atoms():
            predicates[atom.pred] = atom.arity
    for rule in rules:
        if rule.is_fact:
            out.append(Rule(_stamp(rule.head, 0)))
            continue
        head = _stamp(rule.head, 1)
        body = tuple(_stamp(a, 0) for a in rule.body)
        out.append(Rule(head, body))
    for pred in sorted(predicates):
        args = tuple(Var(f"X{i}") for i in range(predicates[pred]))
        out.append(Rule(
            Atom(pred, TimeTerm(_TVAR, 1), args),
            (Atom(pred, TimeTerm(_TVAR, 0), args),),
        ))
    stamped = [Fact(f.pred, 0, f.args) for f in facts]
    return out, stamped


def copy_rules(predicates: dict[str, int], p: int) -> list[Rule]:
    """Reduced time-only copy rules ``P(T+p, x̄) :- P(T, x̄)``."""
    rules: list[Rule] = []
    for pred in sorted(predicates):
        args = tuple(Var(f"X{i}") for i in range(predicates[pred]))
        rules.append(Rule(
            Atom(pred, TimeTerm(_TVAR, p), args),
            (Atom(pred, TimeTerm(_TVAR, 0), args),),
        ))
    return rules


def to_time_only(rules: Sequence[Rule], database: TemporalDatabase,
                 b: Union[int, None] = None,
                 p: Union[int, None] = None
                 ) -> tuple[list[Rule], TemporalDatabase, int]:
    """Theorem 6.4: replace a (1-)periodic TDD by copy rules + a prefix.

    Returns ``(Z1, D1, threshold)`` where ``Z1`` is the set of reduced
    time-only copy rules with step ``p``, ``D1`` holds every least-model
    fact with timepoint ≤ ``b + p - 1`` (plus the non-temporal part),
    and the least models of ``Z∧D`` and ``Z1∧D1`` agree on all
    timepoints ≥ ``threshold`` (= the period start ``b``); below the
    threshold ``M(Z1∧D1)`` may be a superset, because copy rules also
    push pre-periodic facts forward.

    ``b``/``p`` default to the minimal period found by algorithm BT.
    """
    if b is None or p is None:
        result = bt_evaluate(rules, database)
        if result.period is None:
            raise ClassificationError("no period found; cannot apply the "
                                      "Theorem 6.4 construction")
        b, p = result.period.b, result.period.p
        store = result.store
    else:
        result = bt_evaluate(rules, database, window=b + 2 * p)
        store = result.store

    predicates: dict[str, int] = {}
    for fact in store.temporal_facts():
        predicates[fact.pred] = len(fact.args)
    for rule in rules:
        for atom in rule.atoms():
            if atom.time is not None:
                predicates[atom.pred] = atom.arity

    prefix = store.truncate(b + p - 1)
    d1 = TemporalDatabase(prefix.facts())
    return copy_rules(predicates, p), d1, b
