"""Static program analysis for TDD programs.

:func:`analyze` produces a structural report — predicate inventory,
recursion components, strata, forwardness, temporal depth — and runs the
span-aware diagnostics engine (:mod:`repro.analysis`) over the program,
so every finding carries a stable ``TDDnnn`` code, a severity, and the
source location when the rules came from text.  :func:`lint` returns
just the diagnostics.

This module is the programmatic face of the engine; the CLI surfaces
are ``repro analyze`` (structural report + diagnostics) and ``repro
lint`` (diagnostics only, with text/JSON/SARIF renderers and CI
gating).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

from ..analysis import Diagnostic, LintContext, run_checks
from ..analysis.static import (ProgramAnalysis, fact_sizes,
                               predicted_cost, query_slice, rule_cost)
from ..datalog.depgraph import (derived_predicates, is_stratifiable,
                                recursive_predicates, stratification)
from ..lang.atoms import Fact
from ..lang.rules import Rule

__all__ = ["Diagnostic", "ProgramReport", "analyze", "lint",
           "join_plans"]


@dataclass
class ProgramReport:
    """The structural analysis of a ruleset (+ optional database).

    One report, one check registry: the structural fields, the static
    analyzer's :class:`~repro.analysis.static.ProgramAnalysis` (class
    in the tractability lattice, per-rule costs, budget estimate,
    optional query slice) and the diagnostics all come from the same
    :class:`~repro.analysis.LintContext`, so ``repro analyze`` and
    ``repro lint`` can never disagree on codes or severities.
    """

    predicates: dict[str, dict] = field(default_factory=dict)
    recursive: set[str] = field(default_factory=set)
    strata: dict[str, int] = field(default_factory=dict)
    stratifiable: bool = True
    forward: bool = True
    lookback: Union[int, None] = None
    temporal_depth: int = 0
    inflationary: Union[bool, None] = None
    multi_separable: bool = False
    analysis: Union[ProgramAnalysis, None] = None
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def warnings(self) -> list[Diagnostic]:
        """Diagnostics of severity warning or error."""
        return [d for d in self.diagnostics
                if d.severity in ("warning", "error")]

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def tractability_class(self) -> str:
        if self.analysis is None:
            return "unknown"
        return self.analysis.tractability.klass

    @property
    def predicted_cost(self) -> float:
        return self.analysis.budget if self.analysis is not None else 0.0

    def render(self) -> str:
        lines = ["predicates:"]
        for pred in sorted(self.predicates):
            info = self.predicates[pred]
            flavour = "temporal" if info["temporal"] else "non-temporal"
            role = info["role"]
            stratum = self.strata.get(pred)
            extra = f", stratum {stratum}" if stratum else ""
            lines.append(
                f"  {pred}/{info['arity']} ({flavour}, {role}{extra})")
        lines.append(f"recursive predicates: "
                     f"{sorted(self.recursive) or 'none'}")
        lines.append(f"forward: {self.forward}"
                     + (f" (lookback {self.lookback})"
                        if self.forward else ""))
        lines.append(f"max temporal depth g: {self.temporal_depth}")
        lines.append(f"inflationary: {self.inflationary}")
        lines.append(f"multi-separable: {self.multi_separable}")
        if self.analysis is not None:
            tract = self.analysis.tractability
            lines.append(f"tractability class: {tract.klass}"
                         + (" (tractable)" if tract.tractable
                            else " (no guarantee)"))
            if tract.period is not None:
                lines.append(f"period stride estimate: {tract.period}")
            for reason in tract.reasons:
                lines.append(f"  - {reason}")
            lines.append(
                f"predicted evaluation cost: {self.analysis.budget:.0f}"
                " probe units")
            slice_ = self.analysis.reachability
            if slice_ is not None:
                lines.append(
                    f"query {slice_.roots[0]}: "
                    f"{len(slice_.rules)} reachable rules, "
                    f"{len(slice_.dead_rules)} unreachable")
        for diagnostic in self.diagnostics:
            lines.append(str(diagnostic))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON shape for ``repro analyze --format json``."""
        out = {
            "predicates": {
                pred: dict(info)
                for pred, info in sorted(self.predicates.items())
            },
            "recursive": sorted(self.recursive),
            "strata": dict(sorted(self.strata.items())),
            "stratifiable": self.stratifiable,
            "forward": self.forward,
            "lookback": self.lookback,
            "temporal_depth": self.temporal_depth,
            "inflationary": self.inflationary,
            "multi_separable": self.multi_separable,
            "diagnostics": [
                {"code": d.code, "name": d.name,
                 "severity": d.severity, "message": d.message}
                for d in self.diagnostics
            ],
        }
        if self.analysis is not None:
            out["analysis"] = self.analysis.to_dict()
        return out


def analyze(rules: Sequence[Rule], facts: Iterable[Fact] = (), *,
            query: Union[str, None] = None) -> ProgramReport:
    """Build the structural report for a ruleset (+ optional database).

    ``query`` names the query predicate: it arms the reachability
    checks (TDD018/TDD019) and attaches the query slice to the report.
    """
    facts = list(facts)  # may be a generator; we iterate it twice
    proper = [r for r in rules if not r.is_fact]
    fact_list = facts + [r.head.to_fact() for r in rules
                         if r.is_fact]
    report = ProgramReport()

    derived = derived_predicates(proper)
    extensional = {f.pred for f in fact_list}
    for rule in proper:
        for atom in rule.atoms():
            info = report.predicates.setdefault(atom.pred, {
                "temporal": atom.is_temporal,
                "arity": atom.arity,
                "role": "edb",
            })
            if atom.pred in derived:
                info["role"] = ("idb+edb" if atom.pred in extensional
                                else "idb")
    for fact in fact_list:
        report.predicates.setdefault(fact.pred, {
            "temporal": fact.time is not None,
            "arity": len(fact.args),
            "role": "edb",
        })

    report.recursive = recursive_predicates(proper)
    report.stratifiable = is_stratifiable(proper)
    if report.stratifiable:
        report.strata = stratification(proper)
    report.temporal_depth = max(
        (r.temporal_depth for r in proper), default=0)

    # One shared context: the diagnostics below and the classification
    # here reuse the same cached Theorem 5.2 / Section 6 results.
    context = LintContext(rules, facts, query=query)
    tractability = context.tractability
    report.inflationary = context.inflationary
    if tractability is not None:
        report.multi_separable = tractability.multi_separable
        report.lookback = tractability.lookback
        report.forward = tractability.forward
        sizes = fact_sizes(fact_list) or None
        report.analysis = ProgramAnalysis(
            tractability=tractability,
            reachability=(query_slice(rules, query)
                          if query is not None else None),
            costs={str(r): rule_cost(r, sizes=sizes) for r in proper},
            budget=predicted_cost(rules, fact_list,
                                  period=tractability.period),
        )
    else:
        from ..temporal.periodicity import forward_lookback
        report.lookback = forward_lookback(proper)
        report.forward = report.lookback is not None
        from ..lang.errors import ReproError
        try:
            from .classify import classify_ruleset
            report.multi_separable = \
                classify_ruleset(proper).is_multi_separable
        except ReproError:
            report.multi_separable = False

    report.diagnostics = run_checks(rules, facts, context=context)
    return report


def lint(rules: Sequence[Rule], facts: Iterable[Fact] = (), *,
         query: Union[str, None] = None) -> list[Diagnostic]:
    """Run every registered check; see :mod:`repro.analysis.checks`.

    Delegates to :func:`repro.analysis.run_checks` — the single check
    registry behind both ``repro analyze`` and ``repro lint``.
    """
    return run_checks(rules, facts, query=query)


def join_plans(rules: Sequence[Rule]) -> dict[str, list[str]]:
    """The engine's join order per rule (EXPLAIN-style observability).

    Maps each rule's text to its body atoms in the order the greedy
    planner would evaluate them (cheapest-first under the static cost
    model, as used by the semi-naive engine's non-delta joins).
    """
    from ..datalog.engine import plan_order
    plans: dict[str, list[str]] = {}
    for rule in rules:
        if rule.is_fact:
            continue
        order = plan_order(rule.body)
        plans[str(rule)] = [str(rule.body[i]) for i in order]
    return plans
