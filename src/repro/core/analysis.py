"""Static program analysis and linting for TDD programs.

A production deductive database should tell the user *why* a program
will (or won't) evaluate well before any evaluation runs.
:func:`analyze` produces a structural report — predicate inventory,
recursion components, strata, forwardness, temporal depth — and
:func:`lint` derives actionable diagnostics from it:

* rules that can never fire (a body predicate with no facts and no
  rules),
* predicates that are defined but never used,
* non-forward rules (periods will be verified, not certified),
* non-normal rules (deeper than 1: relevant when comparing with the
  paper's normal-form statements),
* tractability status per Sections 5 and 6 with the failing rules
  when outside both classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

from ..datalog.depgraph import (dependency_graph, derived_predicates,
                                is_stratifiable, recursive_predicates,
                                stratification)
from ..lang.atoms import Fact
from ..lang.errors import ClassificationError
from ..lang.rules import Rule
from ..temporal.periodicity import forward_lookback
from .classify import classify_ruleset
from .inflationary import is_inflationary


@dataclass
class Diagnostic:
    """One lint finding: a severity, a code, and a message."""

    severity: str  # "info" | "warning"
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class ProgramReport:
    """The structural analysis of a ruleset (+ optional database)."""

    predicates: dict[str, dict] = field(default_factory=dict)
    recursive: set[str] = field(default_factory=set)
    strata: dict[str, int] = field(default_factory=dict)
    stratifiable: bool = True
    forward: bool = True
    lookback: Union[int, None] = None
    temporal_depth: int = 0
    inflationary: Union[bool, None] = None
    multi_separable: bool = False
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def render(self) -> str:
        lines = ["predicates:"]
        for pred in sorted(self.predicates):
            info = self.predicates[pred]
            flavour = "temporal" if info["temporal"] else "non-temporal"
            role = info["role"]
            stratum = self.strata.get(pred)
            extra = f", stratum {stratum}" if stratum else ""
            lines.append(
                f"  {pred}/{info['arity']} ({flavour}, {role}{extra})")
        lines.append(f"recursive predicates: "
                     f"{sorted(self.recursive) or 'none'}")
        lines.append(f"forward: {self.forward}"
                     + (f" (lookback {self.lookback})"
                        if self.forward else ""))
        lines.append(f"max temporal depth g: {self.temporal_depth}")
        lines.append(f"inflationary: {self.inflationary}")
        lines.append(f"multi-separable: {self.multi_separable}")
        for diagnostic in self.diagnostics:
            lines.append(str(diagnostic))
        return "\n".join(lines)


def analyze(rules: Sequence[Rule],
            facts: Iterable[Fact] = ()) -> ProgramReport:
    """Build the structural report for a ruleset (+ optional database)."""
    proper = [r for r in rules if not r.is_fact]
    fact_list = list(facts) + [r.head.to_fact() for r in rules
                               if r.is_fact]
    report = ProgramReport()

    derived = derived_predicates(proper)
    extensional = {f.pred for f in fact_list}
    for rule in proper:
        for atom in rule.atoms():
            info = report.predicates.setdefault(atom.pred, {
                "temporal": atom.is_temporal,
                "arity": atom.arity,
                "role": "edb",
            })
            if atom.pred in derived:
                info["role"] = ("idb+edb" if atom.pred in extensional
                                else "idb")
    for fact in fact_list:
        report.predicates.setdefault(fact.pred, {
            "temporal": fact.time is not None,
            "arity": len(fact.args),
            "role": "edb",
        })

    report.recursive = recursive_predicates(proper)
    report.stratifiable = is_stratifiable(proper)
    if report.stratifiable:
        report.strata = stratification(proper)
    report.lookback = forward_lookback(proper)
    report.forward = report.lookback is not None
    report.temporal_depth = max(
        (r.temporal_depth for r in proper), default=0)
    try:
        report.inflationary = is_inflationary(proper)
    except ClassificationError:
        report.inflationary = None
    classification = classify_ruleset(proper)
    report.multi_separable = classification.is_multi_separable

    _lint_into(report, proper, extensional, derived, classification)
    return report


def _lint_into(report: ProgramReport, rules: Sequence[Rule],
               extensional: set[str], derived: set[str],
               classification) -> None:
    diagnostics = report.diagnostics
    graph = dependency_graph(rules)

    # Predicates with no possible facts: neither extensional nor
    # (transitively) derivable from extensional ones.
    supported: set[str] = set(extensional)
    changed = True
    while changed:
        changed = False
        for rule in rules:
            if rule.head.pred in supported:
                continue
            if all(atom.pred in supported for atom in rule.body):
                supported.add(rule.head.pred)
                changed = True
    for rule in rules:
        dead = [atom.pred for atom in rule.body
                if atom.pred not in supported]
        if dead:
            diagnostics.append(Diagnostic(
                "warning", "dead-rule",
                f"rule '{rule}' can never fire: no facts can exist for "
                f"{sorted(set(dead))}"))

    # Defined but never used (except as a query target, which we cannot
    # see — hence only info severity).
    used = {atom.pred for rule in rules
            for atom in (*rule.body, *rule.negative)}
    for pred in sorted(derived - used):
        diagnostics.append(Diagnostic(
            "info", "unused-predicate",
            f"predicate {pred} is derived but never used in a body "
            "(fine if it is the query target)"))

    if not report.stratifiable:
        diagnostics.append(Diagnostic(
            "warning", "not-stratifiable",
            "recursion through negation: the program has no stratified "
            "model and evaluation will be rejected"))

    if not report.forward:
        backward = [r for r in rules if not r.is_forward]
        diagnostics.append(Diagnostic(
            "warning", "non-forward",
            f"{len(backward)} rule(s) look forward in time; detected "
            "periods will be verified at finite horizons, not "
            "certified"))

    if report.temporal_depth > 1:
        diagnostics.append(Diagnostic(
            "info", "non-normal",
            f"max temporal depth is {report.temporal_depth} > 1; "
            "the paper's normal-form statements apply after "
            "to_normal()"))

    if report.inflationary is False and not report.multi_separable:
        offenders = ", ".join(str(r) for r in
                              classification.offending_rules[:3])
        diagnostics.append(Diagnostic(
            "warning", "no-tractability-guarantee",
            "outside both tractable classes (Sections 5 and 6); "
            "evaluation may need exponential windows"
            + (f"; offending rules: {offenders}" if offenders else "")))


def lint(rules: Sequence[Rule],
         facts: Iterable[Fact] = ()) -> list[Diagnostic]:
    """Just the diagnostics of :func:`analyze`."""
    return analyze(rules, facts).diagnostics


def join_plans(rules: Sequence[Rule]) -> dict[str, list[str]]:
    """The engine's join order per rule (EXPLAIN-style observability).

    Maps each rule's text to its body atoms in the order the greedy
    planner would evaluate them (most-bound-first, as used by the
    semi-naive engine's non-delta joins).
    """
    from ..datalog.engine import plan_order
    plans: dict[str, list[str]] = {}
    for rule in rules:
        if rule.is_fact:
            continue
        order = plan_order(rule.body)
        plans[str(rule)] = [str(rule.body[i]) for i in order]
    return plans
