"""Static program analysis for TDD programs.

:func:`analyze` produces a structural report — predicate inventory,
recursion components, strata, forwardness, temporal depth — and runs the
span-aware diagnostics engine (:mod:`repro.analysis`) over the program,
so every finding carries a stable ``TDDnnn`` code, a severity, and the
source location when the rules came from text.  :func:`lint` returns
just the diagnostics.

This module is the programmatic face of the engine; the CLI surfaces
are ``repro analyze`` (structural report + diagnostics) and ``repro
lint`` (diagnostics only, with text/JSON/SARIF renderers and CI
gating).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

from ..analysis import Diagnostic, run_checks
from ..datalog.depgraph import (derived_predicates, is_stratifiable,
                                recursive_predicates, stratification)
from ..lang.atoms import Fact
from ..lang.errors import ClassificationError
from ..lang.rules import Rule
from ..temporal.periodicity import forward_lookback
from .classify import classify_ruleset
from .inflationary import is_inflationary

__all__ = ["Diagnostic", "ProgramReport", "analyze", "lint",
           "join_plans"]


@dataclass
class ProgramReport:
    """The structural analysis of a ruleset (+ optional database)."""

    predicates: dict[str, dict] = field(default_factory=dict)
    recursive: set[str] = field(default_factory=set)
    strata: dict[str, int] = field(default_factory=dict)
    stratifiable: bool = True
    forward: bool = True
    lookback: Union[int, None] = None
    temporal_depth: int = 0
    inflationary: Union[bool, None] = None
    multi_separable: bool = False
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def warnings(self) -> list[Diagnostic]:
        """Diagnostics of severity warning or error."""
        return [d for d in self.diagnostics
                if d.severity in ("warning", "error")]

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def render(self) -> str:
        lines = ["predicates:"]
        for pred in sorted(self.predicates):
            info = self.predicates[pred]
            flavour = "temporal" if info["temporal"] else "non-temporal"
            role = info["role"]
            stratum = self.strata.get(pred)
            extra = f", stratum {stratum}" if stratum else ""
            lines.append(
                f"  {pred}/{info['arity']} ({flavour}, {role}{extra})")
        lines.append(f"recursive predicates: "
                     f"{sorted(self.recursive) or 'none'}")
        lines.append(f"forward: {self.forward}"
                     + (f" (lookback {self.lookback})"
                        if self.forward else ""))
        lines.append(f"max temporal depth g: {self.temporal_depth}")
        lines.append(f"inflationary: {self.inflationary}")
        lines.append(f"multi-separable: {self.multi_separable}")
        for diagnostic in self.diagnostics:
            lines.append(str(diagnostic))
        return "\n".join(lines)


def analyze(rules: Sequence[Rule],
            facts: Iterable[Fact] = ()) -> ProgramReport:
    """Build the structural report for a ruleset (+ optional database)."""
    facts = list(facts)  # may be a generator; we iterate it twice
    proper = [r for r in rules if not r.is_fact]
    fact_list = facts + [r.head.to_fact() for r in rules
                         if r.is_fact]
    report = ProgramReport()

    derived = derived_predicates(proper)
    extensional = {f.pred for f in fact_list}
    for rule in proper:
        for atom in rule.atoms():
            info = report.predicates.setdefault(atom.pred, {
                "temporal": atom.is_temporal,
                "arity": atom.arity,
                "role": "edb",
            })
            if atom.pred in derived:
                info["role"] = ("idb+edb" if atom.pred in extensional
                                else "idb")
    for fact in fact_list:
        report.predicates.setdefault(fact.pred, {
            "temporal": fact.time is not None,
            "arity": len(fact.args),
            "role": "edb",
        })

    report.recursive = recursive_predicates(proper)
    report.stratifiable = is_stratifiable(proper)
    if report.stratifiable:
        report.strata = stratification(proper)
    report.lookback = forward_lookback(proper)
    report.forward = report.lookback is not None
    report.temporal_depth = max(
        (r.temporal_depth for r in proper), default=0)
    try:
        report.inflationary = is_inflationary(proper)
    except ClassificationError:
        report.inflationary = None
    report.multi_separable = classify_ruleset(proper).is_multi_separable

    report.diagnostics = run_checks(rules, facts)
    return report


def lint(rules: Sequence[Rule],
         facts: Iterable[Fact] = ()) -> list[Diagnostic]:
    """Run every registered check; see :mod:`repro.analysis.checks`."""
    return run_checks(rules, facts)


def join_plans(rules: Sequence[Rule]) -> dict[str, list[str]]:
    """The engine's join order per rule (EXPLAIN-style observability).

    Maps each rule's text to its body atoms in the order the greedy
    planner would evaluate them (most-bound-first, as used by the
    semi-naive engine's non-delta joins).
    """
    from ..datalog.engine import plan_order
    plans: dict[str, list[str]] = {}
    for rule in rules:
        if rule.is_fact:
            continue
        order = plan_order(rule.body)
        plans[str(rule)] = [str(rule.body[i]) for i in order]
    return plans
