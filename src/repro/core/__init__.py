"""Core contribution: tractable query processing for TDDs.

Relational specifications (Section 3.3), first-order temporal queries and
their spec-based evaluation (Proposition 3.1), the tractable-class
machinery of Sections 5 and 6 (inflationary decision procedure,
multi-separability, the Theorem 6.3 one-period construction), the
Theorem 6.2/6.4 transformations, and the :class:`TDD` facade.
"""

from .analysis import (Diagnostic, ProgramReport, analyze,
                       join_plans, lint)
from .answers import DATA, TIME, AnswerSet
from .classify import (SeparabilityReport, classify_ruleset,
                       estimate_one_period, is_data_only_rule,
                       is_multi_separable, is_recursive_rule,
                       is_reduced_rule, is_reduced_time_only,
                       is_separable, is_time_only_rule, one_period_bound,
                       reduce_time_only_rules)
from .magic import (MagicProgram, magic_ask, magic_evaluate,
                    magic_transform)
from .inflationary import (derived_temporal_predicates,
                           inflationary_period_bound,
                           inflationary_witness, is_inflationary,
                           is_inflationary_on)
from .queries import (And, AtomQ, DataEq, Exists, Forall, Implies, Not,
                      Or, Query, TimeEq, answers, answers_on_model,
                      evaluate, evaluate_on_model, free_variables,
                      max_ground_time, parse_query)
from .serialize import (load_spec, save_spec, spec_from_dict,
                        spec_to_dict)
from .spec import RelationalSpec, compute_specification, spec_from_result
from .tdd import TDD, Classification
from .transform import copy_rules, temporalize, to_time_only

__all__ = [
    "TDD", "Classification",
    "RelationalSpec", "compute_specification", "spec_from_result",
    "AnswerSet", "TIME", "DATA",
    "Query", "AtomQ", "Not", "And", "Or", "Implies", "Exists", "Forall",
    "TimeEq", "DataEq",
    "parse_query", "evaluate", "evaluate_on_model", "answers",
    "answers_on_model", "max_ground_time", "free_variables",
    "is_inflationary", "inflationary_witness", "is_inflationary_on",
    "inflationary_period_bound", "derived_temporal_predicates",
    "classify_ruleset", "SeparabilityReport",
    "is_time_only_rule", "is_data_only_rule", "is_reduced_rule",
    "is_recursive_rule", "is_reduced_time_only",
    "is_multi_separable", "is_separable",
    "reduce_time_only_rules", "one_period_bound", "estimate_one_period",
    "temporalize", "to_time_only", "copy_rules",
    "magic_transform", "magic_evaluate", "magic_ask", "MagicProgram",
    "spec_to_dict", "spec_from_dict", "save_spec", "load_spec",
    "analyze", "lint", "join_plans", "ProgramReport", "Diagnostic",
]
