"""Magic-sets rewriting for temporal rules (the paper's Section 8).

Section 8 closes with: "various methods of rule rewriting devised for
DATALOG [15] might be applicable to temporal rules as well."  This module
carries that out: the classical *basic magic sets* transformation,
adapted to the temporal argument, turns a ground-time query into a
rewritten ruleset whose bottom-up evaluation only derives facts relevant
to the query — goal-directed evaluation on top of the unchanged
semi-naive engine.

Adaptation notes:

* the temporal argument participates in adornments like an ordinary
  argument (bound when the query's temporal term is ground, propagated
  through the rule's shared temporal variable);
* magic rules run *backwards* in time (a bound query time ``t0`` seeds
  magic facts at ``t0`` and derivation walks down towards 0), which the
  window-truncated engine evaluates exactly: every relevant fact lives
  in ``[0, t0 + g]``;
* the sideways information passing strategy is left-to-right over the
  rule body as written, with EDB atoms passed through unadorned —
  the textbook "basic" variant.

Restricted to definite rules (magic sets with stratified negation needs
care with the magic predicates' strata and is out of scope).

Entry points: :func:`magic_transform` for the rewritten program,
:func:`magic_ask` for a one-shot goal-directed ground query, used by
benchmark E11 as the goal-directed baseline against full BT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from ..datalog.depgraph import derived_predicates
from ..lang.atoms import Atom, Fact
from ..lang.errors import ClassificationError
from ..lang.rules import Rule
from ..lang.terms import Const, TimeTerm, Var
from ..temporal.database import TemporalDatabase
from ..temporal.operator import fixpoint
from ..temporal.store import TemporalStore

#: An adornment: (time_bound, per-data-argument boundness).
Adornment = tuple[bool, tuple[bool, ...]]


def _adorn_string(adornment: Adornment) -> str:
    time_bound, args = adornment
    return ("t" if time_bound else "u") + "".join(
        "b" if bound else "f" for bound in args)


def _adorned_name(pred: str, adornment: Adornment) -> str:
    return f"{pred}@{_adorn_string(adornment)}"


def _magic_name(pred: str, adornment: Adornment) -> str:
    return f"_m_{pred}@{_adorn_string(adornment)}"


def _atom_adornment(atom: Atom, bound_vars: set[str]) -> Adornment:
    time_bound = atom.time is not None and (
        atom.time.is_ground or atom.time.var in bound_vars)
    args = tuple(
        isinstance(arg, Const) or arg.name in bound_vars
        for arg in atom.args
    )
    return (time_bound, args)


def _magic_atom(atom: Atom, adornment: Adornment) -> Union[Atom, None]:
    """The magic atom carrying the bound arguments of ``atom``.

    Returns None when nothing is bound (the magic seed is universally
    true, so the guard is dropped and evaluation degenerates to full
    bottom-up for that predicate — standard behaviour).
    """
    time_bound, arg_bounds = adornment
    time = atom.time if time_bound else None
    args = tuple(arg for arg, bound in zip(atom.args, arg_bounds)
                 if bound)
    if time is None and not args:
        return None
    return Atom(_magic_name(atom.pred, adornment), time, args)


def _adorned_atom(atom: Atom, adornment: Adornment) -> Atom:
    return Atom(_adorned_name(atom.pred, adornment), atom.time,
                atom.args)


@dataclass
class MagicProgram:
    """The output of the magic transformation."""

    rules: list[Rule]
    seeds: list[Fact]
    query_pred: str           # adorned name answering the query
    original_pred: str

    def all_rules(self) -> list[Rule]:
        return self.rules


def magic_transform(rules: Sequence[Rule], query: Atom) -> MagicProgram:
    """Rewrite ``rules`` for goal-directed evaluation of ``query``.

    ``query`` is an atom whose ground positions (temporal term and/or
    constant data arguments) become the bound adornment; variables stay
    free and are answered.
    """
    proper = [r for r in rules if not r.is_fact]
    if any(not r.is_definite for r in proper):
        raise ClassificationError(
            "magic sets are implemented for definite rules"
        )
    idb = derived_predicates(proper)
    by_head: dict[str, list[Rule]] = {}
    for rule in proper:
        by_head.setdefault(rule.head.pred, []).append(rule)

    query_adornment = _atom_adornment(query, set())
    out_rules: list[Rule] = []
    done: set[tuple[str, Adornment]] = set()
    worklist: list[tuple[str, Adornment]] = [(query.pred,
                                              query_adornment)]

    while worklist:
        pred, adornment = worklist.pop()
        if (pred, adornment) in done:
            continue
        done.add((pred, adornment))
        for index, rule in enumerate(by_head.get(pred, [])):
            out_rules.extend(
                _rewrite_rule(rule, adornment, idb, worklist,
                              unique=f"{pred}_{index}")
            )

    # Bridge rules: a derived predicate may also have database facts
    # (the travel example seeds `plane` extensionally); copy them into
    # the adorned predicate, guarded by the magic set.
    arities: dict[str, tuple[bool, int]] = {}
    for rule in proper:
        for atom in rule.atoms():
            arities[atom.pred] = (atom.is_temporal, atom.arity)
    if query.pred not in arities:
        arities[query.pred] = (query.time is not None, query.arity)
    for pred, adornment in sorted(done):
        temporal, arity = arities[pred]
        time = TimeTerm("T", 0) if temporal else None
        args = tuple(Var(f"X{i}") for i in range(arity))
        generic = Atom(pred, time, args)
        guard = _magic_atom(generic, adornment)
        body = (generic,) if guard is None else (guard, generic)
        out_rules.append(Rule(_adorned_atom(generic, adornment), body))

    seed_atom = _magic_atom(query, query_adornment)
    seeds: list[Fact] = []
    if seed_atom is not None:
        seeds.append(seed_atom.to_fact())
    return MagicProgram(
        rules=out_rules,
        seeds=seeds,
        query_pred=_adorned_name(query.pred, query_adornment),
        original_pred=query.pred,
    )


def _rewrite_rule(rule: Rule, adornment: Adornment, idb: set[str],
                  worklist: list, unique: str) -> list[Rule]:
    """Adorned + magic rules for one original rule under one adornment."""
    head = rule.head
    time_bound, arg_bounds = adornment

    bound_vars: set[str] = set()
    if time_bound and head.time is not None and head.time.var is not None:
        bound_vars.add(head.time.var)
    for arg, bound in zip(head.args, arg_bounds):
        if bound and isinstance(arg, Var):
            bound_vars.add(arg.name)

    magic_head = _magic_atom(head, adornment)
    prefix: list[Atom] = [] if magic_head is None else [magic_head]
    new_body: list[Atom] = list(prefix)
    produced: list[Rule] = []
    # Rewritten rules inherit the original rule's span so per-rule
    # profiling and diagnostics still cite the source line.
    span = rule.span if rule.span is not None else rule.head.span

    for atom in rule.body:
        if atom.pred in idb:
            sub_adornment = _atom_adornment(atom, bound_vars)
            sub_magic = _magic_atom(atom, sub_adornment)
            if sub_magic is not None:
                produced.append(Rule(sub_magic, tuple(new_body),
                                     span=span))
            worklist.append((atom.pred, sub_adornment))
            new_body.append(_adorned_atom(atom, sub_adornment))
        else:
            new_body.append(atom)
        if atom.time is not None and atom.time.var is not None:
            bound_vars.add(atom.time.var)
        bound_vars.update(v.name for v in atom.data_variables())

    produced.append(Rule(_adorned_atom(head, adornment),
                         tuple(new_body), span=span))
    return produced


def magic_evaluate(rules: Sequence[Rule], database: TemporalDatabase,
                   query: Atom,
                   horizon: Union[int, None] = None,
                   stats=None, tracer=None,
                   metrics=None) -> TemporalStore:
    """Evaluate the magic-rewritten program for ``query``.

    ``horizon`` defaults to ``max(query time, database depth) + g`` —
    exact for a ground query time, because magic derivations only walk
    backwards from it and answers climb back up to it.  Queries with an
    unbound temporal term need an explicit horizon (their answer set
    may reach arbitrarily far).
    """
    from ..obs.timing import phase_timer
    with phase_timer(stats, "magic_rewrite", tracer):
        program = magic_transform(rules, query)
    if stats is not None:
        stats.engine = "magic"
        stats.extra["magic_rules"] = len(program.rules)
        stats.extra["magic_seeds"] = len(program.seeds)
    if horizon is None:
        if query.time is not None and not query.time.is_ground:
            raise ClassificationError(
                "queries with a free temporal term need an explicit "
                "horizon (their relevant region is unbounded)"
            )
        g = max((r.temporal_depth for r in rules), default=1)
        query_depth = query.time.offset if query.time is not None else 0
        horizon = max(query_depth, database.c) + g
    seeded = TemporalDatabase(database.facts())
    for seed in program.seeds:
        seeded.add_fact(seed)
    # Magic rules carry ground seeds and can be non-range-restricted in
    # the syntactic sense (a magic head with no body); evaluate without
    # the paper-level validator.
    return fixpoint(program.rules, seeded, horizon, stats=stats,
                    tracer=tracer, metrics=metrics)


def magic_ask(rules: Sequence[Rule], database: TemporalDatabase,
              goal: Union[Fact, Atom],
              stats=None, tracer=None, metrics=None) -> bool:
    """Goal-directed ground atomic query via magic sets.

    Equivalent to ``bt_evaluate(...).holds(goal)`` (property-tested) but
    only derives facts relevant to ``goal``.
    """
    if isinstance(goal, Fact):
        goal = goal.to_atom()
    if not goal.is_ground:
        raise ClassificationError("magic_ask expects a ground goal")
    store = magic_evaluate(rules, database, goal, stats=stats,
                           tracer=tracer, metrics=metrics)
    program_pred = _adorned_name(goal.pred, _atom_adornment(goal, set()))
    answer = Fact(program_pred,
                  goal.time.offset if goal.time is not None else None,
                  tuple(a.value for a in goal.args))  # type: ignore
    if answer in store:
        return True
    # The goal may be a database fact of an EDB predicate.
    return goal.to_fact() in database
