"""Relational specifications: finite representations of infinite models.

Section 3.3 of the paper: a relational specification of the least model
``L = M(Z∧D)`` is a triple ``(T, B, W)`` where

* ``T`` is a finite set of ground temporal terms (the *representatives*),
* ``B`` is a finite temporal database (the *primary database*), and
* ``W`` is a finite set of ground rewrite rules between temporal terms,

such that ``B = ⋃_{t∈T} L(t) ∪ L_nt`` and every ground temporal term
``t`` rewrites to a representative ``t0`` with ``L[t] = L[t0]``.

For TDDs, the specification computed here has the paper's canonical
shape: with minimal period ``(b, p)`` of the least model (``b`` absolute,
i.e. already accounting for the maximum database depth ``c``),

* ``T = {0, 1, ..., b+p-1}``,
* ``W = { (b+p) → b }`` — a single rewrite rule, and
* ``B`` = all model facts at representative timepoints plus ``L_nt``.

Ground atomic queries are answered by canonicalising their temporal term
through ``W`` and probing ``B`` (the even/odd worked example of the
paper); open and quantified queries are handled in
:mod:`repro.core.queries` via Proposition 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from ..lang.atoms import Atom, Fact
from ..lang.errors import EvaluationError
from ..lang.rules import Rule
from ..rewrite.system import RewriteRule, RewriteSystem
from ..temporal.bt import BTResult, bt_evaluate
from ..temporal.database import TemporalDatabase
from ..temporal.store import TemporalStore


@dataclass(frozen=True)
class RelationalSpec:
    """A relational specification ``(T, B, W)`` of a least model."""

    representatives: tuple[int, ...]
    primary: TemporalStore
    rewrites: RewriteSystem
    b: int
    p: int
    c: int
    certified: bool

    def representative_of(self, t: int) -> int:
        """The canonical form ``t0`` of the ground temporal term ``t``."""
        return self.rewrites.normalize(t)

    def holds(self, fact: Union[Fact, Atom]) -> bool:
        """Ground atomic yes/no query against the specification.

        Rewrites the query's temporal term to canonical form, then checks
        membership in the primary database ``B`` — the evaluation scheme
        of Section 3.3.
        """
        if isinstance(fact, Atom):
            fact = fact.to_fact()
        if fact.time is None:
            return fact in self.primary
        folded = self.representative_of(fact.time)
        return self.primary.contains(fact.pred, folded, fact.args)

    def state(self, t: int):
        """The state ``L[t]`` of the infinite model, via its representative."""
        return self.primary.state(self.representative_of(t))

    @property
    def size(self) -> int:
        """Specification size: |T| + |B| + |W| (Theorems 3.3 / 4.1)."""
        return (len(self.representatives) + len(self.primary)
                + len(self.rewrites.rules))

    @property
    def period(self) -> tuple[int, int]:
        """The (absolute) period ``(b, p)`` the specification encodes."""
        return (self.b, self.p)

    def facts_between(self, t0: int, t1: int):
        """Materialise the infinite model's temporal facts on [t0, t1].

        Reads each timepoint's state through its representative, so the
        range may lie arbitrarily deep.  Yields :class:`Fact` values in
        time order.
        """
        for t in range(t0, t1 + 1):
            folded = self.representative_of(t)
            for pred, args in sorted(self.primary.state(folded),
                                     key=str):
                yield Fact(pred, t, args)

    def active_domain(self) -> set[Union[str, int]]:
        """All constants occurring in the primary database.

        Quantifiers over the data sort range over this set when queries
        are evaluated on the specification (see the Appendix's proof of
        Proposition 3.1: answer constants always come from ``B``).
        """
        domain: set[Union[str, int]] = set()
        for fact in self.primary.facts():
            domain.update(fact.args)
        return domain

    def __repr__(self) -> str:
        return (f"RelationalSpec(|T|={len(self.representatives)}, "
                f"|B|={len(self.primary)}, W={self.rewrites}, "
                f"period=({self.b},{self.p}))")


def spec_from_result(result: BTResult) -> RelationalSpec:
    """Build the canonical specification from a BT evaluation result."""
    if result.period is None:
        raise EvaluationError(
            "cannot build a relational specification: BT detected no "
            "period within its window"
        )
    b, p = result.period.b, result.period.p
    if b + p - 1 > result.horizon:
        raise EvaluationError(
            f"window {result.horizon} does not cover the first period "
            f"(b={b}, p={p})"
        )
    primary = result.store.truncate(b + p - 1)
    rewrites = RewriteSystem([RewriteRule(b + p, b)])
    return RelationalSpec(
        representatives=tuple(range(b + p)),
        primary=primary,
        rewrites=rewrites,
        b=b,
        p=p,
        c=result.c,
        certified=result.period.certified,
    )


def compute_specification(rules: Sequence[Rule],
                          database: TemporalDatabase,
                          window: Union[int, None] = None,
                          range_bound: Union[int, None] = None,
                          max_window: int = 1 << 20,
                          engine: str = "seminaive",
                          stats=None, tracer=None, metrics=None,
                          provenance=None) -> RelationalSpec:
    """Compute the relational specification ``S(Z∧D)``.

    Runs algorithm BT (semi-naive, with period detection) and packages
    the result as ``(T, B, W)``.  This is the all-answers query
    processing entry point: by Theorem 4.1 it runs in time polynomial in
    the database size exactly when the specification itself is of
    polynomial size.  ``engine`` selects the window engine BT runs on
    (see :mod:`repro.engines`); the specification is the same either
    way — only the time to build it differs.

    ``stats`` / ``tracer`` / ``metrics`` / ``provenance`` are the
    standard engine instruments (all default to ``None`` and cost
    nothing absent) — the serving tier passes a fresh
    :class:`~repro.obs.metrics.MetricsRegistry` and a sampled
    :class:`~repro.obs.provenance.ProvenanceStore` here so every spec
    computation feeds the continuous per-rule profile.
    """
    result = bt_evaluate(rules, database, window=window,
                         range_bound=range_bound, max_window=max_window,
                         engine=engine, stats=stats, tracer=tracer,
                         metrics=metrics, provenance=provenance)
    return spec_from_result(result)
