"""Inflationary temporal rules (Section 5 of the paper).

A set of temporal rules ``Z`` is *inflationary* when, for every database
``D``, every ground time ``t``, every constant vector ``x`` and every
temporal predicate ``P`` derived by ``Z``::

    M(Z∧D) |= P(t, x)   implies   M(Z∧D) |= P(t+1, x)

Theorem 5.1: inflationary rulesets are polynomially periodic — the least
model has period ``(poly(n)+1, 1)`` — hence tractable.

Theorem 5.2: inflationariness is decidable for domain-independent
(range-restricted) rules.  The decision procedure implemented here is the
paper's: for each derived temporal predicate ``P_i`` of data arity
``l_i``, build the one-fact test database ``D_i = {P_i(0, ā)}`` with
pairwise-distinct fresh constants and check ``P_i(1, ā) ∈ M(Z ∧ D_i)``.
The paper's sufficiency proof maps the fresh constants onto arbitrary
ones, which requires rules without ground (constant) terms — the checker
enforces that precondition.
"""

from __future__ import annotations

from typing import Sequence, Union

from ..datalog.depgraph import derived_predicates
from ..lang.atoms import Fact
from ..lang.errors import ClassificationError
from ..lang.rules import Rule
from ..lang.terms import Const
from ..temporal.bt import BTResult, bt_evaluate
from ..temporal.database import TemporalDatabase


def _temporal_arities(rules: Sequence[Rule]) -> dict[str, int]:
    """Data arity of each temporal predicate occurring in the rules."""
    arities: dict[str, int] = {}
    for rule in rules:
        for atom in rule.atoms():
            if atom.time is not None:
                arities[atom.pred] = atom.arity
    return arities


def _has_data_constants(rules: Sequence[Rule]) -> bool:
    return any(
        isinstance(arg, Const)
        for rule in rules
        if not rule.is_fact
        for atom in rule.atoms()
        for arg in atom.args
    )


def derived_temporal_predicates(rules: Sequence[Rule]) -> dict[str, int]:
    """Derived temporal predicates of a ruleset, with data arities."""
    arities = _temporal_arities(rules)
    derived = derived_predicates(r for r in rules if not r.is_fact)
    return {pred: arities[pred] for pred in sorted(derived)
            if pred in arities}


def inflationary_witness(rules: Sequence[Rule]
                         ) -> Union[tuple[str, Fact], None]:
    """The first derived temporal predicate failing the Theorem 5.2 test.

    Returns ``(predicate, missing_fact)`` where ``missing_fact`` is the
    ``P(1, ā)`` atom that is *not* implied by ``Z ∧ {P(0, ā)}``, or None
    when the ruleset is inflationary.
    """
    proper = [r for r in rules if not r.is_fact]
    if any(not r.is_definite for r in proper):
        raise ClassificationError(
            "the Theorem 5.2 decision procedure is proved for definite "
            "(Horn) rules; this ruleset uses the stratified-negation "
            "extension"
        )
    if _has_data_constants(proper):
        raise ClassificationError(
            "the Theorem 5.2 decision procedure requires rules without "
            "ground (constant) terms, as the paper assumes in Section 3.1"
        )
    for pred, arity in derived_temporal_predicates(proper).items():
        constants = tuple(f"_infl_{i}" for i in range(arity))
        test_db = TemporalDatabase([Fact(pred, 0, constants)])
        result = bt_evaluate(proper, test_db)
        target = Fact(pred, 1, constants)
        if not result.holds(target):
            return (pred, target)
    return None


def is_inflationary(rules: Sequence[Rule]) -> bool:
    """Decide whether a ruleset is inflationary (Theorem 5.2)."""
    return inflationary_witness(rules) is None


def is_inflationary_on(rules: Sequence[Rule], database: TemporalDatabase,
                       result: Union[BTResult, None] = None) -> bool:
    """Semantic spot-check of the inflationary property on one database.

    Verifies ``P(t,x) ⇒ P(t+1,x)`` for every derived temporal predicate
    over the computed window (minus its last timepoint).  Used by the
    property tests to confront the Theorem 5.2 decision procedure with
    the semantic definition on random databases.
    """
    proper = [r for r in rules if not r.is_fact]
    derived = set(derived_temporal_predicates(proper))
    if result is None:
        result = bt_evaluate(proper, database)
    for fact in result.store.temporal_facts():
        if fact.pred not in derived:
            continue
        if fact.time >= result.horizon:
            continue
        if not result.holds(fact.shifted(1)):
            return False
    return True


def inflationary_period_bound(rules: Sequence[Rule],
                              database: TemporalDatabase) -> tuple[int, int]:
    """The Theorem 5.1 period bound ``(P1(n)+1, 1)`` for a database.

    ``P1(n)`` bounds the size of any state: at most
    ``Σ_P n_active^{arity(P)}`` over the temporal predicates, where
    ``n_active`` counts the constants in the database.  The returned
    ``b`` is ``c + P1(n) + 2`` (the paper's threshold is relative to the
    database horizon ``c``); the period length is always 1.
    """
    constants: set = set()
    for fact in database.facts():
        constants.update(fact.args)
    n_active = max(len(constants), 1)
    state_bound = sum(
        n_active ** arity
        for arity in _temporal_arities(rules).values()
    )
    return (database.c + state_bound + 2, 1)
