"""Finite representations of (possibly infinite) query answer sets.

An open temporal query may have infinitely many answers — the paper's
travel example asks for *all* days a plane leaves to Hunter.  Following
Section 3.3, an answer is represented finitely as

* a finite set of *canonical substitutions*, whose temporal values are
  representative terms, plus
* the rewrite system ``W`` of the specification, which maps every ground
  temporal term to its representative.

Each canonical substitution with a temporal value ``r ≥ b`` stands for
the infinite family ``r, r+p, r+2p, ...`` (the preimages of ``r`` under
``W``); :meth:`AnswerSet.expand` enumerates the family up to a bound and
:meth:`AnswerSet.contains` decides membership of an arbitrary concrete
substitution, both in constant time per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product, takewhile
from typing import Iterator, Mapping, Union

from ..rewrite.system import RewriteSystem

Value = Union[str, int]
Substitution = dict[str, Value]

#: Variable sorts in query answers.
TIME = "time"
DATA = "data"


@dataclass(frozen=True)
class AnswerSet:
    """All answers to an open query, represented finitely.

    ``variables`` lists the query's free variables with their sorts, in
    a fixed order; ``substitutions`` holds the canonical answers as
    tuples of values aligned with ``variables``.
    """

    variables: tuple[tuple[str, str], ...]
    substitutions: frozenset[tuple[Value, ...]]
    rewrites: RewriteSystem
    b: int
    p: int

    def __len__(self) -> int:
        return len(self.substitutions)

    def __bool__(self) -> bool:
        return bool(self.substitutions)

    def __iter__(self) -> Iterator[Substitution]:
        names = [name for name, _ in self.variables]
        for values in sorted(self.substitutions, key=str):
            yield dict(zip(names, values))

    def _canonicalize(self, assignment: Mapping[str, Value]
                      ) -> Union[tuple[Value, ...], None]:
        values: list[Value] = []
        for name, sort in self.variables:
            if name not in assignment:
                return None
            value = assignment[name]
            if sort == TIME:
                if not isinstance(value, int) or value < 0:
                    return None
                value = self.rewrites.normalize(value)
            values.append(value)
        return tuple(values)

    def contains(self, assignment: Mapping[str, Value]) -> bool:
        """Is the concrete assignment an answer to the original query?

        Temporal values are canonicalised through ``W`` first, so this
        decides membership in the *infinite* answer set.
        """
        canonical = self._canonicalize(assignment)
        return canonical is not None and canonical in self.substitutions

    @property
    def is_infinite(self) -> bool:
        """True when the represented answer set is infinite.

        A canonical temporal value ``r ≥ b`` has infinitely many
        preimages under the single rewrite rule ``(b+p) → b``.
        """
        time_positions = [i for i, (_, sort) in enumerate(self.variables)
                          if sort == TIME]
        return any(
            values[pos] >= self.b  # type: ignore[operator]
            for values in self.substitutions
            for pos in time_positions
        )

    def expand(self, time_bound: int) -> Iterator[Substitution]:
        """Enumerate concrete answers with temporal values ≤ time_bound.

        Each canonical substitution expands through the preimages of its
        temporal values; data values pass through unchanged.
        """
        names = [name for name, _ in self.variables]
        sorts = [sort for _, sort in self.variables]
        for values in sorted(self.substitutions, key=str):
            per_position: list[list[Value]] = []
            for sort, value in zip(sorts, values):
                if sort == TIME:
                    assert isinstance(value, int)
                    expansions = list(takewhile(
                        lambda t: t <= time_bound,
                        self.rewrites.preimages(value),
                    )) if value <= time_bound else []
                    per_position.append(expansions)
                else:
                    per_position.append([value])
            for combo in product(*per_position):
                yield dict(zip(names, combo))

    def as_upset(self, variable: Union[str, None] = None):
        """The answer set as an ultimately periodic set of timepoints.

        Only meaningful for queries with exactly one free variable of
        the temporal sort (``variable`` may name it explicitly when
        data variables are also present — the returned set is then the
        projection onto that variable).  Returns a
        :class:`repro.temporal.UPSet`: the [7]-style infinite object
        denoting every concrete temporal answer.
        """
        from ..temporal.upsets import UPSet

        time_names = [name for name, sort in self.variables
                      if sort == TIME]
        if variable is None:
            if len(time_names) != 1:
                raise ValueError(
                    f"query has temporal variables {time_names}; name "
                    "one explicitly"
                )
            variable = time_names[0]
        if variable not in time_names:
            raise ValueError(f"{variable} is not a temporal variable")
        position = [name for name, _ in self.variables].index(variable)
        canonical = {values[position] for values in self.substitutions}
        prefix = [t for t in canonical if t < self.b]
        residues = [(t - self.b) % self.p
                    for t in canonical if t >= self.b]  # type: ignore
        out = UPSet.finite(prefix)
        if residues:
            out = out.union(UPSet.periodic(self.b, self.p, residues))
        return out

    def __repr__(self) -> str:
        names = ", ".join(f"{n}:{s}" for n, s in self.variables)
        return (f"AnswerSet([{names}], {len(self.substitutions)} canonical "
                f"answers, W={self.rewrites}, "
                f"infinite={self.is_infinite})")
