"""First-order temporal queries and their evaluation.

A temporal query (Section 3.1) is a first-order formula without equality
over temporal and non-temporal atoms, with two-sorted quantifiers: one
sort ranges over ground temporal terms, the other over non-temporal
constants.  Proposition 3.1 proves every such query *invariant with
respect to relational specifications*: it can be evaluated on the finite
primary database ``B``, with

* ground temporal terms in atoms canonicalised through ``W``,
* temporal quantifiers ranging over the representative terms ``T``, and
* data quantifiers ranging over the active domain of ``B``,
* negation under the Closed World Assumption applied to ``B``.

This module provides the query AST, a textual query parser
(``"exists T: plane(T, hunter) and not winter(T)"``), spec-based
evaluation, answer-set computation for open queries, and a direct
model-prefix evaluator used to test the invariance property.

As an extension beyond the paper's equality-free language, the AST also
offers :class:`TimeEq` — the temporal-equality query of Section 8, which
the paper shows is *not* invariant.  Evaluating it on a specification
reproduces the paper's counterexample (two distinct timepoints with the
same representative compare equal); the docstring of :class:`TimeEq` and
experiment E6 document this known unsoundness.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Mapping, Sequence, Union

from ..lang.atoms import Atom, Fact
from ..lang.errors import ParseError, SortError
from ..lang.parse import Token, is_variable_name, tokenize
from ..lang.terms import Const, TimeTerm, Var
from ..temporal.bt import BTResult
from .answers import DATA, TIME, AnswerSet, Value
from .spec import RelationalSpec


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

class Query:
    """Base class of query formulas."""

    def __and__(self, other: "Query") -> "And":
        return And((self, other))

    def __or__(self, other: "Query") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class AtomQ(Query):
    """An atomic query: a temporal or non-temporal atom."""

    atom: Atom

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class Not(Query):
    """Negation, evaluated under the Closed World Assumption."""

    inner: Query

    def __str__(self) -> str:
        return f"not ({self.inner})"


@dataclass(frozen=True)
class And(Query):
    parts: tuple[Query, ...]

    def __str__(self) -> str:
        return " and ".join(f"({p})" for p in self.parts)


@dataclass(frozen=True)
class Or(Query):
    parts: tuple[Query, ...]

    def __str__(self) -> str:
        return " or ".join(f"({p})" for p in self.parts)


@dataclass(frozen=True)
class Implies(Query):
    """``antecedent -> consequent``, sugar for ``not a or c``."""

    antecedent: Query
    consequent: Query

    def __str__(self) -> str:
        return f"({self.antecedent}) implies ({self.consequent})"


@dataclass(frozen=True)
class Exists(Query):
    """Existential quantifier; ``sort`` is ``"time"`` or ``"data"``."""

    var: str
    sort: str
    inner: Query

    def __str__(self) -> str:
        return f"exists {self.var}: ({self.inner})"


@dataclass(frozen=True)
class Forall(Query):
    """Universal quantifier; ``sort`` is ``"time"`` or ``"data"``."""

    var: str
    sort: str
    inner: Query

    def __str__(self) -> str:
        return f"forall {self.var}: ({self.inner})"


@dataclass(frozen=True)
class TimeEq(Query):
    """Equality of temporal terms — the Section 8 counterexample.

    NOT part of the paper's (equality-free) query language and NOT
    invariant w.r.t. relational specifications: on a specification, two
    different timepoints with the same representative compare equal even
    though they differ in the infinite model.  Provided so the paper's
    counterexample is runnable; use with direct model evaluation for
    sound answers.
    """

    left: TimeTerm
    right: TimeTerm

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class DataEq(Query):
    """Equality of data terms (safe: data constants are never rewritten)."""

    left: Union[Const, Var]
    right: Union[Const, Var]

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


# ---------------------------------------------------------------------------
# Free variables and sort inference
# ---------------------------------------------------------------------------

def _merge_sort(sorts: dict[str, str], name: str, sort: str) -> None:
    known = sorts.get(name)
    if known is None:
        sorts[name] = sort
    elif known != sort:
        raise SortError(
            f"variable {name} used both as {known} and as {sort}"
        )


def free_variables(query: Query,
                   bound: frozenset[str] = frozenset()) -> dict[str, str]:
    """Free variables of a query with inferred sorts (name -> sort)."""
    sorts: dict[str, str] = {}

    def walk(q: Query, bound: frozenset[str]) -> None:
        if isinstance(q, AtomQ):
            atom = q.atom
            if atom.time is not None and atom.time.var is not None:
                if atom.time.var not in bound:
                    _merge_sort(sorts, atom.time.var, TIME)
            for arg in atom.args:
                if isinstance(arg, Var) and arg.name not in bound:
                    _merge_sort(sorts, arg.name, DATA)
        elif isinstance(q, Not):
            walk(q.inner, bound)
        elif isinstance(q, (And, Or)):
            for part in q.parts:
                walk(part, bound)
        elif isinstance(q, Implies):
            walk(q.antecedent, bound)
            walk(q.consequent, bound)
        elif isinstance(q, (Exists, Forall)):
            walk(q.inner, bound | {q.var})
        elif isinstance(q, TimeEq):
            for side in (q.left, q.right):
                if side.var is not None and side.var not in bound:
                    _merge_sort(sorts, side.var, TIME)
        elif isinstance(q, DataEq):
            for side in (q.left, q.right):
                if isinstance(side, Var) and side.name not in bound:
                    _merge_sort(sorts, side.name, DATA)
        else:
            raise TypeError(f"unknown query node {type(q).__name__}")

    walk(query, bound)
    return sorts


def quantifier_sort(query: Union[Exists, Forall]) -> str:
    """Infer a quantifier's sort from its body when marked ``"auto"``."""
    inner_sorts = free_variables(query.inner)
    return inner_sorts.get(query.var, DATA)


# ---------------------------------------------------------------------------
# Evaluation on a relational specification (Proposition 3.1)
# ---------------------------------------------------------------------------

def _ground_time(tt: TimeTerm, binding: Mapping[str, Value]) -> int:
    if tt.var is None:
        return tt.offset
    value = binding[tt.var]
    assert isinstance(value, int)
    return value + tt.offset


def _atom_fact(atom: Atom, binding: Mapping[str, Value]) -> Fact:
    time = None
    if atom.time is not None:
        time = _ground_time(atom.time, binding)
    args = tuple(
        binding[a.name] if isinstance(a, Var) else a.value
        for a in atom.args
    )
    return Fact(atom.pred, time, args)


class _SpecDomain:
    """Quantifier domains + atom oracle backed by a specification."""

    def __init__(self, spec: RelationalSpec):
        self.spec = spec
        self.time_domain: Sequence[int] = spec.representatives
        self.data_domain: Sequence[Value] = sorted(
            spec.active_domain(), key=str
        )

    def holds(self, fact: Fact) -> bool:
        return self.spec.holds(fact)

    def times_equal(self, s: int, t: int) -> bool:
        # Representative-level comparison: sound only when both sides are
        # representatives — the documented Section 8 unsoundness.
        return (self.spec.representative_of(s)
                == self.spec.representative_of(t))


class _ModelDomain:
    """Quantifier domains + atom oracle backed by a model prefix.

    Temporal quantifiers range over ``[0, time_bound]`` — an
    approximation of the infinite domain used to *test* invariance
    (Proposition 3.1 guarantees agreement when the bound covers ``b+p``).
    """

    def __init__(self, result: BTResult, time_bound: Union[int, None] = None):
        self.result = result
        bound = time_bound if time_bound is not None else result.horizon
        self.time_domain = range(bound + 1)
        domain: set[Value] = set()
        for fact in result.store.facts():
            domain.update(fact.args)
        self.data_domain = sorted(domain, key=str)

    def holds(self, fact: Fact) -> bool:
        return self.result.holds(fact)

    def times_equal(self, s: int, t: int) -> bool:
        return s == t


def _evaluate(query: Query, domain, binding: dict[str, Value]) -> bool:
    if isinstance(query, AtomQ):
        return domain.holds(_atom_fact(query.atom, binding))
    if isinstance(query, Not):
        return not _evaluate(query.inner, domain, binding)
    if isinstance(query, And):
        return all(_evaluate(p, domain, binding) for p in query.parts)
    if isinstance(query, Or):
        return any(_evaluate(p, domain, binding) for p in query.parts)
    if isinstance(query, Implies):
        return (not _evaluate(query.antecedent, domain, binding)
                or _evaluate(query.consequent, domain, binding))
    if isinstance(query, (Exists, Forall)):
        sort = query.sort
        if sort == "auto":
            sort = quantifier_sort(query)
        values = (domain.time_domain if sort == TIME
                  else domain.data_domain)
        results = (
            _evaluate(query.inner, domain, {**binding, query.var: v})
            for v in values
        )
        return any(results) if isinstance(query, Exists) else all(results)
    if isinstance(query, TimeEq):
        return domain.times_equal(_ground_time(query.left, binding),
                                  _ground_time(query.right, binding))
    if isinstance(query, DataEq):
        def value(side):
            return binding[side.name] if isinstance(side, Var) else side.value
        return value(query.left) == value(query.right)
    raise TypeError(f"unknown query node {type(query).__name__}")


def evaluate(query: Query, spec: RelationalSpec,
             binding: Union[Mapping[str, Value], None] = None) -> bool:
    """Evaluate a closed query on a relational specification.

    By Proposition 3.1 the result equals evaluation on the infinite least
    model, for every equality-free temporal query.
    """
    sorts = free_variables(query)
    given = dict(binding) if binding else {}
    missing = set(sorts) - set(given)
    if missing:
        raise SortError(
            f"query has unbound free variables {sorted(missing)}; "
            "use answers() for open queries"
        )
    return _evaluate(query, _SpecDomain(spec), given)


def evaluate_on_model(query: Query, result: BTResult,
                      binding: Union[Mapping[str, Value], None] = None,
                      time_bound: Union[int, None] = None) -> bool:
    """Evaluate a closed query directly on a computed model prefix.

    Temporal quantifiers range over ``[0, time_bound]`` (default: the
    BT window); this is the reference semantics that invariance tests
    compare spec-based evaluation against.
    """
    given = dict(binding) if binding else {}
    return _evaluate(query, _ModelDomain(result, time_bound), given)


def answers_on_model(query: Query, result: BTResult,
                     time_bound: Union[int, None] = None
                     ) -> list[dict[str, Value]]:
    """All answers to an open query by direct model-prefix evaluation.

    The reference semantics for open queries: free temporal variables
    range over ``[0, time_bound]`` (default: the BT window) and data
    variables over the model's active domain, with every candidate
    binding checked by :func:`evaluate_on_model`.  Used to test the
    invariance of spec-based :func:`answers` and as the degraded
    (windowed) fallback of the query service.  Returns concrete
    substitutions in a deterministic order.
    """
    sorts = free_variables(query)
    names = sorted(sorts)
    domain = _ModelDomain(result, time_bound)
    axes = [
        domain.time_domain if sorts[name] == TIME else domain.data_domain
        for name in names
    ]
    found: list[dict[str, Value]] = []
    for values in product(*axes):
        binding = dict(zip(names, values))
        if _evaluate(query, domain, binding):
            found.append(binding)
    found.sort(key=lambda sub: tuple(str(sub[name]) for name in names))
    return found


def max_ground_time(query: Query) -> int:
    """The largest ground timepoint mentioned anywhere in a query.

    Sizes the window of degraded (spec-less) evaluation: a windowed
    model whose horizon reaches every ground timepoint answers the
    query's atomic probes without folding.  Returns 0 when no ground
    temporal term occurs.
    """
    best = 0

    def walk(q: Query) -> None:
        nonlocal best
        if isinstance(q, AtomQ):
            tt = q.atom.time
            if tt is not None and tt.var is None:
                best = max(best, tt.offset)
        elif isinstance(q, Not):
            walk(q.inner)
        elif isinstance(q, (And, Or)):
            for part in q.parts:
                walk(part)
        elif isinstance(q, Implies):
            walk(q.antecedent)
            walk(q.consequent)
        elif isinstance(q, (Exists, Forall)):
            walk(q.inner)
        elif isinstance(q, TimeEq):
            for side in (q.left, q.right):
                if side.var is None:
                    best = max(best, side.offset)

    walk(query)
    return best


def _conjunctive_core(query: Query) -> Union[
        tuple[list[Atom], list[Atom]], None]:
    """Decompose into (positive atoms, negated atoms), or None.

    Recognised shape: an optional prefix of existential quantifiers
    over a conjunction of atoms and negated atoms (including the single-
    atom cases).  Offsets on temporal variables and negated variables
    not bound positively disqualify the query from the join fast path.
    """
    while isinstance(query, Exists):
        query = query.inner
    parts: list[Query]
    if isinstance(query, And):
        parts = list(query.parts)
    else:
        parts = [query]
    positive: list[Atom] = []
    negative: list[Atom] = []
    for part in parts:
        if isinstance(part, AtomQ):
            positive.append(part.atom)
        elif isinstance(part, Not) and isinstance(part.inner, AtomQ):
            negative.append(part.inner.atom)
        else:
            return None
    for atom in positive + negative:
        if atom.time is not None and atom.time.var is not None \
                and atom.time.offset != 0:
            return None
    positive_vars = {v.name for a in positive for v in a.data_variables()}
    positive_vars.update(
        a.time.var for a in positive
        if a.time is not None and a.time.var is not None)
    for atom in negative:
        vars_needed = {v.name for v in atom.data_variables()}
        if atom.time is not None and atom.time.var is not None:
            vars_needed.add(atom.time.var)
        if not vars_needed <= positive_vars:
            return None
    return positive, negative


def _canonical_atom(atom: Atom, spec: RelationalSpec) -> Atom:
    """Canonicalise a ground temporal argument through ``W``."""
    if atom.time is not None and atom.time.var is None:
        folded = spec.representative_of(atom.time.offset)
        if folded != atom.time.offset:
            return Atom(atom.pred, TimeTerm(None, folded), atom.args)
    return atom


def _join_answers(positive: Sequence[Atom], negative: Sequence[Atom],
                  names: Sequence[str],
                  spec: RelationalSpec) -> set[tuple[Value, ...]]:
    from ..datalog.engine import plan_order
    from ..temporal.operator import temporal_join

    atoms = [_canonical_atom(a, spec) for a in positive]
    negs = [_canonical_atom(a, spec) for a in negative]
    order = plan_order(atoms)
    stores = [spec.primary] * len(order)
    found: set[tuple[Value, ...]] = set()
    for binding in temporal_join(atoms, order, stores):
        if any(_atom_holds_negated(a, binding, spec) for a in negs):
            continue
        found.add(tuple(binding[name] for name in names))
    return found


def _atom_holds_negated(atom: Atom, binding, spec: RelationalSpec) -> bool:
    fact = _atom_fact(atom, binding)
    return spec.holds(fact)


def answers(query: Query, spec: RelationalSpec,
            method: str = "auto") -> AnswerSet:
    """All answers to an open query, as a finite :class:`AnswerSet`.

    Free temporal variables range over the representatives ``T`` and
    data variables over the active domain of ``B``; the rewrite system
    of the specification travels with the result so that the finite set
    denotes the full infinite answer set (Section 3.3).

    ``method`` selects the evaluation strategy: ``"enumerate"`` walks
    the cartesian product of the quantifier domains (works for every
    query; exponential in the number of free variables), ``"join"``
    computes conjunctive queries with the engine's join machinery
    (linear in the matching tuples; raises for unsupported shapes), and
    ``"auto"`` (default) joins when possible and falls back.
    """
    sorts = free_variables(query)
    names = sorted(sorts)
    variables = tuple((name, sorts[name]) for name in names)

    core = None
    if method in ("auto", "join"):
        core = _conjunctive_core(query)
        if core is None and method == "join":
            raise SortError(
                "the join strategy needs a conjunction of (possibly "
                "negated) atoms with offset-free temporal variables"
            )
    if core is not None:
        positive, negative = core
        found = _join_answers(positive, negative, names, spec)
        return AnswerSet(variables=variables,
                         substitutions=frozenset(found),
                         rewrites=spec.rewrites, b=spec.b, p=spec.p)

    domain = _SpecDomain(spec)
    axes = [
        domain.time_domain if sorts[name] == TIME else domain.data_domain
        for name in names
    ]
    found = set()
    for values in product(*axes):
        binding = dict(zip(names, values))
        if _evaluate(query, domain, binding):
            found.add(tuple(values))
    return AnswerSet(
        variables=variables,
        substitutions=frozenset(found),
        rewrites=spec.rewrites,
        b=spec.b,
        p=spec.p,
    )


# ---------------------------------------------------------------------------
# Query parser
# ---------------------------------------------------------------------------

_KEYWORDS = {"exists", "forall", "not", "and", "or", "implies"}


class _QueryParser:
    """Recursive-descent parser for the textual query syntax.

    Grammar (loosest binding first)::

        query   := ('exists'|'forall') Var (',' Var)* ':' query | implies
        implies := or ('implies' or)*        (right associative)
        or      := and ('or' and)*
        and     := unary ('and' unary)*
        unary   := 'not' unary | '(' query ')' | atom | term '=' term

    Quantifier sorts are inferred from variable use (``"auto"`` until
    the first evaluation resolves them).
    """

    def __init__(self, tokens: list[Token], temporal_preds: frozenset[str]):
        self._tokens = tokens
        self._pos = 0
        self._temporal = temporal_preds

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _expect_symbol(self, text: str) -> Token:
        tok = self._next()
        if tok.kind != "symbol" or tok.text != text:
            raise ParseError(f"expected {text!r}, got {tok.text!r}",
                             tok.line, tok.column)
        return tok

    def parse(self) -> Query:
        query = self._query()
        tok = self._peek()
        if tok.kind != "eof":
            raise ParseError(f"unexpected trailing input {tok.text!r}",
                             tok.line, tok.column)
        return query

    def _query(self) -> Query:
        tok = self._peek()
        if tok.kind == "ident" and tok.text in ("exists", "forall"):
            self._next()
            names = [self._variable()]
            while self._peek().kind == "symbol" and self._peek().text == ",":
                self._next()
                names.append(self._variable())
            self._expect_symbol(":")
            inner = self._query()
            for name in reversed(names):
                cls = Exists if tok.text == "exists" else Forall
                inner = cls(name, "auto", inner)
            return inner
        return self._implies()

    def _variable(self) -> str:
        tok = self._next()
        if tok.kind != "ident" or not is_variable_name(tok.text):
            raise ParseError(f"expected a variable, got {tok.text!r}",
                             tok.line, tok.column)
        return tok.text

    def _implies(self) -> Query:
        left = self._or()
        tok = self._peek()
        if tok.kind == "ident" and tok.text == "implies":
            self._next()
            return Implies(left, self._implies())
        return left

    def _or(self) -> Query:
        parts = [self._and()]
        while (self._peek().kind == "ident"
               and self._peek().text == "or"):
            self._next()
            parts.append(self._and())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def _and(self) -> Query:
        parts = [self._unary()]
        while (self._peek().kind == "ident"
               and self._peek().text == "and"):
            self._next()
            parts.append(self._unary())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def _unary(self) -> Query:
        tok = self._peek()
        if tok.kind == "ident" and tok.text in ("exists", "forall"):
            # A quantifier inside a connective scopes greedily to the
            # right: "a and exists T: b and c" == "a and (exists T: (b
            # and c))"; parenthesise to narrow it.
            return self._query()
        if tok.kind == "ident" and tok.text == "not":
            self._next()
            return Not(self._unary())
        if tok.kind == "symbol" and tok.text == "(":
            self._next()
            inner = self._query()
            self._expect_symbol(")")
            return inner
        if tok.kind in ("int", "string") or (
                tok.kind == "ident" and tok.text not in _KEYWORDS):
            return self._atom_or_equality()
        raise ParseError(f"unexpected token {tok.text!r}",
                         tok.line, tok.column)

    def _term(self):
        """Parse a term: int, Var(+k), or constant.  Returns a tagged
        tuple ('time', TimeTerm) / ('data', Const|Var) / ('name', str)
        where 'name' is ambiguous until position is known."""
        tok = self._next()
        if tok.kind == "int":
            return ("int", int(tok.text))
        if tok.kind == "string":
            return ("data", Const(tok.text))
        if tok.kind != "ident":
            raise ParseError(f"expected a term, got {tok.text!r}",
                             tok.line, tok.column)
        if self._peek().kind == "symbol" and self._peek().text == "+":
            self._next()
            k = self._next()
            if k.kind != "int":
                raise ParseError(f"expected an offset, got {k.text!r}",
                                 k.line, k.column)
            if not is_variable_name(tok.text):
                raise ParseError(
                    f"{tok.text}+{k.text}: offsets apply to variables",
                    tok.line, tok.column)
            return ("time", TimeTerm(tok.text, int(k.text)))
        return ("name", tok.text)

    def _to_time(self, tagged, where: Token) -> TimeTerm:
        kind, value = tagged
        if kind == "time":
            return value
        if kind == "int":
            return TimeTerm(None, value)
        if kind == "name" and is_variable_name(value):
            return TimeTerm(value, 0)
        raise ParseError(
            f"expected a temporal term, got {value!r}",
            where.line, where.column)

    def _to_data(self, tagged, where: Token):
        kind, value = tagged
        if kind == "data":
            return value
        if kind == "int":
            return Const(value)
        if kind == "name":
            return Var(value) if is_variable_name(value) else Const(value)
        raise ParseError(
            f"temporal term {value} used in a data position",
            where.line, where.column)

    def _atom_or_equality(self) -> Query:
        start = self._peek()
        if start.kind == "ident" and self._tokens[self._pos + 1].kind == \
                "symbol" and self._tokens[self._pos + 1].text == "(":
            return self._atom()
        # term = term
        left = self._term()
        eq = self._next()
        if eq.kind != "symbol" or eq.text != "=":
            raise ParseError(f"expected '=', got {eq.text!r}",
                             eq.line, eq.column)
        right = self._term()
        time_like = (left[0] == "time" or right[0] == "time"
                     or left[0] == "int" or right[0] == "int")
        if time_like:
            return TimeEq(self._to_time(left, start),
                          self._to_time(right, start))
        return DataEq(self._to_data(left, start),
                      self._to_data(right, start))

    def _atom(self) -> Query:
        name = self._next()
        self._expect_symbol("(")
        terms = []
        positions = []
        positions.append(self._peek())
        terms.append(self._term())
        while self._peek().kind == "symbol" and self._peek().text == ",":
            self._next()
            positions.append(self._peek())
            terms.append(self._term())
        self._expect_symbol(")")
        if name.text in self._temporal:
            time = self._to_time(terms[0], positions[0])
            args = tuple(self._to_data(t, w)
                         for t, w in zip(terms[1:], positions[1:]))
            return AtomQ(Atom(name.text, time, args))
        args = tuple(self._to_data(t, w)
                     for t, w in zip(terms, positions))
        return AtomQ(Atom(name.text, None, args))


def parse_query(text: str,
                temporal_preds: frozenset[str] = frozenset()) -> Query:
    """Parse the textual query syntax.

    ``temporal_preds`` tells the parser which predicates carry a temporal
    first argument (available from ``ParsedProgram.temporal_preds`` or a
    :class:`~repro.core.tdd.TDD`).
    """
    return _QueryParser(tokenize(text), frozenset(temporal_preds)).parse()
