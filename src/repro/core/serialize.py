"""JSON (de)serialization of relational specifications.

A specification is the reusable product of all-answers query processing
(Theorem 4.1): computing it costs a full BT run, while answering queries
against it is cheap.  Persisting specs lets that cost be paid once per
database version — the workflow benchmark E6 motivates.

The format is plain JSON: representatives, the period data, the rewrite
rules, and the primary database's facts.  Constant values keep their
Python types (str or int); tuples become lists and are restored.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..lang.atoms import Fact
from ..rewrite.system import RewriteRule, RewriteSystem
from ..temporal.store import TemporalStore
from .spec import RelationalSpec

FORMAT_VERSION = 1


def spec_to_dict(spec: RelationalSpec) -> dict:
    """A JSON-serializable dictionary for a specification."""
    return {
        "format": FORMAT_VERSION,
        "b": spec.b,
        "p": spec.p,
        "c": spec.c,
        "certified": spec.certified,
        "representatives": list(spec.representatives),
        "rewrites": [[rule.lhs, rule.rhs]
                     for rule in spec.rewrites.rules],
        "facts": [
            [fact.pred, fact.time, list(fact.args)]
            for fact in sorted(
                spec.primary.facts(),
                key=lambda f: (f.pred, f.time if f.time is not None
                               else -1, tuple(map(str, f.args))))
        ],
    }


def spec_from_dict(data: dict) -> RelationalSpec:
    """Rebuild a specification from :func:`spec_to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported specification format {data.get('format')!r}"
        )
    primary = TemporalStore(
        Fact(pred, time, tuple(args))
        for pred, time, args in data["facts"]
    )
    return RelationalSpec(
        representatives=tuple(data["representatives"]),
        primary=primary,
        rewrites=RewriteSystem([RewriteRule(lhs, rhs)
                                for lhs, rhs in data["rewrites"]]),
        b=data["b"],
        p=data["p"],
        c=data["c"],
        certified=data["certified"],
    )


def save_spec(spec: RelationalSpec, path: Union[str, Path]) -> None:
    """Write a specification to a JSON file."""
    Path(path).write_text(json.dumps(spec_to_dict(spec), indent=1))


def load_spec(path: Union[str, Path]) -> RelationalSpec:
    """Read a specification back from :func:`save_spec` output."""
    return spec_from_dict(json.loads(Path(path).read_text()))
