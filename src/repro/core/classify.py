"""Syntactic rule classes of Section 6: time-only, data-only,
multi-separable, separable — and the Theorem 6.3 one-period construction.

Definitions from the paper:

* a temporal rule is **time-only** if it is recursive and the
  non-temporal arguments of all occurrences of the recursive predicate
  are identical;
* a time-only rule is **reduced** if every non-temporal argument of its
  body also appears in its head;
* a temporal rule is **data-only** if it is recursive and the temporal
  argument of all its temporal literals is identical;
* a ruleset is **multi-separable** if it is mutual-recursion-free and all
  the rules defining a recursive predicate are either time-only or
  data-only.  Since time-only/data-only are properties of *recursive*
  rules, we read this as constraining the recursive rules of each
  recursive predicate — uniformly time-only or uniformly data-only per
  predicate (what the level-by-level induction of Theorem 6.5 uses) —
  while non-recursive rules (bases, inter-stratum links) are
  unconstrained, as the induction across levels requires;
* **separable** rulesets ([7]) additionally restrict recursive time-only
  rules to at most one temporal literal in the body.  The paper's travel
  example is multi-separable but not separable.

Theorem 6.5: multi-separable ⇒ 1-periodic ⇒ tractable.  Theorem 6.3's
constructive proof (skeleton databases) is implemented in
:func:`one_period_bound` for predicates of data arity ≤ 1, which covers
both of the paper's running examples; higher arities raise
:class:`ClassificationError` with an explanation (the construction is
doubly exponential in the predicate count even at arity 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations, product
from typing import Sequence

from ..datalog.depgraph import (is_mutual_recursion_free,
                                recursive_predicates)
from ..lang.atoms import Atom, Fact
from ..lang.errors import ClassificationError
from ..lang.rules import Rule
from ..lang.terms import TimeTerm, Var
from ..temporal.bt import bt_evaluate
from ..temporal.database import TemporalDatabase


# ---------------------------------------------------------------------------
# Per-rule classification
# ---------------------------------------------------------------------------

def is_recursive_rule(rule: Rule) -> bool:
    """The rule's head predicate occurs in its own body.

    For mutual-recursion-free rulesets (the context of every Section 6
    definition) this is the only form of recursion.
    """
    return any(atom.pred == rule.head.pred for atom in rule.body)


def is_time_only_rule(rule: Rule) -> bool:
    """Recursive, with identical non-temporal arguments in all
    occurrences of the recursive predicate."""
    if not is_recursive_rule(rule):
        return False
    occurrences = [rule.head] + [a for a in rule.body
                                 if a.pred == rule.head.pred]
    reference = occurrences[0].args
    return all(atom.args == reference for atom in occurrences)


def is_reduced_rule(rule: Rule) -> bool:
    """Time-only with every body data variable appearing in the head."""
    if not is_time_only_rule(rule):
        return False
    return rule.body_data_variables() <= rule.head_data_variables()


def is_data_only_rule(rule: Rule) -> bool:
    """Recursive, with the same temporal term in every temporal literal."""
    if not is_recursive_rule(rule):
        return False
    times = [atom.time for atom in rule.atoms() if atom.time is not None]
    if not times:
        return False
    return all(t == times[0] for t in times)


# ---------------------------------------------------------------------------
# Ruleset classification
# ---------------------------------------------------------------------------

@dataclass
class SeparabilityReport:
    """Detailed outcome of the multi-separability check."""

    mutual_recursion_free: bool
    #: recursive predicate -> "time-only" | "data-only" | "mixed" | "other"
    predicate_kinds: dict[str, str] = field(default_factory=dict)
    offending_rules: list[Rule] = field(default_factory=list)

    @property
    def is_multi_separable(self) -> bool:
        return (self.mutual_recursion_free
                and not self.offending_rules
                and all(kind in ("time-only", "data-only")
                        for kind in self.predicate_kinds.values()))


def classify_ruleset(rules: Sequence[Rule]) -> SeparabilityReport:
    """Classify every recursive predicate of a ruleset (Section 6)."""
    proper = [r for r in rules if not r.is_fact]
    report = SeparabilityReport(
        mutual_recursion_free=is_mutual_recursion_free(proper)
    )
    recursive = recursive_predicates(proper)
    for pred in sorted(recursive):
        defining = [r for r in proper
                    if r.head.pred == pred and is_recursive_rule(r)]
        kinds: set[str] = set()
        for rule in defining:
            if not rule.is_definite:
                # The Section 6 theorems are proved for the paper's
                # definite rules; the stratified extension is outside
                # their guarantee.
                kinds.add("other")
                report.offending_rules.append(rule)
            elif is_time_only_rule(rule):
                kinds.add("time-only")
            elif is_data_only_rule(rule):
                kinds.add("data-only")
            else:
                kinds.add("other")
                report.offending_rules.append(rule)
        if kinds == {"time-only"}:
            report.predicate_kinds[pred] = "time-only"
        elif kinds == {"data-only"}:
            report.predicate_kinds[pred] = "data-only"
        elif "other" in kinds:
            report.predicate_kinds[pred] = "other"
        else:
            report.predicate_kinds[pred] = "mixed"
    return report


def is_multi_separable(rules: Sequence[Rule]) -> bool:
    """Multi-separability check (Section 6 / Theorem 6.5)."""
    return classify_ruleset(rules).is_multi_separable


def is_separable(rules: Sequence[Rule]) -> bool:
    """Separability in the sense of [7]: multi-separable, and recursive
    time-only rules carry at most one temporal literal in the body."""
    report = classify_ruleset(rules)
    if not report.is_multi_separable:
        return False
    for rule in rules:
        if rule.is_fact or not is_time_only_rule(rule):
            continue
        temporal_literals = sum(
            1 for atom in rule.body if atom.time is not None
        )
        if temporal_literals > 1:
            return False
    return True


# ---------------------------------------------------------------------------
# Reduction to reduced form (preamble of Theorem 6.3)
# ---------------------------------------------------------------------------

def _clusters(atoms: list[Atom], head_vars: set[str]) -> list[list[Atom]]:
    """Group atoms connected through variables outside ``head_vars``."""
    parent = list(range(len(atoms)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    by_var: dict[str, list[int]] = {}
    for i, atom in enumerate(atoms):
        for var in atom.data_variables():
            if var.name not in head_vars:
                by_var.setdefault(var.name, []).append(i)
    for indices in by_var.values():
        for i in indices[1:]:
            union(indices[0], i)

    groups: dict[int, list[Atom]] = {}
    for i, atom in enumerate(atoms):
        groups.setdefault(find(i), []).append(atom)
    return list(groups.values())


def reduce_time_only_rules(rules: Sequence[Rule]) -> list[Rule]:
    """Rewrite time-only rules into reduced form.

    Body atoms carrying data variables absent from the head are folded
    into fresh auxiliary predicates projecting those variables away (one
    aux per connected cluster of such atoms), exactly the "introduction
    of additional predicates and additional non-recursive rules" the
    paper appeals to before Theorem 6.3.  The transformation preserves
    multi-separability and the least model on original predicates.
    """
    out: list[Rule] = []
    counter = 0
    existing = {atom.pred for rule in rules for atom in rule.atoms()}
    stem = "_red"
    while any(p.startswith(stem) for p in existing):
        stem += "_"
    for rule in rules:
        if rule.is_fact or not is_time_only_rule(rule) \
                or is_reduced_rule(rule):
            out.append(rule)
            continue
        head_vars = rule.head_data_variables()
        recursive_atoms = [a for a in rule.body
                           if a.pred == rule.head.pred]
        others = [a for a in rule.body if a.pred != rule.head.pred]
        new_body: list[Atom] = list(recursive_atoms)
        for cluster in _clusters(others, head_vars):
            cluster_vars = {v.name for a in cluster
                            for v in a.data_variables()}
            extra = cluster_vars - head_vars
            if not extra:
                new_body.extend(cluster)
                continue
            shared = sorted(cluster_vars & head_vars)
            tvar = rule.head.temporal_variable()
            cluster_temporal = any(a.time is not None for a in cluster)
            aux_pred = f"{stem}{counter}"
            counter += 1
            time = TimeTerm(tvar, 0) if cluster_temporal and tvar else None
            aux_atom = Atom(aux_pred, time,
                            tuple(Var(v) for v in shared))
            out.append(Rule(aux_atom, tuple(cluster), span=rule.span))
            new_body.append(aux_atom)
        out.append(Rule(rule.head, tuple(new_body), span=rule.span))
    return out


def is_reduced_time_only(rules: Sequence[Rule]) -> bool:
    """Every recursive rule in the set is reduced time-only."""
    proper = [r for r in rules if not r.is_fact]
    return all(
        is_reduced_rule(r) for r in proper if is_recursive_rule(r)
    )


# ---------------------------------------------------------------------------
# Theorem 6.3: the skeleton-database 1-period construction
# ---------------------------------------------------------------------------

def _predicate_signature(rules: Sequence[Rule]
                         ) -> tuple[list[str], list[str]]:
    """Split predicates into global bits (data arity 0) and unary bits
    (data arity 1).  Raises for data arity ≥ 2."""
    global_bits: list[str] = []
    unary_bits: list[str] = []
    seen: dict[str, tuple[bool, int]] = {}
    for rule in rules:
        for atom in rule.atoms():
            seen[atom.pred] = (atom.is_temporal, atom.arity)
    for pred in sorted(seen):
        _, arity = seen[pred]
        if arity == 0:
            global_bits.append(pred)
        elif arity == 1:
            unary_bits.append(pred)
        else:
            raise ClassificationError(
                f"one_period_bound implements the Theorem 6.3 "
                f"construction for data arity <= 1; predicate {pred} "
                f"has data arity {arity} (the general construction is "
                "over vectors of constants and doubly exponential)"
            )
    return global_bits, unary_bits


def _skeleton_databases(global_bits: list[str], unary_bits: list[str],
                        temporal: dict[str, bool],
                        max_skeletons: int):
    """Enumerate the skeleton databases of the Theorem 6.3 proof.

    A skeleton pairs (i) a truth assignment to the arity-0 predicates
    with (ii) a set of equivalence classes, each realised by one
    delegate constant whose class is the set of arity-1 predicates true
    of it at time 0.  Temporal facts are placed at timepoint 0.
    """
    n_classes = 1 << len(unary_bits)
    total = (1 << len(global_bits)) * (1 << n_classes)
    if total > max_skeletons:
        raise ClassificationError(
            f"the skeleton enumeration would need {total} databases "
            f"(> max_skeletons={max_skeletons}); reduce the predicate "
            "count or raise the cap"
        )
    class_masks = list(range(n_classes))
    for global_mask in range(1 << len(global_bits)):
        base: list[Fact] = []
        for i, pred in enumerate(global_bits):
            if global_mask >> i & 1:
                time = 0 if temporal[pred] else None
                base.append(Fact(pred, time, ()))
        for size in range(n_classes + 1):
            for chosen in combinations(class_masks, size):
                facts = list(base)
                for j, mask in enumerate(chosen):
                    constant = f"_sk{j}"
                    for i, pred in enumerate(unary_bits):
                        if mask >> i & 1:
                            time = 0 if temporal[pred] else None
                            facts.append(Fact(pred, time, (constant,)))
                yield TemporalDatabase(facts)


def one_period_bound(rules: Sequence[Rule],
                     max_skeletons: int = 4096,
                     max_window: int = 1 << 18,
                     auto_reduce: bool = True) -> tuple[int, int]:
    """A 1-period ``(b0, p0)`` of a multi-separable ruleset, via the
    Theorem 6.3 skeleton-database construction.

    The returned pair is database-independent: for every temporal
    database ``D`` (maximum temporal depth ``c``), ``(c + b0, p0)`` is a
    period of ``M(Z∧D)`` (the paper defines periods relative to the
    biggest temporal term of ``D``).  Combination across skeletons is
    ``(max bᵢ, lcm pᵢ)`` as in the proof.

    Following the proof's fine print, skeleton databases with facts at
    timepoint 0 only suffice when the rules are *normal*; semi-normal
    rules are normalized first (Section 3.1), which grows the predicate
    set by the chain predicates and can push the doubly-exponential
    skeleton count past ``max_skeletons`` — the construction is
    feasibility-bounded by design (the paper only needs it to be
    database-size-independent).  Use :func:`estimate_one_period` for
    programs beyond the cap.

    Requires a multi-separable ruleset with predicates of data arity
    ≤ 1; non-reduced time-only rules are reduced first when
    ``auto_reduce`` is set.
    """
    from ..temporal.normalize import to_normal

    proper = [r for r in rules if not r.is_fact]
    if not is_multi_separable(proper):
        raise ClassificationError(
            "one_period_bound requires a multi-separable ruleset "
            "(Theorem 6.5); run classify_ruleset for details"
        )
    if auto_reduce and not is_reduced_time_only(proper):
        proper = [r for r in reduce_time_only_rules(proper)
                  if not r.is_fact]
    normalized = [r for r in to_normal(proper) if not r.is_fact]
    global_bits, unary_bits = _predicate_signature(normalized)
    temporal = {}
    for rule in normalized:
        for atom in rule.atoms():
            temporal[atom.pred] = atom.is_temporal

    b0 = 0
    p0 = 1
    for skeleton in _skeleton_databases(global_bits, unary_bits,
                                        temporal, max_skeletons):
        result = bt_evaluate(normalized, skeleton, max_window=max_window)
        if result.period is None:
            raise ClassificationError(
                "no period found for a skeleton database — the ruleset "
                "is not 1-periodic in practice"
            )
        b0 = max(b0, result.period.b)
        p0 = math.lcm(p0, result.period.p)
    return (b0, p0)


def estimate_one_period(rules: Sequence[Rule], trials: int = 24,
                        seed: int = 0, n_constants: int = 2,
                        max_window: int = 1 << 18,
                        margin: bool = True) -> tuple[int, int]:
    """An empirical 1-period estimate from random phase-shifted databases.

    The literal Theorem 6.3 construction is doubly exponential in the
    predicate count; this estimator instead samples ``trials`` random
    databases (facts of every predicate at random phases within one
    rule-depth window, over ``n_constants`` constants), measures each
    minimal period with algorithm BT, and combines them as
    ``(max bᵢ - cᵢ, lcm pᵢ)``.

    Because any ``b' ≥ b`` starts a valid period whenever ``b`` does,
    overshooting the threshold is sound; with ``margin`` (default) the
    estimate adds ``p0 + g`` to the observed maximum to absorb the
    phase-alignment transient that databases outside the sample can
    exhibit (a plane seed can spend up to one season cycle plus one hop
    locking onto the periodic pattern).  The result remains an
    *estimate*: exact on the sampled databases, and in practice valid
    for the paper's examples — the benchmarks re-verify it against
    fresh databases with :func:`repro.temporal.verify_period`.
    """
    import random as _random

    proper = [r for r in rules if not r.is_fact]
    rng = _random.Random(seed)
    g = max((r.temporal_depth for r in proper), default=1)
    phase_span = max(2 * g, 4)
    signature: dict[str, tuple[bool, int]] = {}
    for rule in proper:
        for atom in rule.atoms():
            signature[atom.pred] = (atom.is_temporal, atom.arity)
    constants = [f"_est{i}" for i in range(n_constants)]

    b0 = 0
    p0 = 1
    for _ in range(trials):
        facts: list[Fact] = []
        for pred, (temporal, arity) in signature.items():
            for args in product(constants, repeat=arity):
                if rng.random() < 0.5:
                    continue
                time = rng.randrange(phase_span) if temporal else None
                facts.append(Fact(pred, time, tuple(args)))
        database = TemporalDatabase(facts)
        result = bt_evaluate(proper, database, max_window=max_window)
        if result.period is None:
            raise ClassificationError(
                "no period found for a sampled database"
            )
        b0 = max(b0, result.period.b - database.c)
        p0 = math.lcm(p0, result.period.p)
    if margin:
        b0 += p0 + g
    return (b0, p0)
