"""The TDD facade: one object for a whole temporal deductive database.

A temporal deductive database is a finite set of temporal rules plus a
finite temporal database (Section 3.1).  :class:`TDD` bundles both with
the full query-processing pipeline of the paper:

>>> from repro import TDD
>>> tdd = TDD.from_text('''
...     even(T+2) :- even(T).
...     even(0).
... ''')
>>> tdd.ask("even(4)")
True
>>> tdd.ask("even(3)")
False
>>> sorted(a["X"] for a in tdd.answers("even(X)").expand(10))
[0, 2, 4, 6, 8, 10]

Evaluation (algorithm BT), the relational specification, and the period
are computed lazily and cached; classification helpers surface the
tractable classes of Sections 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence, Union

from ..lang.atoms import Atom, Fact
from ..lang.rules import Rule, validate_rules
from ..lang.sorts import parse_program
from ..temporal.bt import BTResult, bt_evaluate
from ..temporal.database import TemporalDatabase
from ..temporal.periodicity import Period, forward_lookback
from .answers import AnswerSet
from .classify import (SeparabilityReport, classify_ruleset,
                       is_separable)
from .inflationary import is_inflationary
from .queries import Query, answers as query_answers, evaluate, parse_query
from .spec import RelationalSpec, spec_from_result


@dataclass
class Classification:
    """Which tractable classes of the paper a ruleset falls into.

    ``inflationary`` is None when the Theorem 5.2 decision procedure
    does not apply (rules outside the paper's assumptions: negation or
    ground terms), with the reason in ``inflationary_note``.
    """

    inflationary: Union[bool, None]
    multi_separable: bool
    separable: bool
    forward: bool
    report: SeparabilityReport
    inflationary_note: str = ""

    @property
    def provably_tractable(self) -> bool:
        """Covered by Theorem 5.1 or Theorem 6.5 ⇒ polynomial periodic."""
        return bool(self.inflationary) or self.multi_separable


class TDD:
    """A temporal deductive database ``Z ∧ D`` with cached evaluation."""

    def __init__(self, rules: Sequence[Rule],
                 database: Union[TemporalDatabase, Iterable[Fact]] = (),
                 temporal_preds: Iterable[str] = (),
                 engine: str = "seminaive"):
        from ..engines import canonical_window_engine
        validate_rules(rules)
        #: Window engine BT runs on (see :mod:`repro.engines`); the
        #: model and specification are engine-independent, so the cached
        #: result/spec need no per-engine key.
        self.engine = canonical_window_engine(engine)
        self.rules: tuple[Rule, ...] = tuple(rules)
        if isinstance(database, TemporalDatabase):
            self.database = database
        else:
            self.database = TemporalDatabase(database)
        preds = set(temporal_preds)
        for rule in self.rules:
            for atom in rule.atoms():
                if atom.time is not None:
                    preds.add(atom.pred)
        for fact in self.database.temporal_facts():
            preds.add(fact.pred)
        self.temporal_preds: frozenset[str] = frozenset(preds)
        self._result: Union[BTResult, None] = None
        self._spec: Union[RelationalSpec, None] = None
        self._provenance = None  # ProvenanceStore of the cached result

    @classmethod
    def from_text(cls, text: str, engine: str = "seminaive") -> "TDD":
        """Build a TDD from program text (rules + facts, paper syntax)."""
        program = parse_program(text)
        return cls(program.rules, program.facts,
                   temporal_preds=program.temporal_preds,
                   engine=engine)

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, stats=None, tracer=None, metrics=None,
                 provenance=None, **bt_kwargs) -> BTResult:
        """Run algorithm BT (cached when called without tuning arguments).

        ``stats``/``tracer``/``metrics``/``provenance`` plug the
        observability layer in (:mod:`repro.obs`); the instrumented
        result is cached like the plain one, so follow-up queries reuse
        it (and :meth:`explain` prefers the recorded provenance).
        """
        if bt_kwargs:
            bt_kwargs.setdefault("engine", self.engine)
            return bt_evaluate(self.rules, self.database,
                               stats=stats, tracer=tracer,
                               metrics=metrics, provenance=provenance,
                               **bt_kwargs)
        if self._result is None or stats is not None \
                or tracer is not None or metrics is not None \
                or provenance is not None:
            self._result = bt_evaluate(self.rules, self.database,
                                       stats=stats, tracer=tracer,
                                       metrics=metrics,
                                       provenance=provenance,
                                       engine=self.engine)
            if provenance is not None:
                self._provenance = provenance
        return self._result

    def provenance(self):
        """Evaluate with derivation recording on and return the
        :class:`~repro.obs.provenance.ProvenanceStore` (cached together
        with the result it belongs to)."""
        if self._provenance is None:
            from ..obs.provenance import ProvenanceStore
            self.evaluate(provenance=ProvenanceStore())
        return self._provenance

    def specification(self) -> RelationalSpec:
        """The relational specification ``S(Z∧D) = (T, B, W)`` (cached)."""
        if self._spec is None:
            self._spec = spec_from_result(self.evaluate())
        return self._spec

    def adopt_specification(self, spec: RelationalSpec) -> None:
        """Install a precomputed specification (e.g. from the spec
        cache of :mod:`repro.serve`), so queries answered through
        :meth:`ask`/:meth:`answers` skip BT entirely.

        The caller vouches that ``spec`` belongs to this TDD's program
        and database — content-address it with
        :func:`repro.serve.cache.tdd_key` to be sure.
        """
        self._spec = spec

    def period(self) -> Period:
        """The minimal period ``(b, p)`` of the least model."""
        result = self.evaluate()
        if result.period is None:
            raise RuntimeError("BT did not detect a period")
        return result.period

    # -- queries ------------------------------------------------------------

    def _coerce_query(self, query: Union[str, Query, Atom, Fact]) -> Query:
        from .queries import AtomQ
        if isinstance(query, str):
            return parse_query(query, self.temporal_preds)
        if isinstance(query, Fact):
            return AtomQ(query.to_atom())
        if isinstance(query, Atom):
            return AtomQ(query)
        return query

    def ask(self, query: Union[str, Query, Atom, Fact],
            binding: Union[Mapping, None] = None) -> bool:
        """Yes/no query against the infinite least model.

        Accepts a textual query, a :class:`Query`, or a ground atom.
        Closed queries evaluate on the relational specification
        (sound and complete by Proposition 3.1).
        """
        coerced = self._coerce_query(query)
        return evaluate(coerced, self.specification(), binding=binding)

    def answers(self, query: Union[str, Query]) -> AnswerSet:
        """All answers to an open query, as a finite representation."""
        coerced = self._coerce_query(query)
        return query_answers(coerced, self.specification())

    def holds(self, fact: Union[Fact, Atom]) -> bool:
        """Ground atomic membership in the least model (fast path)."""
        return self.evaluate().holds(fact)

    def explain(self, fact: Union[Fact, Atom]):
        """A derivation tree justifying a model fact.

        Facts beyond the computed window are folded through the period
        first (their derivation is the folded representative's, by
        periodicity).  When the engine ran with provenance recording on
        (see :meth:`provenance`), the *recorded* proof is returned —
        constant-time per node; otherwise the search-based
        reconstruction of :func:`repro.temporal.explain.explain` runs
        (worst-case exponential on negation-heavy programs).
        """
        from ..temporal.explain import explain as _explain
        result = self.evaluate()
        if isinstance(fact, Atom):
            fact = fact.to_fact()
        if (fact.time is not None and fact.time > result.horizon
                and result.period is not None):
            fact = Fact(fact.pred, result.period.fold(fact.time),
                        fact.args)
        if self._provenance is not None:
            recorded = self._provenance.derivation(fact,
                                                   database=self.database)
            if recorded is not None:
                return recorded
        return _explain(self.rules, self.database, result.store, fact)

    # -- classification -----------------------------------------------------

    def classification(self) -> Classification:
        """Membership in the paper's tractable classes."""
        from ..lang.errors import ClassificationError

        proper = [r for r in self.rules if not r.is_fact]
        report = classify_ruleset(proper)
        inflationary: Union[bool, None]
        note = ""
        try:
            inflationary = is_inflationary(proper)
        except ClassificationError as exc:
            inflationary = None
            note = str(exc)
        return Classification(
            inflationary=inflationary,
            multi_separable=report.is_multi_separable,
            separable=is_separable(proper),
            forward=forward_lookback(proper) is not None,
            report=report,
            inflationary_note=note,
        )

    # -- tooling --------------------------------------------------------

    def analyze(self):
        """Static analysis + lints (see :mod:`repro.core.analysis`)."""
        from .analysis import analyze as _analyze
        return _analyze(self.rules, self.database.facts())

    def timeline(self, predicates=None, until=None) -> str:
        """ASCII timeline of the computed model (CLI: ``timeline``)."""
        from ..temporal.intervals import timeline as _timeline
        result = self.evaluate()
        if predicates is None:
            predicates = sorted(result.store.temporal_predicates())
        if until is None:
            until = min(result.horizon,
                        (self.period().b + 2 * self.period().p
                         if result.period else result.horizon))
        return _timeline(result.store, predicates, until)

    def describe(self):
        """Interval description of the infinite model, per tuple."""
        from ..temporal.intervals import describe_periodic
        result = self.evaluate()
        period = self.period()
        return describe_periodic(result.store, period.b, period.p)

    def __repr__(self) -> str:
        return (f"TDD({len(self.rules)} rules, "
                f"n={self.database.n}, c={self.database.c})")
