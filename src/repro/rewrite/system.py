"""Ground rewrite systems over temporal terms.

A relational specification (Section 3.3) carries a finite set ``W`` of
ground rewrite rules whose both sides are temporal terms; a ground term
``t`` is *canonicalised* by rewriting until no rule applies, written
``t ⇝ t0``.  Because the language has a single unary function symbol,
ground temporal terms are just depths (ints) and a subterm of ``t`` is any
``s ≤ t``; rewriting the subterm ``lhs`` of ``t`` to ``rhs`` yields
``t - lhs + rhs``.

For TDDs the computed specification has exactly one rule
``(b + c + p) → (b + c)`` (the paper, Section 3.3), for which
canonicalisation collapses to arithmetic; the general multi-rule machinery
is retained because the specification notion is defined for the wider
class of functional deductive databases and the tests exercise it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..lang.errors import EvaluationError


@dataclass(frozen=True)
class RewriteRule:
    """A ground rewrite rule ``lhs → rhs`` between temporal terms."""

    lhs: int
    rhs: int

    def __post_init__(self) -> None:
        if self.lhs < 0 or self.rhs < 0:
            raise ValueError("temporal terms are non-negative")

    @property
    def is_decreasing(self) -> bool:
        return self.rhs < self.lhs

    def applies_to(self, term: int) -> bool:
        """The rule applies when ``lhs`` occurs as a subterm of ``term``."""
        return term >= self.lhs

    def apply(self, term: int) -> int:
        return term - self.lhs + self.rhs

    def __str__(self) -> str:
        return f"{self.lhs} -> {self.rhs}"


class RewriteSystem:
    """A finite set of ground rewrite rules with canonicalisation."""

    def __init__(self, rules: Sequence[RewriteRule]):
        self.rules = tuple(sorted(set(rules),
                                  key=lambda r: (r.lhs, r.rhs)))

    @property
    def is_terminating(self) -> bool:
        """Every rule strictly decreases term depth ⇒ terminating.

        This sufficient condition holds for every specification the
        library computes; non-decreasing systems are still usable but
        canonicalisation guards against divergence.
        """
        return all(rule.is_decreasing for rule in self.rules)

    def step(self, term: int) -> int | None:
        """One rewrite step (first applicable rule), or None."""
        for rule in self.rules:
            if rule.applies_to(term):
                return rule.apply(term)
        return None

    def normalize(self, term: int, max_steps: int = 1_000_000) -> int:
        """The canonical form ``t0`` of ``term`` (``term ⇝ t0``)."""
        if term < 0:
            raise ValueError("temporal terms are non-negative")
        if len(self.rules) == 1:
            # The TDD fast path: one decreasing rule is modular reduction.
            rule = self.rules[0]
            if rule.is_decreasing and term >= rule.lhs:
                span = rule.lhs - rule.rhs
                return rule.rhs + (term - rule.lhs) % span
            if not rule.is_decreasing and rule.applies_to(term):
                raise EvaluationError(
                    f"non-terminating rewrite of {term} by {rule}"
                )
            return term
        current = term
        for _ in range(max_steps):
            nxt = self.step(current)
            if nxt is None:
                return current
            current = nxt
        raise EvaluationError(
            f"rewriting of {term} did not terminate in {max_steps} steps"
        )

    def is_canonical(self, term: int) -> bool:
        return self.step(term) is None

    def preimages(self, canonical: int,
                  limit: int | None = None) -> Iterator[int]:
        """Enumerate ground terms whose canonical form is ``canonical``.

        Yields in increasing order, starting with ``canonical`` itself;
        nothing is yielded when ``canonical`` is not in canonical form.
        ``limit`` bounds the number of yielded terms (None = unbounded;
        for the single-rule systems the library produces, sets are
        infinite exactly when ``canonical ≥ rhs``).  Multi-rule systems
        require an explicit ``limit`` because the enumeration has no
        closed form; they are scanned by brute force.
        """
        if not self.is_terminating:
            raise EvaluationError("preimages need a terminating system")
        if not self.is_canonical(canonical):
            return
        if len(self.rules) == 1:
            rule = self.rules[0]
            span = rule.lhs - rule.rhs
            yield canonical
            if canonical < rule.rhs:
                return  # never the image of a reduction: unique preimage
            count = 1
            term = canonical + span
            while term < rule.lhs:
                term += span
            while limit is None or count < limit:
                yield term
                count += 1
                term += span
            return
        if limit is None:
            raise EvaluationError(
                "multi-rule preimage enumeration requires a limit"
            )
        count = 0
        term = canonical
        # Brute-force scan; sound because normalize is total on ints.
        max_scan = canonical + (limit + 1) * max(
            r.lhs for r in self.rules) + 1
        while count < limit and term <= max_scan:
            if self.normalize(term) == canonical:
                yield term
                count += 1
            term += 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RewriteSystem):
            return NotImplemented
        return self.rules == other.rules

    def __hash__(self) -> int:
        return hash(self.rules)

    def __str__(self) -> str:
        return "{" + ", ".join(str(r) for r in self.rules) + "}"
