"""Ground term rewriting over temporal terms (the ``W`` of a spec)."""

from .system import RewriteRule, RewriteSystem

__all__ = ["RewriteRule", "RewriteSystem"]
