"""Diagnostic values emitted by the lint framework.

A :class:`Diagnostic` is one finding: a stable code (``TDDnnn``), a
human-readable check name, a severity, a message, and — when the program
came from source text — a :class:`~repro.lang.spans.Span` pointing at the
offending construct.  Severities form a total order (``info`` <
``warning`` < ``error``) used by the CLI's ``--max-severity`` gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from ..lang.spans import Span

#: Severity names, ascending.
SEVERITIES = ("info", "warning", "error")

_RANK = {name: i for i, name in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """0 for info, 1 for warning, 2 for error; raises on unknown names."""
    return _RANK[severity]


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    ``code`` is the stable machine identifier (``TDD001``...); ``name``
    the stable kebab-case check name (``range-restriction``).  ``span``
    is None for programmatically constructed rules with no source.
    ``hint`` optionally suggests a fix.
    """

    code: str
    name: str
    severity: str
    message: str
    span: Union[Span, None] = None
    hint: Union[str, None] = None
    file: Union[str, None] = field(default=None, compare=False)

    @property
    def location(self) -> str:
        """``file:line:col`` (with unknown parts omitted)."""
        parts = []
        if self.file:
            parts.append(self.file)
        if self.span is not None:
            parts.append(str(self.span))
        return ":".join(parts)

    def __str__(self) -> str:
        prefix = f"{self.location}: " if self.location else ""
        return f"{prefix}{self.severity}[{self.code}]: {self.message}"


def max_severity(diagnostics: Iterable[Diagnostic]) -> Union[str, None]:
    """The highest severity present, or None for an empty sequence."""
    best: Union[str, None] = None
    for diagnostic in diagnostics:
        if best is None or severity_rank(diagnostic.severity) > \
                severity_rank(best):
            best = diagnostic.severity
    return best


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    """``{"error": n, "warning": m, "info": k}`` (all keys present)."""
    counts = {name: 0 for name in SEVERITIES}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] += 1
    return counts


def gate(diagnostics: Iterable[Diagnostic],
         tolerated: str = "warning") -> bool:
    """True when any diagnostic exceeds the tolerated severity.

    ``tolerated`` is the highest severity that still passes: with the
    default ``"warning"`` only errors fail the gate; with ``"info"``
    warnings fail too; with ``"error"`` nothing does.
    """
    limit = severity_rank(tolerated)
    return any(severity_rank(d.severity) > limit for d in diagnostics)
