"""The pluggable check framework and the built-in checks.

Every check is a small class with a stable code (``TDDnnn``), a stable
kebab-case name, a default severity, and a ``run`` method yielding
:class:`~repro.analysis.diagnostics.Diagnostic` values for a
:class:`LintContext`.  Checks register themselves in :data:`REGISTRY`
with the :func:`register` decorator; third-party passes can do the same.

Codes are append-only: a code is never reused or renumbered, so CI
configurations (``--select``/``--ignore``) stay stable across releases.
``TDD000``/``TDD001`` are reserved for the parse stage (syntax and sort
resolution, emitted by :mod:`repro.analysis.engine`); the registered
checks start at ``TDD002``.
"""

from __future__ import annotations

from collections import Counter
from functools import cached_property
from typing import Iterable, Iterator, Sequence, Union

from ..lang.atoms import Atom, Fact
from ..lang.rules import Rule
from ..lang.spans import Span
from ..lang.terms import Var
from .diagnostics import Diagnostic

#: code -> check class, in registration (= code) order.
REGISTRY: "dict[str, type[Check]]" = {}

#: Codes emitted by the parse stage rather than a registered check.
SYNTAX_ERROR = ("TDD000", "syntax-error")
SORT_ERROR = ("TDD001", "sort-error")


def register(cls: "type[Check]") -> "type[Check]":
    """Class decorator adding a check to :data:`REGISTRY`."""
    if cls.code in REGISTRY:
        raise ValueError(f"duplicate diagnostic code {cls.code}")
    REGISTRY[cls.code] = cls
    return cls


def all_checks() -> "list[Check]":
    """Fresh instances of every registered check, in code order."""
    return [REGISTRY[code]() for code in sorted(REGISTRY)]


class LintContext:
    """Everything a check may look at, with shared lazy caches.

    ``rules`` are the proper rules (facts filtered out), ``facts`` the
    database including fact-rules' heads.  ``path``/``source`` identify
    the originating file when the program came from text.
    """

    def __init__(self, rules: Sequence[Rule],
                 facts: Iterable[Fact] = (), *,
                 path: Union[str, None] = None,
                 source: Union[str, None] = None,
                 query: Union[str, None] = None):
        self.all_rules: tuple[Rule, ...] = tuple(rules)
        self.rules: tuple[Rule, ...] = tuple(
            r for r in self.all_rules if not r.is_fact)
        fact_list = list(facts)
        for rule in self.all_rules:
            if rule.is_fact and rule.head.is_ground:
                fact_list.append(rule.head.to_fact())
        self.facts: tuple[Fact, ...] = tuple(fact_list)
        self.path = path
        self.source = source
        self.query = query

    # -- shared caches ------------------------------------------------------

    @cached_property
    def graph(self) -> dict[str, set[str]]:
        from ..datalog.depgraph import dependency_graph
        return dependency_graph(self.rules)

    @cached_property
    def derived(self) -> set[str]:
        return {rule.head.pred for rule in self.rules}

    @cached_property
    def extensional(self) -> set[str]:
        return {fact.pred for fact in self.facts}

    @cached_property
    def negative_cycle(self) -> Union["list[str]", None]:
        from ..datalog.depgraph import negative_cycle
        return negative_cycle(self.rules)

    @cached_property
    def classification(self):
        """The Thm 6.5 classification report, or None when the program
        is too broken to classify (another check reports why)."""
        from ..core.classify import classify_ruleset
        from ..lang.errors import ReproError
        try:
            return classify_ruleset(self.rules)
        except ReproError:
            return None

    @cached_property
    def _witness(self):
        """("ok", Theorem-5.2 witness-or-None) or ("na", None) when the
        decision procedure does not apply.  One evaluation feeds both
        :attr:`inflationary` and :attr:`tractability`."""
        from ..core.inflationary import inflationary_witness
        from ..lang.errors import ReproError
        try:
            return ("ok", inflationary_witness(self.rules))
        except ReproError:
            return ("na", None)

    @cached_property
    def inflationary(self) -> Union[bool, None]:
        status, witness = self._witness
        return None if status == "na" else witness is None

    @cached_property
    def tractability(self):
        """The static classification (:mod:`repro.analysis.static`), or
        None when the program is too broken to classify."""
        from ..lang.errors import ReproError
        from .static.classes import classify_program
        try:
            status, witness = self._witness
            if status == "ok":
                return classify_program(
                    self.rules, separability=self.classification,
                    witness=witness)
            return classify_program(
                self.rules, semantic=False,
                separability=self.classification)
        except ReproError:
            return None

    @cached_property
    def reachability(self):
        """The query slice when a query predicate was given, else None."""
        from .static.reach import query_slice
        if self.query is None:
            return None
        return query_slice(self.all_rules, self.query)

    @cached_property
    def signature(self) -> "dict[str, tuple[bool, int]]":
        """pred -> (is_temporal, data arity) from the first occurrence."""
        seen: dict[str, tuple[bool, int]] = {}
        for rule in self.all_rules:
            for atom in rule.atoms():
                seen.setdefault(atom.pred, (atom.is_temporal, atom.arity))
        for fact in self.facts:
            seen.setdefault(fact.pred,
                            (fact.time is not None, len(fact.args)))
        return seen


class Check:
    """Base class: subclass, set the class attributes, implement run()."""

    code: str = ""
    name: str = ""
    severity: str = "warning"
    #: One-line meaning, shown in ``--explain`` output and SARIF rules.
    description: str = ""
    #: Paper reference backing the check, when there is one.
    paper: str = ""
    #: Optional generic fix hint.
    hint: str = ""

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(self, message: str, span: Union[Span, None] = None, *,
             severity: Union[str, None] = None,
             hint: Union[str, None] = None) -> Diagnostic:
        """Build a diagnostic pre-filled with this check's identity."""
        return Diagnostic(self.code, self.name,
                          severity or self.severity, message, span,
                          hint if hint is not None else (self.hint or None))


def _rule_span(rule: Rule) -> Union[Span, None]:
    if rule.span is not None:
        return rule.span
    return rule.head.span


def _atom_with_variable(rule: Rule, name: str) -> Union[Atom, None]:
    """First atom of the rule mentioning variable ``name`` (either sort)."""
    for atom in rule.atoms():
        if atom.temporal_variable() == name:
            return atom
        if any(v.name == name for v in atom.data_variables()):
            return atom
    return None


# ---------------------------------------------------------------------------
# Errors: programs the engines reject
# ---------------------------------------------------------------------------

@register
class RangeRestrictionCheck(Check):
    code = "TDD002"
    name = "range-restriction"
    severity = "error"
    description = ("Every head variable must be bound by a positive "
                   "body literal; facts must be ground.")
    paper = "Section 3.3"
    hint = "bind the variable in a positive body literal"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for rule in ctx.rules:
            body_vars = rule.body_data_variables()
            for name in sorted(rule.head_data_variables() - body_vars):
                atom = _atom_with_variable(rule, name) or rule.head
                yield self.diag(
                    f"head variable {name} of rule '{rule}' is not "
                    "bound by any positive body literal",
                    atom.span or _rule_span(rule))
            head_tv = rule.head.temporal_variable()
            if head_tv is not None:
                body_tvs = {a.temporal_variable() for a in rule.body}
                if head_tv not in body_tvs:
                    yield self.diag(
                        f"temporal variable {head_tv} of the head of "
                        f"rule '{rule}' does not occur in the body",
                        rule.head.span or _rule_span(rule))
        for rule in ctx.all_rules:
            if rule.is_fact and not rule.head.is_ground:
                yield self.diag(f"fact {rule.head} is not ground",
                                rule.head.span or _rule_span(rule),
                                hint="facts may not contain variables")


@register
class UnsafeNegationCheck(Check):
    code = "TDD003"
    name = "unsafe-negation"
    severity = "error"
    description = ("Every variable of a negative literal must be bound "
                   "by a positive body literal.")
    paper = "stratified extension (docs/THEORY.md)"
    hint = "add a positive literal binding the variable"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for rule in ctx.rules:
            body_vars = rule.body_data_variables()
            positive_tvs = {a.temporal_variable() for a in rule.body}
            for atom in rule.negative:
                for name in sorted({v.name for v in atom.data_variables()}
                                   - body_vars):
                    yield self.diag(
                        f"variable {name} of negative literal "
                        f"'not {atom}' in rule '{rule}' is not bound by "
                        "any positive body literal",
                        atom.span or _rule_span(rule))
                tvar = atom.temporal_variable()
                if tvar is not None and tvar not in positive_tvs:
                    yield self.diag(
                        f"temporal variable {tvar} of negative literal "
                        f"'not {atom}' in rule '{rule}' is not bound by "
                        "any positive body literal",
                        atom.span or _rule_span(rule))


@register
class ArityConsistencyCheck(Check):
    code = "TDD004"
    name = "arity-mismatch"
    severity = "error"
    description = ("A predicate must be used with one data arity and "
                   "one temporality everywhere.")
    paper = "Section 3.1 (fixed sorts)"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        signature = ctx.signature
        reported: set[tuple[str, bool, int]] = set()
        for rule in ctx.all_rules:
            for atom in rule.atoms():
                expected = signature[atom.pred]
                actual = (atom.is_temporal, atom.arity)
                if actual == expected:
                    continue
                key = (atom.pred, *actual)
                if key in reported:
                    continue
                reported.add(key)
                yield self.diag(
                    self._message(atom.pred, expected, actual),
                    atom.span or _rule_span(rule))
        for fact in ctx.facts:
            expected = signature[fact.pred]
            actual = (fact.time is not None, len(fact.args))
            if actual == expected:
                continue
            key = (fact.pred, *actual)
            if key in reported:
                continue
            reported.add(key)
            yield self.diag(self._message(fact.pred, expected, actual),
                            fact.span)

    @staticmethod
    def _message(pred: str, expected: "tuple[bool, int]",
                 actual: "tuple[bool, int]") -> str:
        def describe(sig: "tuple[bool, int]") -> str:
            flavour = "temporal" if sig[0] else "non-temporal"
            return f"{flavour} with data arity {sig[1]}"
        return (f"predicate {pred} is used both "
                f"{describe(expected)} and {describe(actual)}")


@register
class SortClashCheck(Check):
    code = "TDD005"
    name = "sort-clash"
    severity = "error"
    description = ("A variable may not be used both as a temporal and "
                   "as a data argument within one rule.")
    paper = "Section 3.1 (two-sorted language)"
    hint = "rename one of the two uses"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for rule in ctx.rules:
            clash = rule.temporal_variables() & rule.data_variables()
            for name in sorted(clash):
                atom = _atom_with_variable(rule, name)
                yield self.diag(
                    f"variable {name} is used both as a temporal and "
                    f"as a data argument in rule '{rule}'",
                    (atom.span if atom is not None else None)
                    or _rule_span(rule))


@register
class StratifiabilityCheck(Check):
    code = "TDD006"
    name = "not-stratifiable"
    severity = "error"
    description = ("Recursion through negation: the program has no "
                   "stratified model.")
    paper = "stratified extension (docs/THEORY.md)"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        cycle = ctx.negative_cycle
        if cycle is None:
            return
        head, negated = cycle[0], cycle[1]
        rendered = " -> ".join(cycle)
        span: Union[Span, None] = None
        for rule in ctx.rules:
            if rule.head.pred != head:
                continue
            for atom in rule.negative:
                if atom.pred == negated:
                    span = atom.span or _rule_span(rule)
                    break
            if span is not None:
                break
        yield self.diag(
            "recursion through negation: dependency cycle "
            f"{rendered} passes through 'not {negated}'; the program "
            "has no stratified model and evaluation will be rejected",
            span)


# ---------------------------------------------------------------------------
# Warnings: legal but suspicious programs
# ---------------------------------------------------------------------------

@register
class NonForwardCheck(Check):
    code = "TDD007"
    name = "non-forward"
    severity = "warning"
    description = ("A rule looks forward in time (a body offset exceeds "
                   "the head offset); detected periods are verified at "
                   "finite horizons, not certified.")
    paper = "Section 4 (period certification)"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for rule in ctx.rules:
            if rule.is_forward:
                continue
            offender = self._offending_literal(rule)
            where = (f"literal '{offender}'" if offender is not None
                     else "a body literal")
            yield self.diag(
                f"rule '{rule}' is not forward: {where} refers to a "
                "later timepoint than the head; detected periods will "
                "be verified at finite horizons, not certified",
                (offender.span if offender is not None else None)
                or _rule_span(rule))

    @staticmethod
    def _offending_literal(rule: Rule) -> Union[Atom, None]:
        head_time = rule.head.time
        head_offset = (head_time.offset
                       if head_time is not None and not head_time.is_ground
                       else None)
        for atom in (*rule.body, *rule.negative):
            if atom.time is None or atom.time.is_ground:
                continue
            if head_offset is None or atom.time.offset > head_offset:
                return atom
        return None


@register
class SingletonVariableCheck(Check):
    code = "TDD008"
    name = "singleton-variable"
    severity = "warning"
    description = ("A body variable occurring exactly once carries no "
                   "constraint; usually a typo.")
    hint = "prefix the variable with _ if the single use is intentional"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for rule in ctx.rules:
            counts: Counter = Counter()
            for atom in rule.atoms():
                tvar = atom.temporal_variable()
                if tvar is not None:
                    counts[tvar] += 1
                for var in atom.data_variables():
                    counts[var.name] += 1
            head_names = set(rule.head_data_variables())
            head_tv = rule.head.temporal_variable()
            if head_tv is not None:
                head_names.add(head_tv)
            for name in sorted(counts):
                if counts[name] != 1 or name.startswith("_"):
                    continue
                if name in head_names:
                    continue  # head singletons are TDD002's business
                atom = _atom_with_variable(rule, name)
                yield self.diag(
                    f"variable {name} occurs only once in rule '{rule}'",
                    (atom.span if atom is not None else None)
                    or _rule_span(rule))


def _match_time(pattern: Atom, target: Atom,
                theta: dict) -> Union[dict, None]:
    """Extend theta so the pattern's temporal term maps onto the target's.

    Only like-shaped matches are attempted (both absent, both ground and
    equal, or both ``V+k`` with equal offsets): enough for the variant /
    subsumption lint, which never needs arithmetic reasoning.
    """
    pt, tt = pattern.time, target.time
    if pt is None and tt is None:
        return theta
    if pt is None or tt is None:
        return None
    if pt.is_ground or tt.is_ground:
        return theta if pt == tt else None
    if pt.offset != tt.offset:
        return None
    key = ("t", pt.var)
    if key in theta and theta[key] != tt.var:
        return None
    return {**theta, key: tt.var}


def _match_atom(pattern: Atom, target: Atom,
                theta: dict) -> Union[dict, None]:
    """Match one atom onto another under a variable substitution."""
    if pattern.pred != target.pred or pattern.arity != target.arity:
        return None
    theta = _match_time(pattern, target, theta)
    if theta is None:
        return None
    for parg, targ in zip(pattern.args, target.args):
        if isinstance(parg, Var):
            key = ("d", parg.name)
            if key in theta:
                if theta[key] != targ:
                    return None
            else:
                theta = {**theta, key: targ}
        elif parg != targ:
            return None
    return theta


def _cover(patterns: "tuple[Atom, ...]", targets: "tuple[Atom, ...]",
           theta: dict) -> bool:
    """Can every pattern atom be matched onto *some* target atom?"""
    if not patterns:
        return True
    first, rest = patterns[0], patterns[1:]
    for target in targets:
        extended = _match_atom(first, target, theta)
        if extended is not None and _cover(rest, targets, extended):
            return True
    return False


def _subsumes(general: Rule, specific: Rule) -> bool:
    """θ-subsumption: ∃θ with θ(general.head) = specific.head and
    θ(general.body) ⊆ specific.body (likewise for negative literals)."""
    theta = _match_atom(general.head, specific.head, {})
    if theta is None:
        return False
    return (_cover(general.body, specific.body, theta)
            and _cover(general.negative, specific.negative, theta))


@register
class DuplicateRuleCheck(Check):
    code = "TDD009"
    name = "duplicate-rule"
    severity = "warning"
    description = "Two rules are identical (up to variable renaming)."
    hint = "delete one of the copies"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for i, rule in enumerate(ctx.rules):
            for earlier in ctx.rules[:i]:
                if rule == earlier or (_subsumes(earlier, rule)
                                       and _subsumes(rule, earlier)):
                    where = _rule_span(earlier)
                    yield self.diag(
                        f"rule '{rule}' duplicates an earlier rule"
                        + (f" (line {where.line})" if where else ""),
                        _rule_span(rule))
                    break


@register
class SubsumedRuleCheck(Check):
    code = "TDD010"
    name = "subsumed-rule"
    severity = "warning"
    description = ("A rule derives nothing a more general rule does not "
                   "already derive.")
    hint = "delete the subsumed rule"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for i, rule in enumerate(ctx.rules):
            for j, other in enumerate(ctx.rules):
                if i == j:
                    continue
                if _subsumes(other, rule) and not _subsumes(rule, other):
                    yield self.diag(
                        f"rule '{rule}' is subsumed by the more general "
                        f"rule '{other}'",
                        _rule_span(rule))
                    break


@register
class DeadRuleCheck(Check):
    code = "TDD011"
    name = "dead-rule"
    severity = "warning"
    description = ("A body predicate can never hold (no facts and no "
                   "derivable rules), so the rule never fires.")
    paper = "Section 5 (derived predicates)"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        supported: set[str] = set(ctx.extensional)
        changed = True
        while changed:
            changed = False
            for rule in ctx.rules:
                if rule.head.pred in supported:
                    continue
                if all(atom.pred in supported for atom in rule.body):
                    supported.add(rule.head.pred)
                    changed = True
        for rule in ctx.rules:
            dead = [atom for atom in rule.body
                    if atom.pred not in supported]
            if not dead:
                continue
            preds = sorted({atom.pred for atom in dead})
            yield self.diag(
                f"rule '{rule}' can never fire: no facts can exist for "
                f"{preds}",
                dead[0].span or _rule_span(rule),
                hint="add facts or defining rules, or delete the rule")


@register
class UnreachablePredicateCheck(Check):
    code = "TDD012"
    name = "unreachable-predicate"
    severity = "warning"
    description = ("Database facts for a predicate no rule body ever "
                   "reads are dead weight.")

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if not ctx.rules:
            return  # a bare database: every predicate is a query target
        used = {atom.pred for rule in ctx.rules
                for atom in (*rule.body, *rule.negative)}
        seen: set[str] = set()
        for fact in ctx.facts:
            pred = fact.pred
            if pred in used or pred in ctx.derived or pred in seen:
                continue
            seen.add(pred)
            yield self.diag(
                f"facts for predicate {pred} are never used by any rule "
                "(unreachable from every derived predicate)",
                fact.span,
                hint="delete the facts, or reference the predicate")


@register
class UnusedPredicateCheck(Check):
    code = "TDD013"
    name = "unused-predicate"
    severity = "info"
    description = ("A derived predicate never used in a body; fine when "
                   "it is the query target.")

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        used = {atom.pred for rule in ctx.rules
                for atom in (*rule.body, *rule.negative)}
        for pred in sorted(ctx.derived - used):
            rule = next(r for r in ctx.rules if r.head.pred == pred)
            yield self.diag(
                f"predicate {pred} is derived but never used in a body "
                "(fine if it is the query target)",
                rule.head.span or _rule_span(rule))


# ---------------------------------------------------------------------------
# Info: paper-class certifications
# ---------------------------------------------------------------------------

@register
class NonNormalCheck(Check):
    code = "TDD014"
    name = "non-normal"
    severity = "info"
    description = ("A rule has temporal depth > 1 (or several temporal "
                   "variables); the paper's normal-form statements "
                   "apply after to_normal().")
    paper = "Section 3.1 (normal form)"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for rule in ctx.rules:
            if not rule.is_semi_normal:
                tvars = sorted(rule.temporal_variables())
                yield self.diag(
                    f"rule '{rule}' has {len(tvars)} temporal variables "
                    f"({', '.join(tvars)}); the paper's normal form "
                    "allows one (to_semi_normal() rewrites this)",
                    _rule_span(rule))
                continue
            if rule.temporal_depth <= 1:
                continue
            offender = max(
                (a for a in rule.atoms()
                 if a.time is not None and not a.time.is_ground),
                key=lambda a: a.time.offset)
            yield self.diag(
                f"rule '{rule}' has temporal depth "
                f"{rule.temporal_depth} > 1 at literal '{offender}'; "
                "the paper's normal-form statements apply after "
                "to_normal()",
                offender.span or _rule_span(rule))


@register
class InflationaryCheck(Check):
    code = "TDD015"
    name = "inflationary"
    severity = "info"
    description = ("Theorem 5.2 inflationary test: inflationary "
                   "rulesets are polynomial-time by Theorem 5.1.")
    paper = "Theorems 5.1/5.2"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if not ctx.rules:
            return
        verdict = ctx.inflationary
        if verdict is None:
            yield self.diag(
                "the Theorem 5.2 inflationary test does not apply "
                "(rules outside the paper's assumptions: negation or "
                "ground terms)")
        elif verdict:
            yield self.diag(
                "certified inflationary (Theorem 5.2): query "
                "processing is polynomial-time by Theorem 5.1")
        else:
            yield self.diag(
                "not inflationary (Theorem 5.2 test is negative)")


@register
class ClassMembershipCheck(Check):
    code = "TDD016"
    name = "class-membership"
    severity = "info"
    description = ("Section 6 membership: multi-separable / separable "
                   "/ reduced time-only, with the failing rule when "
                   "outside.")
    paper = "Theorems 6.3/6.5"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if not ctx.rules:
            return
        from ..core.classify import is_reduced_time_only, is_separable
        report = ctx.classification
        if report is None:
            return
        if report.is_multi_separable:
            qualifiers = []
            if is_separable(ctx.rules):
                qualifiers.append("separable [7]")
            if is_reduced_time_only(ctx.rules):
                qualifiers.append("reduced time-only (Thm 6.3)")
            extra = f" ({', '.join(qualifiers)})" if qualifiers else ""
            yield self.diag(
                "multi-separable (Theorem 6.5): 1-periodic and "
                f"polynomial-time{extra}")
            return
        if not report.mutual_recursion_free:
            yield self.diag(
                "not multi-separable: the ruleset is not "
                "mutual-recursion-free (Section 6 requires it)")
            return
        if report.offending_rules:
            offender = report.offending_rules[0]
            yield self.diag(
                f"not multi-separable: rule '{offender}' is neither "
                "time-only nor data-only",
                _rule_span(offender))
        else:
            mixed = sorted(pred for pred, kind
                           in report.predicate_kinds.items()
                           if kind not in ("time-only", "data-only"))
            yield self.diag(
                "not multi-separable: predicates "
                f"{mixed} mix time-only and data-only recursive rules")


@register
class TractabilityCheck(Check):
    code = "TDD017"
    name = "no-tractability-guarantee"
    severity = "warning"
    description = ("Outside both tractable classes (Sections 5 and 6): "
                   "evaluation may need exponential windows.")
    paper = "Sections 5 and 6"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.inflationary is not False:
            return
        report = ctx.classification
        if report is None or report.is_multi_separable:
            return
        offenders = report.offending_rules[:3]
        detail = ("; offending rules: "
                  + ", ".join(f"'{r}'" for r in offenders)
                  if offenders else "")
        span = (_rule_span(offenders[0]) if offenders else None)
        yield self.diag(
            "outside both tractable classes (Sections 5 and 6); "
            f"evaluation may need exponential windows{detail}",
            span)
