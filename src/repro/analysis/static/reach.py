"""Query-reachability analysis: the rule/predicate slice a query needs.

Query processing under the paper's semantics asks whether one ground
(or open) atom is in the least model — so any rule whose head the query
predicate cannot reach through the dependency graph can never
contribute to the answer.  This module computes that slice over the
existing :mod:`repro.datalog.depgraph` and offers a sound pruning
transform: restricted to the query predicate, the window-truncated
fixpoint of the pruned program equals that of the full program, because
``dependency_graph`` edges cover positive *and* negative body literals
(a stratified evaluation of the slice sees exactly the same supporting
and blocking facts).

The lint checks TDD018/TDD019 are built on :func:`query_slice`; the
differential property test confronts :func:`prune_for_query` with every
registry engine on the 100-program hypothesis corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ...datalog.depgraph import dependency_graph
from ...lang.rules import Rule


def reachable_predicates(rules: Sequence[Rule],
                         roots: Iterable[str]) -> "set[str]":
    """Predicates reachable from ``roots`` in the dependency graph
    (roots included, even when they never occur in the rules)."""
    graph = dependency_graph(r for r in rules if not r.is_fact)
    seen: set[str] = set()
    stack = list(roots)
    while stack:
        pred = stack.pop()
        if pred in seen:
            continue
        seen.add(pred)
        stack.extend(graph.get(pred, ()))
    return seen


@dataclass(frozen=True)
class ReachabilitySlice:
    """The part of a program one query predicate can observe.

    ``known`` is False when the query predicate never occurs in the
    program at all — the slice is then trivially empty and the caller
    should flag the query itself rather than every rule.
    """

    roots: tuple[str, ...]
    predicates: frozenset
    rules: tuple[Rule, ...]
    dead_rules: tuple[Rule, ...]
    known: bool

    @property
    def dead_predicates(self) -> "set[str]":
        """Predicates only mentioned by dead rules (heads or bodies)."""
        live = {a.pred for r in self.rules for a in r.atoms()}
        dead = {a.pred for r in self.dead_rules for a in r.atoms()}
        return dead - live - set(self.roots)


def query_slice(rules: Sequence[Rule], query: str) -> ReachabilitySlice:
    """Slice ``rules`` down to what predicate ``query`` can reach."""
    mentioned = {a.pred for r in rules for a in r.atoms()}
    reachable = reachable_predicates(rules, [query])
    live: list[Rule] = []
    dead: list[Rule] = []
    for rule in rules:
        if rule.is_fact:
            continue
        (live if rule.head.pred in reachable else dead).append(rule)
    return ReachabilitySlice(
        roots=(query,),
        predicates=frozenset(reachable),
        rules=tuple(live),
        dead_rules=tuple(dead),
        known=query in mentioned,
    )


def prune_for_query(rules: Sequence[Rule], facts, query: str
                    ) -> "tuple[list[Rule], list]":
    """Drop rules and facts the query predicate cannot reach.

    Sound for answers about ``query``: every derivation of a ``query``
    fact only traverses reachable predicates, and negative literals of
    reachable rules are themselves reachability edges, so their
    predicates' supporting rules and facts are all kept.
    """
    slice_ = query_slice(rules, query)
    if not slice_.known:
        return list(rules), list(facts)
    kept_rules = [r for r in rules
                  if r.head.pred in slice_.predicates]
    kept_facts = [f for f in facts if f.pred in slice_.predicates]
    return kept_rules, kept_facts


__all__ = ["ReachabilitySlice", "reachable_predicates", "query_slice",
           "prune_for_query"]
