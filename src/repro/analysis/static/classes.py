"""Tractability classification: the static lattice over rule sets.

The paper's positive results are all *static* claims — properties of
the ruleset alone, checked without evaluating it on a database:

* **inflationary** (Section 5): once true, a fact stays true.  By
  Theorem 5.1 the least model is then polynomially periodic with period
  ``(poly(n)+1, 1)``, hence query processing is tractable.  Theorem 5.2
  makes membership *decidable* via the one-fact test; a purely
  structural sufficient condition (every derived temporal predicate has
  a persistence rule ``p(T+1, X̄) :- p(T, X̄)``) is checked first, so the
  common shape never needs the semantic procedure.
* **time-only / multi-separable** (Section 6): recursive predicates
  whose recursion moves only through time (Theorem 6.3) or only through
  data (Theorem 6.5) give 1-periodic least models, hence tractability.
* **unknown**: none of the certificates applies.  Not a proof of
  intractability — Theorem 3.1's exponential-period family lives here,
  but so do benign programs the syntactic classes simply miss.

The classification lattice, most-informative first::

    inflationary  >  time-only  >  1-periodic  >  unknown

``classify_program`` returns the best class it can certify together
with per-predicate static offset/step bounds and, for the certified
classes, a *period stride estimate* — 1 for inflationary programs
(Theorem 5.1's period is ``(poly(n)+1, 1)``), the lcm of recursion
strides otherwise.  The stride estimate is a windowing heuristic, not
a certified period; the dynamic certificates live in
:mod:`repro.temporal.periodicity`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from ...lang.rules import Rule
from ...lang.terms import Var
from .cost import lcm

#: Classification lattice values, most informative first.
CLASSES = ("inflationary", "time-only", "1-periodic", "unknown")

_UNSET = object()


def is_persistence_rule(rule: Rule) -> bool:
    """``p(T+k+1, X̄) :- p(T+k, X̄)`` with distinct variable arguments.

    The structural shape whose presence for a predicate makes that
    predicate trivially satisfy the Section 5 implication
    ``P(t, x̄) ⇒ P(t+1, x̄)``.
    """
    if not rule.is_definite or len(rule.body) != 1:
        return False
    head, body = rule.head, rule.body[0]
    if head.pred != body.pred or head.args != body.args:
        return False
    if head.time is None or body.time is None:
        return False
    if head.time.is_ground or body.time.is_ground:
        return False
    if head.time.var != body.time.var:
        return False
    if head.time.offset != body.time.offset + 1:
        return False
    names = [a.name for a in head.args if isinstance(a, Var)]
    return (len(names) == len(head.args)
            and len(set(names)) == len(names))


def persistence_predicates(rules: Sequence[Rule]) -> "set[str]":
    """Predicates covered by a structural persistence rule."""
    return {r.head.pred for r in rules
            if not r.is_fact and is_persistence_rule(r)}


@dataclass(frozen=True)
class PredicateBounds:
    """Static temporal bounds of one predicate.

    ``offset`` is the maximum temporal offset of any occurrence (how
    far ahead of its rule's frontier the predicate is ever written or
    read); ``step`` the lcm of its recursive head-body offset gaps (the
    stride its recursion advances time by, 1 for non-recursive or
    non-temporal predicates); ``period`` the per-predicate stride
    estimate when the program's class certifies 1-periodicity (exactly
    1 for inflationary programs, per Theorem 5.1), else None.
    """

    pred: str
    offset: int
    step: int
    period: Union[int, None]


@dataclass
class TractabilityReport:
    """Outcome of the static classification pass."""

    klass: str  # one of CLASSES
    structurally_inflationary: bool = False
    inflationary: Union[bool, None] = None  # Theorem 5.2; None = N/A
    witness: Union[tuple, None] = None  # (pred, missing Fact) when not
    multi_separable: bool = False
    mutual_recursion_free: bool = True
    forward: bool = True
    lookback: Union[int, None] = None
    bounds: "dict[str, PredicateBounds]" = field(default_factory=dict)
    period: Union[int, None] = None  # program-level stride estimate
    reasons: "list[str]" = field(default_factory=list)
    offenders: "list[str]" = field(default_factory=list)

    @property
    def tractable(self) -> bool:
        """True when the class carries a paper tractability theorem."""
        return self.klass != "unknown"

    def to_dict(self) -> dict:
        return {
            "class": self.klass,
            "tractable": self.tractable,
            "structurally_inflationary": self.structurally_inflationary,
            "inflationary": self.inflationary,
            "witness": (None if self.witness is None
                        else {"pred": self.witness[0],
                              "missing": str(self.witness[1])}),
            "multi_separable": self.multi_separable,
            "mutual_recursion_free": self.mutual_recursion_free,
            "forward": self.forward,
            "lookback": self.lookback,
            "period": self.period,
            "bounds": {pred: {"offset": b.offset, "step": b.step,
                              "period": b.period}
                       for pred, b in sorted(self.bounds.items())},
            "reasons": list(self.reasons),
            "offenders": list(self.offenders),
        }


def _offset_bounds(proper: Sequence[Rule]) -> "dict[str, int]":
    """Max temporal offset per predicate over all occurrences."""
    offsets: dict[str, int] = {}
    for rule in proper:
        for atom in rule.atoms():
            if atom.time is None:
                continue
            prev = offsets.get(atom.pred, 0)
            offsets[atom.pred] = max(prev, atom.time.offset)
    return offsets


def _step_bounds(proper: Sequence[Rule]) -> "dict[str, int]":
    """Recursion stride per predicate: lcm of head-body offset gaps of
    directly recursive rules (at least 1)."""
    steps: dict[str, int] = {}
    for rule in proper:
        head = rule.head
        if head.time is None or head.time.is_ground:
            continue
        for atom in rule.body:
            if atom.pred != head.pred or atom.time is None \
                    or atom.time.is_ground:
                continue
            gap = max(abs(head.time.offset - atom.time.offset), 1)
            steps[head.pred] = lcm((steps.get(head.pred, 1), gap))
    return steps


def classify_program(rules: Sequence[Rule], *, semantic: bool = True,
                     separability=None,
                     witness=_UNSET) -> TractabilityReport:
    """Classify a ruleset into the static tractability lattice.

    ``semantic`` enables the Theorem 5.2 one-fact procedure (which
    evaluates ``len(derived preds)`` tiny test databases); with it off
    only the structural certificates run.  Callers holding cached
    results (the lint context) can inject ``separability`` (a
    :class:`~repro.core.classify.SeparabilityReport`) and ``witness``
    (the :func:`~repro.core.inflationary.inflationary_witness` result,
    or None-for-inflationary) to avoid recomputation.
    """
    from ...core.classify import classify_ruleset
    from ...lang.errors import ReproError
    from ...temporal.periodicity import forward_lookback

    proper = [r for r in rules if not r.is_fact]
    report = TractabilityReport(klass="unknown")
    report.lookback = forward_lookback(proper)
    report.forward = report.lookback is not None

    # --- inflationary certificates (Section 5) ---
    from ...core.inflationary import derived_temporal_predicates
    derived_temporal = derived_temporal_predicates(proper)
    persisted = persistence_predicates(proper)
    report.structurally_inflationary = bool(derived_temporal) and \
        set(derived_temporal) <= persisted
    if report.structurally_inflationary:
        report.inflationary = True
        report.reasons.append(
            "every derived temporal predicate has a persistence rule "
            "p(T+1, X) :- p(T, X) (structural Section 5 certificate)")
    elif semantic:
        from ...core.inflationary import inflationary_witness
        try:
            found = (inflationary_witness(proper) if witness is _UNSET
                     else witness)
            report.inflationary = found is None
            report.witness = found
            if found is None:
                report.reasons.append(
                    "the Theorem 5.2 one-fact test passes for every "
                    "derived temporal predicate")
            else:
                report.reasons.append(
                    f"not inflationary: {found[0]}(0, ...) does not "
                    f"imply {found[1]} (Theorem 5.2 one-fact test)")
        except ReproError as exc:
            report.inflationary = None
            report.reasons.append(
                f"Theorem 5.2 test not applicable: {exc}")

    # --- separability certificates (Section 6) ---
    sep = classify_ruleset(proper) if separability is None \
        else separability
    report.multi_separable = sep.is_multi_separable
    report.mutual_recursion_free = sep.mutual_recursion_free
    report.offenders = [str(r) for r in sep.offending_rules]

    offsets = _offset_bounds(proper)
    steps = _step_bounds(proper)

    if report.inflationary:
        report.klass = "inflationary"
        report.period = 1
        report.reasons.append(
            "inflationary => polynomially periodic with period "
            "(poly(n)+1, 1) (Theorem 5.1)")
    elif report.multi_separable:
        kinds = set(sep.predicate_kinds.values())
        if kinds <= {"time-only"}:
            report.klass = "time-only"
            report.reasons.append(
                "all recursive predicates are time-only => 1-periodic "
                "(Theorem 6.3)")
        else:
            report.klass = "1-periodic"
            report.reasons.append(
                "multi-separable (time-only/data-only per recursive "
                "predicate) => 1-periodic (Theorem 6.5)")
        report.period = lcm(steps.values()) if steps else 1
    else:
        if not sep.mutual_recursion_free:
            report.reasons.append(
                "mutually recursive predicates fall outside the "
                "Section 6 classes")
        if sep.offending_rules:
            report.reasons.append(
                "recursive rules that are neither time-only nor "
                "data-only: " + "; ".join(report.offenders[:3]))
        report.reasons.append(
            "no static tractability certificate applies; evaluation "
            "may still terminate but no period bound is certified")

    period = report.period
    for pred in sorted(set(offsets) | set(steps)):
        report.bounds[pred] = PredicateBounds(
            pred=pred,
            offset=offsets.get(pred, 0),
            step=steps.get(pred, 1),
            period=(1 if report.klass == "inflationary"
                    else steps.get(pred, 1) if period is not None
                    else None),
        )
    return report


__all__ = ["CLASSES", "PredicateBounds", "TractabilityReport",
           "classify_program", "is_persistence_rule",
           "persistence_predicates"]
