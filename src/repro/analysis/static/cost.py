"""The per-rule join cost model: estimated bindings per probe step.

Givan & McAllester's locality argument (PAPERS.md) is what makes the
compiled engine fast: every derivation step is an indexed lookup whose
result is *small* when the probe is selective.  This module quantifies
that selectivity statically — no database in hand — so the planner can
order body atoms cheapest-first instead of most-bound-first with a
textual tie-break.

The model is deliberately coarse but database-independent (compiled
plans are LRU-cached on the rules alone, so the estimate must not read
the database):

* a relation restricted to one timepoint holds ``FANOUT ** arity``
  rows (every free data position fans out by ``FANOUT``);
* a constant, an already-bound variable, or a repeated occurrence of a
  fresh variable divides the expected matches by ``FANOUT``;
* an atom whose temporal variable is not yet bound (and whose time is
  not ground) additionally enumerates ``TIME_FANOUT`` live slices.

``expected matches`` of a fully bound atom is therefore 1 (a membership
check), and the greedy planner's invariant is simple: *pick the atom
with the fewest expected matches next; ties break towards textual
order*.  For bodies of equal-arity atoms this coincides with the old
most-bound-first heuristic, so existing plans keep their shape; the
estimates additionally give every :class:`StepChoice` a defensible
number that ``repro profile --format json`` can show as plan rationale.

When callers *do* have a database (``repro analyze``, the serving
tier's admission control), per-predicate fact counts can be passed as
``sizes`` to replace the synthetic ``FANOUT ** arity`` base.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence, Union

from ...lang.terms import Const, Var

#: Expected distinct values per free data position of an atom.
FANOUT = 8.0

#: Expected live time slices enumerated when an atom's temporal
#: variable is not yet bound (and its time is not ground).
TIME_FANOUT = 16.0


@dataclass(frozen=True)
class StepChoice:
    """Why one body atom was picked at its place in the join order.

    ``bound_vars`` counts the selective argument positions at choice
    time: constants, already-bound data variables, repeated occurrences
    of a fresh variable, plus one for a bound-or-ground temporal term.
    ``est_matches`` is the expected number of rows matching the probe
    (1.0 means a membership check); ``est_rows`` the expected number of
    partial bindings alive *after* this step.
    """

    atom_index: int
    pred: str
    bound_vars: int
    time: str  # "none" | "ground" | "bound" | "free"
    est_matches: float
    est_rows: float


@dataclass(frozen=True)
class PlanCost:
    """A join order plus its per-step rationale and total cost.

    ``total`` sums the expected intermediate result sizes (the
    classical left-deep estimate): the number of probe operations the
    nested-loop join is expected to perform over one delta row set.
    """

    order: tuple[int, ...]
    steps: tuple[StepChoice, ...]
    total: float

    def by_atom(self) -> "dict[int, StepChoice]":
        return {step.atom_index: step for step in self.steps}


def _atom_estimate(atom, bound: "set[str]",
                   sizes: Union[Mapping[str, int], None]
                   ) -> tuple[int, str, float]:
    """(bound_vars, time kind, est_matches) for ``atom`` given ``bound``."""
    selective = 0
    seen: set[str] = set()
    free = 0
    for arg in atom.args:
        if isinstance(arg, Const):
            selective += 1
        elif isinstance(arg, Var):
            if arg.name in bound or arg.name in seen:
                selective += 1
            else:
                seen.add(arg.name)
                free += 1
    tt = atom.time
    if tt is None:
        kind = "none"
    elif tt.is_ground:
        kind = "ground"
        selective += 1
    elif tt.var in bound:
        kind = "bound"
        selective += 1
    else:
        kind = "free"
    if sizes is not None and atom.pred in sizes:
        base = max(float(sizes[atom.pred]), 1.0)
        est = max(base / (FANOUT ** selective), 1.0)
        if kind == "free":
            # Fact counts already cover all timepoints; a free time
            # only means no slice is pinned, which the base reflects.
            est = max(est, 1.0)
    else:
        est = FANOUT ** free
        if kind == "free":
            est *= TIME_FANOUT
    return selective, kind, est


def cost_order(body: Sequence, first: Union[int, None] = None,
               sizes: Union[Mapping[str, int], None] = None) -> PlanCost:
    """Greedy cheapest-first join order over ``body``.

    When ``first`` is given that atom leads (semi-naive evaluation puts
    the delta atom first).  At every step the atom with the fewest
    expected matches under the current bindings is chosen; ties break
    towards textual order.  Returns the order, the per-step rationale,
    and the summed intermediate-size estimate.
    """
    remaining = set(range(len(body)))
    order: list[int] = []
    steps: list[StepChoice] = []
    bound: set[str] = set()
    rows = 1.0
    total = 0.0

    def bind(i: int) -> None:
        nonlocal rows, total
        atom = body[i]
        selective, kind, est = _atom_estimate(atom, bound, sizes)
        rows *= est
        total += rows
        steps.append(StepChoice(atom_index=i, pred=atom.pred,
                                bound_vars=selective, time=kind,
                                est_matches=est, est_rows=rows))
        order.append(i)
        remaining.discard(i)
        for arg in atom.args:
            if isinstance(arg, Var):
                bound.add(arg.name)
        tvar = atom.temporal_variable()
        if tvar is not None:
            bound.add(tvar)

    if first is not None:
        bind(first)
    while remaining:
        def key(i: int) -> tuple[float, int]:
            _, _, est = _atom_estimate(body[i], bound, sizes)
            return (est, i)
        bind(min(remaining, key=key))
    return PlanCost(order=tuple(order), steps=tuple(steps), total=total)


def rule_cost(rule, sizes: Union[Mapping[str, int], None] = None
              ) -> PlanCost:
    """The canonical (free-lead) plan cost of one proper rule."""
    return cost_order(rule.body, sizes=sizes)


def plan_est_rows(rule) -> float:
    """The canonical plan's expected bindings after its last join step.

    This is the *predicted rows* figure the cost-calibration telemetry
    compares against measured derivations (per-rule ``new_facts +
    duplicates``): the final ``est_rows`` of the free-lead plan, or 1.0
    for an empty body (a fact-like rule derives exactly its head).
    Database-independent on purpose — the calibration ratio is a
    relative drift signal for the model itself, so it must use the same
    synthetic estimate the admission controller trusts.
    """
    steps = rule_cost(rule).steps
    return steps[-1].est_rows if steps else 1.0


def fact_sizes(facts) -> "dict[str, int]":
    """Per-predicate fact counts, the ``sizes`` input of the model."""
    sizes: dict[str, int] = {}
    for fact in facts:
        sizes[fact.pred] = sizes.get(fact.pred, 0) + 1
    return sizes


#: Window factor used when no static period bound is available: the
#: same default horizon the serving tier's degraded path evaluates to.
DEFAULT_WINDOW = 64.0

#: Cap on the window factor, so one huge-lcm clock program does not
#: make every admission estimate astronomically large.
MAX_WINDOW_FACTOR = 4096.0


def predicted_cost(rules: Sequence, facts=(),
                   period: Union[int, None] = None) -> float:
    """The program's evaluation budget estimate, in probe units.

    Sums the canonical per-rule plan costs (scaled by the database's
    per-predicate fact counts when given) and multiplies by a window
    factor: the static period bound when one is known, else
    ``DEFAULT_WINDOW``.  Heuristic by design — the serving tier uses it
    as a *relative* admission-control knob, not a wall-time promise.
    """
    sizes = fact_sizes(facts) or None
    proper = [r for r in rules if not r.is_fact]
    per_round = sum(rule_cost(r, sizes=sizes).total for r in proper)
    window = float(period) if period else DEFAULT_WINDOW
    window = min(max(window, 1.0), MAX_WINDOW_FACTOR)
    return per_round * window


def lcm(values) -> int:
    """Least common multiple of an iterable of positive ints (1 when
    empty) — shared by the period-bound computations."""
    out = 1
    for value in values:
        out = math.lcm(out, int(value))
    return out


__all__ = ["FANOUT", "TIME_FANOUT", "DEFAULT_WINDOW", "StepChoice",
           "PlanCost", "cost_order", "rule_cost", "plan_est_rows",
           "fact_sizes", "predicted_cost", "lcm"]
