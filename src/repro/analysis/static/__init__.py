"""The static analyzer: abstract interpretation over TDD rules.

Three passes that run without evaluating the program, bundled by
:func:`analyze_program` into one :class:`ProgramAnalysis`:

* **classification** (:mod:`~repro.analysis.static.classes`) — where
  the ruleset sits in the paper's tractability lattice (inflationary >
  time-only > 1-periodic > unknown), with static per-predicate
  offset/step bounds and a period stride estimate for certified
  classes;
* **reachability** (:mod:`~repro.analysis.static.reach`) — the
  rule/predicate slice a query predicate can observe, plus the sound
  :func:`~repro.analysis.static.reach.prune_for_query` transform;
* **cost** (:mod:`~repro.analysis.static.cost`) — the per-rule join
  cost model the engines' planner consumes
  (:func:`repro.datalog.engine.plan_order` orders cheapest-first) and
  the program-level :func:`~repro.analysis.static.cost.predicted_cost`
  budget estimate the serving tier uses for admission control.

Importing this package registers the TDD018–TDD021 lint checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

from ...lang.rules import Rule
from . import checks as _checks  # noqa: F401  (registers TDD018-021)
from .classes import (CLASSES, PredicateBounds, TractabilityReport,
                      classify_program, is_persistence_rule,
                      persistence_predicates)
from .cost import (DEFAULT_WINDOW, FANOUT, TIME_FANOUT, PlanCost,
                   StepChoice, cost_order, fact_sizes, predicted_cost,
                   rule_cost)
from .reach import (ReachabilitySlice, prune_for_query, query_slice,
                    reachable_predicates)


@dataclass
class ProgramAnalysis:
    """Everything the static analyzer can say about one program."""

    tractability: TractabilityReport
    reachability: Union[ReachabilitySlice, None] = None
    costs: "dict[str, PlanCost]" = field(default_factory=dict)
    budget: float = 0.0

    def to_dict(self) -> dict:
        out = {
            "tractability": self.tractability.to_dict(),
            "predicted_cost": self.budget,
            "rule_costs": {
                text: {
                    "total": plan.total,
                    "order": list(plan.order),
                    "steps": [
                        {"atom": step.atom_index, "pred": step.pred,
                         "bound_vars": step.bound_vars,
                         "time": step.time,
                         "est_matches": step.est_matches,
                         "est_rows": step.est_rows}
                        for step in plan.steps
                    ],
                }
                for text, plan in self.costs.items()
            },
        }
        if self.reachability is not None:
            slice_ = self.reachability
            out["reachability"] = {
                "query": slice_.roots[0],
                "known": slice_.known,
                "predicates": sorted(slice_.predicates),
                "live_rules": len(slice_.rules),
                "dead_rules": [str(r) for r in slice_.dead_rules],
            }
        return out


def analyze_program(rules: Sequence[Rule], facts: Iterable = (), *,
                    query: Union[str, None] = None,
                    semantic: bool = True) -> ProgramAnalysis:
    """Run all three static passes over one program."""
    facts = list(facts)
    proper = [r for r in rules if not r.is_fact]
    tractability = classify_program(proper, semantic=semantic)
    sizes = fact_sizes(facts) or None
    costs = {str(r): rule_cost(r, sizes=sizes) for r in proper}
    analysis = ProgramAnalysis(
        tractability=tractability,
        reachability=(query_slice(rules, query)
                      if query is not None else None),
        costs=costs,
        budget=predicted_cost(rules, facts,
                              period=tractability.period),
    )
    return analysis


__all__ = [
    "ProgramAnalysis", "analyze_program",
    "CLASSES", "PredicateBounds", "TractabilityReport",
    "classify_program", "is_persistence_rule", "persistence_predicates",
    "FANOUT", "TIME_FANOUT", "DEFAULT_WINDOW", "PlanCost", "StepChoice",
    "cost_order", "rule_cost", "fact_sizes", "predicted_cost",
    "ReachabilitySlice", "reachable_predicates", "query_slice",
    "prune_for_query",
]
