"""Lint checks backed by the static analyzer (TDD018–TDD021).

TDD018/TDD019 are *query-gated*: they only fire when the caller names a
query predicate (``repro lint --query`` / ``repro analyze --query``),
because without one every derived predicate is a potential query target
(exactly TDD013's caveat) and reachability flags nothing meaningful.
TDD020/TDD021 are program-level: they surface what the tractability
classification (:mod:`repro.analysis.static.classes`) found.
"""

from __future__ import annotations

from typing import Iterator

from ..checks import Check, LintContext, _rule_span, register
from ..diagnostics import Diagnostic


@register
class UnreachableRuleCheck(Check):
    code = "TDD018"
    name = "unreachable-rule"
    severity = "warning"
    description = ("With a query predicate given, a rule whose head the "
                   "query cannot reach can never contribute to the "
                   "answer.")
    paper = "query processing, Section 4"
    hint = "delete the rule, or query a predicate that depends on it"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        slice_ = ctx.reachability
        if slice_ is None:
            return
        if not (slice_.known or ctx.query in ctx.signature):
            return  # TDD019 reports the unknown query predicate
        for rule in slice_.dead_rules:
            yield self.diag(
                f"rule '{rule}' is unreachable from query predicate "
                f"{ctx.query}: its head {rule.head.pred} cannot "
                "contribute to the answer",
                _rule_span(rule))


@register
class UnreachableFromQueryCheck(Check):
    code = "TDD019"
    name = "unreachable-from-query"
    severity = "warning"
    description = ("With a query predicate given: the query predicate "
                   "never occurs, or database facts lie outside its "
                   "reachable slice.")
    paper = "query processing, Section 4"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        slice_ = ctx.reachability
        if slice_ is None:
            return
        if not (slice_.known or ctx.query in ctx.signature):
            yield self.diag(
                f"query predicate {ctx.query} never occurs in the "
                "program or database: every answer is empty",
                hint="check the predicate name for typos")
            return
        reachable = set(slice_.predicates)
        seen: set[str] = set()
        for fact in ctx.facts:
            pred = fact.pred
            if pred in reachable or pred in seen:
                continue
            seen.add(pred)
            yield self.diag(
                f"facts for predicate {pred} are unreachable from "
                f"query predicate {ctx.query}",
                fact.span,
                hint="prune them, or they are for a different query")


@register
class UnboundedOffsetCheck(Check):
    code = "TDD020"
    name = "unbounded-offset"
    severity = "warning"
    description = ("No static period bound: recursion advances the "
                   "temporal offset without a Section 5/6 tractability "
                   "certificate.")
    paper = "Theorems 3.1/5.1/6.5"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        report = ctx.tractability
        if report is None or report.klass != "unknown":
            return
        def advances(pred: str) -> bool:
            for rule in ctx.rules:
                head = rule.head
                if head.pred != pred or head.time is None \
                        or head.time.is_ground:
                    continue
                for atom in rule.body:
                    if atom.pred == pred and atom.time is not None \
                            and not atom.time.is_ground \
                            and head.time.offset != atom.time.offset:
                        return True
            return False

        marching = sorted(pred for pred, b in report.bounds.items()
                          if b.period is None and advances(pred))
        if not marching:
            return
        yield self.diag(
            "no static period bound: recursive temporal predicates "
            f"{marching} advance the temporal offset without a "
            "Section 5/6 certificate; the evaluation window may grow "
            "exponentially (Theorem 3.1)",
            hint="make the ruleset inflationary or multi-separable")


@register
class PersistenceHintCheck(Check):
    code = "TDD021"
    name = "persistence-hint"
    severity = "info"
    description = ("The Theorem 5.2 one-fact test failed for a "
                   "predicate; a persistence rule is the standard way "
                   "into the inflationary class.")
    paper = "Theorems 5.1/5.2"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        report = ctx.tractability
        if report is None or report.klass != "unknown":
            return
        if report.inflationary is not False or report.witness is None:
            return
        pred, missing = report.witness
        arity = ctx.signature.get(pred, (True, 0))[1]
        args = ", ".join(f"X{i}" for i in range(arity))
        inner = f"T, {args}" if args else "T"
        shifted = f"T+1, {args}" if args else "T+1"
        yield self.diag(
            f"predicate {pred} fails the Theorem 5.2 one-fact test "
            f"({missing} is not derived from {pred}(0, ...)); adding a "
            f"persistence rule '{pred}({shifted}) :- {pred}({inner}).' "
            "is the standard route into the inflationary class "
            "(tractable by Theorem 5.1)",
            hint="only add persistence if facts should survive forever")


__all__ = ["UnreachableRuleCheck", "UnreachableFromQueryCheck",
           "UnboundedOffsetCheck", "PersistenceHintCheck"]
