"""Diagnostic renderers: human text with caret excerpts, JSON, SARIF.

All three renderers consume :class:`~repro.analysis.engine.LintResult`
values (one per linted file) so that multi-file runs produce a single
consistent document.  The SARIF output follows the 2.1.0 schema consumed
by GitHub code scanning: one run, one rule entry per registered check,
one result per diagnostic with a physical location when the diagnostic
carries a span.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Sequence, Union

from ..lang.spans import Span
from .checks import REGISTRY, SORT_ERROR, SYNTAX_ERROR
from .diagnostics import Diagnostic, count_by_severity

if TYPE_CHECKING:  # pragma: no cover
    from .engine import LintResult

_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}

#: Name + severity of the parse-stage pseudo-checks, keyed by code.
_PARSE_STAGE = {
    SYNTAX_ERROR[0]: (SYNTAX_ERROR[1],
                      "The program text could not be parsed."),
    SORT_ERROR[0]: (SORT_ERROR[1],
                    "Temporal sorts or arities could not be resolved."),
}


def source_excerpt(source: str, span: Span, indent: str = "  ") -> str:
    """The offending source line with a caret underline.

    ::

        3 | p(T+1, X) :- q(T).
          |        ^^^^
    """
    lines = source.splitlines()
    if not 1 <= span.line <= len(lines):
        return ""
    text = lines[span.line - 1].replace("\t", " ")
    gutter = str(span.line)
    pad = " " * len(gutter)
    column = max(1, min(span.column, len(text) + 1))
    width = span.width
    if span.end_column is not None:
        width = max(1, min(span.end_column, len(text) + 1) - column)
    caret = " " * (column - 1) + "^" * width
    return (f"{indent}{gutter} | {text}\n"
            f"{indent}{pad} | {caret}")


def render_text(results: "Sequence[LintResult]",
                excerpts: bool = True) -> str:
    """The human format: one ``file:line:col`` header line per finding,
    followed by the underlined source excerpt, and a summary line."""
    out: list[str] = []
    diagnostics: list[Diagnostic] = []
    for result in results:
        for diagnostic in result.diagnostics:
            diagnostics.append(diagnostic)
            out.append(str(diagnostic))
            if excerpts and result.text and diagnostic.span is not None:
                excerpt = source_excerpt(result.text, diagnostic.span)
                if excerpt:
                    out.append(excerpt)
            if diagnostic.hint:
                out.append(f"  hint: {diagnostic.hint}")
    counts = count_by_severity(diagnostics)
    out.append(f"{counts['error']} error(s), {counts['warning']} "
               f"warning(s), {counts['info']} info")
    return "\n".join(out)


def _diagnostic_dict(diagnostic: Diagnostic) -> dict:
    data: dict = {
        "code": diagnostic.code,
        "name": diagnostic.name,
        "severity": diagnostic.severity,
        "message": diagnostic.message,
    }
    if diagnostic.span is not None:
        data["line"] = diagnostic.span.line
        data["column"] = diagnostic.span.column
        if diagnostic.span.end_column is not None:
            data["end_column"] = diagnostic.span.end_column
    if diagnostic.hint:
        data["hint"] = diagnostic.hint
    return data


def render_json(results: "Sequence[LintResult]") -> str:
    """A machine format mirroring the diagnostic objects one-to-one."""
    all_diagnostics = [d for r in results for d in r.diagnostics]
    document = {
        "files": [
            {
                "path": result.path,
                "diagnostics": [_diagnostic_dict(d)
                                for d in result.diagnostics],
            }
            for result in results
        ],
        "summary": count_by_severity(all_diagnostics),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _sarif_rules(used_codes: Iterable[str]) -> list[dict]:
    rules: list[dict] = []
    for code in sorted(set(used_codes)):
        if code in REGISTRY:
            check = REGISTRY[code]
            name, description = check.name, check.description
            level = _SARIF_LEVELS[check.severity]
            help_text = check.paper or None
        elif code in _PARSE_STAGE:
            name, description = _PARSE_STAGE[code]
            level, help_text = "error", None
        else:  # pragma: no cover - future codes
            name, description, level, help_text = code, "", "warning", None
        rule: dict = {
            "id": code,
            "name": name,
            "shortDescription": {"text": description or name},
            "defaultConfiguration": {"level": level},
        }
        if help_text:
            rule["help"] = {"text": f"Paper reference: {help_text}"}
        rules.append(rule)
    return rules


def _sarif_result(result: "LintResult", diagnostic: Diagnostic) -> dict:
    entry: dict = {
        "ruleId": diagnostic.code,
        "level": _SARIF_LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
    }
    location: dict = {
        "physicalLocation": {
            "artifactLocation": {"uri": result.path},
        }
    }
    if diagnostic.span is not None:
        region: dict = {
            "startLine": diagnostic.span.line,
            "startColumn": diagnostic.span.column,
        }
        if diagnostic.span.end_column is not None:
            region["endColumn"] = diagnostic.span.end_column
        location["physicalLocation"]["region"] = region
    entry["locations"] = [location]
    return entry


def render_sarif(results: "Sequence[LintResult]",
                 tool_version: Union[str, None] = None) -> str:
    """SARIF 2.1.0, suitable for GitHub code scanning upload."""
    if tool_version is None:
        from .. import __version__ as tool_version  # type: ignore
    used = [d.code for r in results for d in r.diagnostics]
    document = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": str(tool_version),
                        "informationUri":
                            "https://github.com/example/repro",
                        "rules": _sarif_rules(used),
                    }
                },
                "results": [
                    _sarif_result(result, diagnostic)
                    for result in results
                    for diagnostic in result.diagnostics
                ],
            }
        ],
    }
    return json.dumps(document, indent=2)
