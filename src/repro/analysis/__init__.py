"""Span-aware static diagnostics for TDD programs.

A pluggable lint framework in four layers:

* **spans** — the parser threads line/column info into every
  :class:`~repro.lang.atoms.Atom`, :class:`~repro.lang.atoms.Fact` and
  :class:`~repro.lang.rules.Rule` (see :mod:`repro.lang.spans`), so
  diagnostics point at ``file:line:col``;
* **checks** (:mod:`repro.analysis.checks`) — each check is a small
  registered class with a stable ``TDDnnn`` code, a severity and an
  optional fix hint; the built-ins cover range restriction, safety,
  stratifiability (with the actual negative cycle), singleton variables,
  duplicate/subsumed rules, arity/sort consistency, dead rules,
  unreachable and unused predicates, temporal-argument misuse, and the
  paper's tractable-class certifications (Theorems 5.2, 6.3, 6.5);
* **engine** (:mod:`repro.analysis.engine`) — code selection, the parse
  stage as ``TDD000``/``TDD001`` diagnostics, per-file driving;
* **renderers** (:mod:`repro.analysis.render`) — human text with
  caret-underlined excerpts, JSON, and SARIF 2.1.0 for GitHub code
  scanning.

The CLI surface is ``repro lint FILE...`` (``--format``, ``--select``,
``--ignore``, ``--max-severity``); ``repro analyze`` and
:func:`repro.core.analyze` run the same checks.
"""

from .checks import (REGISTRY, SORT_ERROR, SYNTAX_ERROR, Check,
                     LintContext, all_checks, register)
from .diagnostics import (SEVERITIES, Diagnostic, count_by_severity,
                          gate, max_severity, severity_rank)
from .engine import (LintResult, UnknownCodeError, lint_file, lint_text,
                     run_checks)
from .render import (render_json, render_sarif, render_text,
                     source_excerpt)
# The static analyzer registers the TDD018-TDD021 checks on import and
# re-exports the classification/reachability/cost API.
from .static import (ProgramAnalysis, TractabilityReport,
                     analyze_program, classify_program, cost_order,
                     predicted_cost, prune_for_query, query_slice)

__all__ = [
    "Diagnostic", "SEVERITIES", "severity_rank", "max_severity",
    "count_by_severity", "gate",
    "Check", "LintContext", "REGISTRY", "register", "all_checks",
    "SYNTAX_ERROR", "SORT_ERROR",
    "LintResult", "UnknownCodeError", "run_checks", "lint_text",
    "lint_file",
    "render_text", "render_json", "render_sarif", "source_excerpt",
    "ProgramAnalysis", "TractabilityReport", "analyze_program",
    "classify_program", "cost_order", "predicted_cost",
    "prune_for_query", "query_slice",
]
