"""Running the checks: selection, parse-stage diagnostics, file driver.

The engine is the glue between the check registry and its surfaces
(``repro lint``, ``repro analyze``, :func:`repro.core.analyze`):

* :func:`run_checks` runs (a selection of) the registered checks over an
  already-parsed program and returns sorted diagnostics;
* :func:`lint_text` / :func:`lint_file` additionally own the parse
  stage, converting :class:`~repro.lang.errors.ParseError` /
  ``SortError`` / ``ValidationError`` into span-carrying ``TDD000`` /
  ``TDD001`` diagnostics instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence, Union

from ..lang.atoms import Fact
from ..lang.errors import (LocatedError, ParseError, SortError,
                           ValidationError)
from ..lang.rules import Rule
from ..lang.sorts import parse_program
from ..lang.spans import Span
from .checks import (REGISTRY, SORT_ERROR, SYNTAX_ERROR, LintContext,
                     all_checks)
from .diagnostics import Diagnostic


@dataclass
class LintResult:
    """Everything the renderers need about one linted program."""

    path: str
    text: Union[str, None] = None
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]


class UnknownCodeError(ValueError):
    """A ``--select``/``--ignore`` argument named a code that is not
    registered (and is not a parse-stage code)."""


def _normalize_codes(codes: Union[Iterable[str], None],
                     what: str) -> Union[set[str], None]:
    if codes is None:
        return None
    known = set(REGISTRY) | {SYNTAX_ERROR[0], SORT_ERROR[0]}
    by_name = {REGISTRY[code].name: code for code in REGISTRY}
    by_name[SYNTAX_ERROR[1]] = SYNTAX_ERROR[0]
    by_name[SORT_ERROR[1]] = SORT_ERROR[0]
    out: set[str] = set()
    for code in codes:
        code = code.strip()
        if not code:
            continue
        canonical = code.upper() if code.upper() in known else \
            by_name.get(code.lower())
        if canonical is None:
            raise UnknownCodeError(
                f"unknown diagnostic code {code!r} in {what} "
                f"(known: {', '.join(sorted(known))})")
        out.add(canonical)
    return out


def _sort_key(diagnostic: Diagnostic):
    span = diagnostic.span
    return (span.line if span else 1 << 30,
            span.column if span else 1 << 30,
            diagnostic.code, diagnostic.message)


def run_checks(rules: Sequence[Rule], facts: Iterable[Fact] = (), *,
               path: Union[str, None] = None,
               source: Union[str, None] = None,
               select: Union[Iterable[str], None] = None,
               ignore: Union[Iterable[str], None] = None,
               query: Union[str, None] = None,
               context: Union[LintContext, None] = None
               ) -> list[Diagnostic]:
    """Run the registered checks over a parsed program.

    ``select`` restricts to the given codes (or check names); ``ignore``
    removes codes after selection.  ``query`` names the query predicate
    and arms the query-gated reachability checks (TDD018/TDD019).
    Diagnostics come back sorted by source position, then code.
    """
    selected = _normalize_codes(select, "--select")
    ignored = _normalize_codes(ignore, "--ignore") or set()
    if context is None:
        context = LintContext(rules, facts, path=path, source=source,
                              query=query)
    diagnostics: list[Diagnostic] = []
    for check in all_checks():
        if selected is not None and check.code not in selected:
            continue
        if check.code in ignored:
            continue
        diagnostics.extend(check.run(context))
    if path is not None:
        diagnostics = [
            Diagnostic(d.code, d.name, d.severity, d.message, d.span,
                       d.hint, path)
            for d in diagnostics
        ]
    diagnostics.sort(key=_sort_key)
    return diagnostics


def _parse_stage_diagnostic(exc: LocatedError, path: str,
                            code_name: "tuple[str, str]") -> Diagnostic:
    code, name = code_name
    span = (Span(exc.line, exc.column or 1)
            if exc.line is not None else None)
    return Diagnostic(code, name, "error", exc.bare_message, span,
                      None, path)


def lint_text(text: str, path: str = "<program>", *,
              select: Union[Iterable[str], None] = None,
              ignore: Union[Iterable[str], None] = None,
              query: Union[str, None] = None) -> LintResult:
    """Lint program text: parse-stage errors become diagnostics too.

    A program that fails to parse yields exactly one ``TDD000`` (syntax)
    or ``TDD001`` (sort/validation) diagnostic — the parser stops at the
    first error — and no check-stage diagnostics.
    """
    result = LintResult(path=path, text=text)
    try:
        program = parse_program(text, validate=False)
    except ParseError as exc:
        result.diagnostics.append(
            _parse_stage_diagnostic(exc, path, SYNTAX_ERROR))
        return result
    except (SortError, ValidationError) as exc:
        result.diagnostics.append(
            _parse_stage_diagnostic(exc, path, SORT_ERROR))
        return result
    result.diagnostics = run_checks(
        program.rules, program.facts, path=path, source=text,
        select=select, ignore=ignore, query=query)
    return result


def lint_file(path: "str | Path", *,
              select: Union[Iterable[str], None] = None,
              ignore: Union[Iterable[str], None] = None,
              query: Union[str, None] = None) -> LintResult:
    """Lint one ``.tdd`` file (raises OSError for unreadable paths)."""
    text = Path(path).read_text()
    return lint_text(text, str(path), select=select, ignore=ignore,
                     query=query)
