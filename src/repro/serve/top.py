"""``repro top`` — a live terminal dashboard over a running server.

Polls ``GET /stats`` on an interval and renders the numbers an
operator watches during load: request rate (QPS, from consecutive
counter deltas), cache hit ratio, latency percentiles from the
fixed-bucket histogram, and the degraded/error counts.  Against a
multi-process tier the frame grows a per-worker balance table (routed
share of the ring, per-worker QPS, hit ratio, restarts) plus the
front-end routing and collector summary lines.  Stdlib only
(``urllib``); a dead or restarted server shows up as a status line,
not a traceback.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import TextIO, Union

#: ANSI clear-screen + home, emitted between refreshes on a TTY.
CLEAR = "\x1b[2J\x1b[H"


class TopError(Exception):
    """The server could not be reached at all (first poll failed)."""


def fetch_stats(url: str, timeout: float = 5.0) -> dict:
    """One ``GET /stats`` round trip; raises :class:`TopError` on any
    transport or decoding failure."""
    try:
        with urllib.request.urlopen(url + "/stats",
                                    timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise TopError(f"cannot poll {url}/stats: {exc}") from exc


def _ratio(part: int, whole: int) -> str:
    return "-" if whole == 0 else f"{100.0 * part / whole:.1f}%"


def _workers_table(current: dict,
                   previous: Union[dict, None],
                   dt: Union[float, None]) -> list:
    """Per-worker rows of a tier's ``/stats`` (empty list when the
    server is single-process): routed share, per-worker QPS from the
    worker's own request-counter delta, and cache hit ratio —
    the balance view of the consistent-hash ring."""
    rows = current.get("workers")
    if not rows:
        return []
    before = {}
    if previous is not None:
        for row in previous.get("workers", []):
            before[row.get("id")] = row
    total_routed = sum(row.get("routed", 0) for row in rows) or 1
    lines = [
        "",
        f"{'worker':>6} {'state':<5} {'pid':>7} {'routed':>8} "
        f"{'share':>6} {'qps':>6} {'hit':>6} {'restarts':>8}",
    ]
    for row in rows:
        stats = row.get("stats") or {}
        serve = stats.get("serve", {})
        cache = stats.get("cache", {})
        qps = "-"
        prior = before.get(row.get("id"))
        if (prior is not None and dt and dt > 0
                and "stats" in prior):
            delta = (serve.get("requests", 0)
                     - prior["stats"].get("serve", {})
                            .get("requests", 0))
            qps = f"{delta / dt:.1f}"
        hits = (cache.get("mem_hits", 0)
                + cache.get("disk_hits", 0))
        hit = _ratio(hits, cache.get("lookups", 0))
        share = _ratio(row.get("routed", 0), total_routed)
        lines.append(
            f"{row.get('id', '?'):>6} "
            f"{'up' if row.get('up') else 'DOWN':<5} "
            f"{row.get('pid') or '-':>7} "
            f"{row.get('routed', 0):>8} {share:>6} {qps:>6} "
            f"{hit:>6} {row.get('restarts', 0):>8}")
    frontend = current.get("frontend", {})
    lines.append(
        f"frontend   forwards {frontend.get('forwards', 0)} | "
        f"retries {frontend.get('retries', 0)} | "
        f"unrouted {frontend.get('unrouted', 0)} | "
        f"workers up {frontend.get('workers_up', 0)}"
        f"/{frontend.get('workers', 0)}")
    collector = current.get("collector")
    if collector:
        lines.append(
            f"collector  traces {collector.get('traces', 0)} | "
            f"spans {collector.get('spans', 0)} | "
            f"ingests {collector.get('ingests', 0)} "
            f"(errors {collector.get('ingest_errors', 0)}) | "
            f"calibration "
            f"{collector.get('calibration_ratio', 0.0):.2f}x")
    return lines


def render(url: str, current: dict,
           previous: Union[dict, None] = None,
           dt: Union[float, None] = None) -> str:
    """One dashboard frame from a ``/stats`` snapshot (and, when
    available, the previous snapshot for rate computation)."""
    serve = current.get("serve", {})
    cache = current.get("cache", {})
    latency = current.get("latency", {})
    requests = serve.get("requests", 0)
    if previous is not None and dt and dt > 0:
        delta = requests - previous.get("serve", {}).get("requests", 0)
        qps = f"{delta / dt:.1f}"
    else:
        qps = "-"
    hits = cache.get("mem_hits", 0) + cache.get("disk_hits", 0)
    lookups = cache.get("lookups", 0)
    lines = [
        f"repro top — {url}",
        "",
        f"requests   {requests} total | {qps} QPS | "
        f"batches {serve.get('batches', 0)} "
        f"(max {serve.get('max_batch', 0)}) | "
        f"asks {serve.get('asks', 0)} "
        f"open {serve.get('open_queries', 0)}",
        f"cache      hit {_ratio(hits, lookups)} | "
        f"mem {cache.get('mem_hits', 0)} "
        f"disk {cache.get('disk_hits', 0)} "
        f"miss {cache.get('misses', 0)} | "
        f"entries {cache.get('memory_entries', 0)} | "
        f"corrupt {cache.get('corrupt', 0)}",
        f"latency    p50 {latency.get('p50', 0.0)}ms "
        f"p95 {latency.get('p95', 0.0)}ms "
        f"p99 {latency.get('p99', 0.0)}ms | "
        f"count {latency.get('count', 0)} | "
        f"sum {latency.get('sum_ms', 0.0)}ms",
        f"health     degraded {serve.get('degraded', 0)} | "
        f"errors {serve.get('errors', 0)} | "
        f"spec computes {serve.get('spec_computes', 0)} | "
        f"singleflight waits {serve.get('singleflight_waits', 0)}",
    ]
    lines.extend(_workers_table(current, previous, dt))
    return "\n".join(lines)


def run_top(url: str, out: TextIO, interval: float = 2.0,
            iterations: Union[int, None] = None,
            clock=time.monotonic, sleep=time.sleep) -> int:
    """The polling loop behind ``repro top``.

    ``iterations=None`` runs until Ctrl-C.  The first poll failing is
    an error (exit 2 from the CLI); later failures render a status
    line and keep polling, so a server restart does not kill the
    dashboard.
    """
    previous: Union[dict, None] = None
    previous_at: Union[float, None] = None
    count = 0
    clear = getattr(out, "isatty", lambda: False)()
    try:
        while iterations is None or count < iterations:
            if count > 0:
                sleep(interval)
            try:
                current = fetch_stats(url)
            except TopError as exc:
                if previous is None:
                    raise
                print(f"[{exc} — retrying]", file=out, flush=True)
                count += 1
                continue
            now = clock()
            dt = (None if previous_at is None
                  else now - previous_at)
            if clear:
                out.write(CLEAR)
            print(render(url, current, previous, dt), file=out,
                  flush=True)
            previous, previous_at = current, now
            count += 1
    except KeyboardInterrupt:
        pass
    return 0
