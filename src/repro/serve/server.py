"""HTTP front-end for the query service (stdlib only).

``repro serve`` binds a :class:`~http.server.ThreadingHTTPServer` whose
handler delegates to one shared :class:`~repro.serve.service.QueryService`
— the service's cache and single-flight machinery make the handler
threads safe to run concurrently.

JSON protocol (see docs/INTERNALS.md for the full schema):

* ``POST /query`` — body ``{"requests": [{"program", "query", "kind",
  "deadline", "expand"}, ...]}`` (or a single request object); responds
  ``{"responses": [...]}`` with one response per request, in order.
* ``GET /stats`` — serve + cache counters and the latency percentiles.
* ``GET /metrics`` — the same counters in Prometheus text format.
* ``GET /healthz`` — liveness probe with the package version and the
  trace schema version.

With collection on (a :class:`repro.serve.collect.Collector` attached):

* ``GET /trace`` — listing of retained traces; ``GET /trace/<id>`` —
  the assembled (cross-process, for a tier) span tree of one request.
* ``GET /profile`` — sliding-window per-rule profile plus the cost
  calibration table.

Malformed bodies get a 400, oversized bodies a 413 — both with a JSON
``{"error": ...}`` body and a correct ``Content-Length``; per-request
failures (parse errors, unknown kinds) are *not* transport errors —
they come back 200 with ``ok: false`` on the affected response, so one
bad request cannot poison a batch.

Telemetry
---------

Every request runs under a root span: a valid ``X-Repro-Trace-Id``
request header is honored (and echoed back on the response), otherwise
a fresh trace id is minted.  The service hangs its parse / cache /
spec-compute / answer child spans off that root, so one trace id ties
together the response JSON, the exported span events, and the
structured access log (:class:`AccessLog`, one JSON line per HTTP
request).  Requests slower than ``slow_ms`` additionally dump their
full span tree — the slow-query log.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import IO, Union

from .service import QueryRequest, QueryService

#: Largest accepted request body, a guard against unbounded reads.
MAX_BODY_BYTES = 8 * 1024 * 1024


class AccessLog:
    """Thread-safe JSON-lines access log (one object per line).

    Each record carries at least ``ts`` (epoch seconds), ``trace_id``,
    ``method``, ``path``, ``status`` and ``duration_ms``; ``/query``
    lines add the program key(s), request kind(s), cache state(s) and
    degraded/error counts.  Opened in append mode when given a path,
    so restarts extend rather than truncate the log — and line-buffered,
    with an explicit flush per record, so every line is on disk before
    :meth:`write` returns (tail -f works, and a crash loses nothing).
    """

    def __init__(self, target: Union[str, Path, IO[str]]):
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = open(target, "a", encoding="utf-8",
                                         buffering=1)
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self._lock = threading.Lock()
        self.lines = 0

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":"))
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()
            self.lines += 1

    def close(self) -> None:
        with self._lock:
            if self._owns_stream:
                self._stream.close()
            else:
                self._stream.flush()


class SpecServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryService`."""

    daemon_threads = True
    # The socketserver default backlog (5) drops connections under a
    # 16-thread client burst; queue them instead.
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], service: QueryService,
                 quiet: bool = True,
                 access_log: Union[AccessLog, None] = None,
                 slow_ms: Union[float, None] = None,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 worker_id: Union[int, None] = None,
                 collector=None):
        self.service = service
        self.telemetry = service.telemetry
        self.quiet = quiet
        self.access_log = access_log
        self.slow_ms = slow_ms
        self.max_body_bytes = max_body_bytes
        #: Set when this server is one worker of a multi-process tier
        #: (``repro serve --workers N``); surfaces in ``/healthz``.
        self.worker_id = worker_id
        #: Optional :class:`repro.serve.collect.Collector`.  When set,
        #: ``GET /trace/<id>`` and ``GET /profile`` are served, and the
        #: collector's block/series join ``/stats`` and ``/metrics``.
        self.collector = collector
        super().__init__(address, _Handler)

    # -- endpoint payloads (overridden by the front-end) -----------------

    def health_payload(self) -> dict:
        from .. import __version__
        from ..obs.trace import TRACE_SCHEMA
        payload = {"ok": True, "version": __version__,
                   "trace_schema": TRACE_SCHEMA}
        if self.worker_id is not None:
            payload["worker"] = self.worker_id
        return payload

    def stats_dict(self) -> dict:
        stats = self.service.stats_dict()
        if self.collector is not None:
            stats["collector"] = self.collector.counters()
        return stats

    def prometheus_text(self) -> str:
        from .service import render_prometheus
        extra = ([] if self.collector is None
                 else self.collector.prometheus_lines())
        return render_prometheus(self.service.counters(),
                                 self.service.cache.counters(),
                                 self.service.latency,
                                 extra_lines=extra)


class _Handler(BaseHTTPRequestHandler):
    server: SpecServer

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes, content_type: str,
              close: bool = False) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None:
            self.send_header("X-Repro-Trace-Id", trace_id)
        if close:
            # The request body was refused unread; the connection
            # cannot be reused.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _reply(self, status: int, payload: dict,
               close: bool = False) -> int:
        self._send(status, json.dumps(payload).encode("utf-8"),
                   "application/json", close=close)
        return status

    def _reply_text(self, status: int, text: str,
                    content_type: str) -> int:
        self._send(status, text.encode("utf-8"), content_type)
        return status

    # -- request lifecycle (span + access log + slow log) ----------------

    def _observed(self, method: str) -> None:
        telemetry = self.server.telemetry
        root = telemetry.root(
            "http.request",
            trace_id=self.headers.get("X-Repro-Trace-Id"),
            parent_id=self.headers.get("X-Repro-Parent-Span"),
            method=method, path=self.path)
        self._trace_id = root.trace_id
        self._log_extra: dict = {}
        status = 500
        try:
            if method == "GET":
                status = self._route_get(root)
            else:
                status = self._route_post(root)
        finally:
            root.set_attribute("status", status)
            duration_ms = root.end()
            self._record(method, status, duration_ms, root)

    def _record(self, method: str, status: int, duration_ms: float,
                root) -> None:
        log = self.server.access_log
        if log is not None:
            record = {
                "ts": round(time.time(), 3),
                "trace_id": root.trace_id,
                "method": method,
                "path": self.path,
                "status": status,
                "duration_ms": round(duration_ms, 3),
            }
            record.update(self._log_extra)
            log.write(record)
        slow_ms = self.server.slow_ms
        if slow_ms is not None and duration_ms >= slow_ms:
            slow = {
                "slow_query": True,
                "trace_id": root.trace_id,
                "duration_ms": round(duration_ms, 3),
                "threshold_ms": slow_ms,
                "spans": root.tree(),
            }
            if log is not None:
                log.write(slow)
            else:
                print(json.dumps(slow, sort_keys=True,
                                 separators=(",", ":")),
                      file=sys.stderr, flush=True)

    # -- routes -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server convention
        self._observed("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server convention
        self._observed("POST")

    def _route_get(self, root) -> int:
        if self.path == "/healthz":
            return self._reply(200, self.server.health_payload())
        if self.path == "/stats":
            return self._reply(200, self.server.stats_dict())
        if self.path == "/metrics":
            return self._reply_text(
                200, self.server.prometheus_text(),
                "text/plain; version=0.0.4; charset=utf-8")
        collector = getattr(self.server, "collector", None)
        if collector is not None:
            if self.path == "/profile":
                return self._reply(200, collector.profile_payload())
            if self.path == "/trace":
                return self._reply(200, collector.traces_payload())
            if self.path.startswith("/trace/"):
                return self._route_trace(collector,
                                         self.path[len("/trace/"):])
        return self._reply(404,
                           {"error": f"unknown path {self.path!r}"})

    def _route_trace(self, collector, trace_id: str) -> int:
        from ..obs.telemetry import valid_trace_id
        trace_id = trace_id.lower()
        if not valid_trace_id(trace_id):
            return self._reply(
                400, {"error": "a trace id is 8-64 hex characters"})
        tree = collector.trace_payload(trace_id)
        if tree is None:
            return self._reply(
                404, {"error": f"no retained trace {trace_id!r} "
                               "(the store is a bounded ring)"})
        return self._reply(200, tree)

    def _read_batch(self):
        """Read and validate a ``/query`` body.

        Returns ``(raw_items, requests)`` on success, or the int
        status of the error reply already sent.  ``raw_items`` are the
        verbatim request dictionaries (the front-end forwards those to
        workers unchanged); ``requests`` the validated
        :class:`QueryRequest` objects in the same order.
        """
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            return self._reply(400,
                               {"error": "unreadable Content-Length"})
        if length < 0:
            return self._reply(
                400, {"error": f"negative Content-Length {length}"})
        if length > self.server.max_body_bytes:
            # Refused before reading: the body stays on the wire, so
            # the reply must close the connection.
            return self._reply(413, {
                "error": f"request body of {length} bytes exceeds "
                         f"the {self.server.max_body_bytes} byte "
                         "limit"}, close=True)
        try:
            data = json.loads(self.rfile.read(length) or b"{}")
            if isinstance(data, dict) and "requests" in data:
                raw = data["requests"]
            else:
                raw = [data]
            if not isinstance(raw, list) or not raw:
                raise ValueError(
                    "body must be a request object or "
                    "{'requests': [non-empty list]}")
            requests = [QueryRequest.from_dict(item) for item in raw]
        except (ValueError, TypeError) as exc:
            return self._reply(400, {"error": str(exc)})
        return raw, requests

    def _route_post(self, root) -> int:
        if self.path not in ("/query", "/"):
            return self._reply(
                404, {"error": f"unknown path {self.path!r}"})
        parsed = self._read_batch()
        if isinstance(parsed, int):
            return parsed
        raw, requests = parsed
        return self._handle_batch(raw, requests, root)

    def _handle_batch(self, raw: list, requests, root) -> int:
        responses = self.server.service.serve_batch(requests,
                                                    parent=root)
        self._log_extra = _summarize(responses)
        return self._reply(200, {"responses": [r.to_dict()
                                               for r in responses]})


def _summarize(responses) -> dict:
    """The per-request fields of a ``/query`` access-log line.

    Scalar for the common singleton batch, lists otherwise.
    """
    keys = [None if r.key is None else r.key[:12] for r in responses]
    kinds = [r.kind for r in responses]
    sources = [("degraded" if r.degraded else r.source)
               for r in responses]
    summary = {
        "n": len(responses),
        "degraded": sum(1 for r in responses if r.degraded),
        "errors": sum(1 for r in responses if not r.ok),
    }
    if len(responses) == 1:
        summary.update(program=keys[0], kind=kinds[0],
                       cache=sources[0])
    else:
        summary.update(program=keys, kind=kinds, cache=sources)
    return summary


def make_server(service: QueryService, host: str = "127.0.0.1",
                port: int = 0, quiet: bool = True,
                access_log: Union[AccessLog, None] = None,
                slow_ms: Union[float, None] = None,
                max_body_bytes: int = MAX_BODY_BYTES,
                worker_id: Union[int, None] = None,
                collector=None) -> SpecServer:
    """Bind (but do not run) a server; ``port=0`` picks a free port."""
    return SpecServer((host, port), service, quiet=quiet,
                      access_log=access_log, slow_ms=slow_ms,
                      max_body_bytes=max_body_bytes,
                      worker_id=worker_id, collector=collector)
