"""HTTP front-end for the query service (stdlib only).

``repro serve`` binds a :class:`~http.server.ThreadingHTTPServer` whose
handler delegates to one shared :class:`~repro.serve.service.QueryService`
— the service's cache and single-flight machinery make the handler
threads safe to run concurrently.

JSON protocol (see docs/INTERNALS.md for the full schema):

* ``POST /query`` — body ``{"requests": [{"program", "query", "kind",
  "deadline", "expand"}, ...]}`` (or a single request object); responds
  ``{"responses": [...]}`` with one response per request, in order.
* ``GET /stats`` — serve + cache counters.
* ``GET /healthz`` — liveness probe, ``{"ok": true}``.

Malformed bodies get a 400 with ``{"error": ...}``; per-request failures
(parse errors, unknown kinds) are *not* transport errors — they come
back 200 with ``ok: false`` on the affected response, so one bad request
cannot poison a batch.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .service import QueryRequest, QueryService

#: Largest accepted request body, a guard against unbounded reads.
MAX_BODY_BYTES = 8 * 1024 * 1024


class SpecServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: QueryService,
                 quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server: SpecServer

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        if not self.server.quiet:
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length < 0 or length > MAX_BODY_BYTES:
            raise ValueError(f"request body of {length} bytes refused")
        return self.rfile.read(length)

    # -- routes -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server convention
        if self.path == "/healthz":
            self._reply(200, {"ok": True})
        elif self.path == "/stats":
            self._reply(200, self.server.service.stats_dict())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server convention
        if self.path not in ("/query", "/"):
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            data = json.loads(self._read_body() or b"{}")
            if isinstance(data, dict) and "requests" in data:
                raw = data["requests"]
            else:
                raw = [data]
            if not isinstance(raw, list) or not raw:
                raise ValueError(
                    "body must be a request object or "
                    "{'requests': [non-empty list]}")
            requests = [QueryRequest.from_dict(item) for item in raw]
        except (ValueError, TypeError) as exc:
            self._reply(400, {"error": str(exc)})
            return
        responses = self.server.service.serve_batch(requests)
        self._reply(200, {"responses": [r.to_dict() for r in responses]})


def make_server(service: QueryService, host: str = "127.0.0.1",
                port: int = 0, quiet: bool = True) -> SpecServer:
    """Bind (but do not run) a server; ``port=0`` picks a free port."""
    return SpecServer((host, port), service, quiet=quiet)
