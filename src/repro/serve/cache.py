"""Content-addressed persistent cache of relational specifications.

Theorem 4.1 makes the specification ``S(Z∧D) = (T, B, W)`` the unit of
work worth paying for once: computing it costs a full BT run, while every
query afterwards is answered from the finite object in polynomial time.
This module turns that observation into infrastructure — a cache keyed by
the *content* of the TDD, so that any process (or any later run) that
sees the same program + database reuses the spec instead of recomputing.

Keys
----

The cache key is the SHA-256 hex digest of the *normalized* program
text: :func:`repro.lang.format_program` renders rules, sorted facts, and
``@temporal`` declarations deterministically, so two TDDs with the same
rules and facts (in any order, any whitespace) share a key, and any
change to either part changes it.  See :func:`program_key`.

Storage
-------

Two layers, checked in order:

* an in-process LRU dictionary (``memory_size`` entries, thread-safe);
* a SQLite table ``specs(key, format, created, payload)`` living beside
  the fact store of :mod:`repro.storage.sqlite_store` (``path=None``
  keeps the cache purely in-memory).

Payloads are the JSON of :func:`repro.core.serialize.spec_to_dict`.  A
row whose payload fails to decode, or whose ``format`` does not match
the current :data:`repro.core.serialize.FORMAT_VERSION`, is treated as a
clean miss: the row is deleted and the spec recomputed — corruption and
version skew can never surface as a crash or a stale answer.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Union

from ..core.serialize import FORMAT_VERSION, spec_from_dict, spec_to_dict
from ..core.spec import RelationalSpec
from ..lang.atoms import Fact
from ..lang.pretty import format_program
from ..lang.rules import Rule

#: Sources a cache hit can come from (reported in responses and stats).
MEMORY = "memory"
DISK = "disk"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS specs (
    key TEXT PRIMARY KEY,
    format INTEGER NOT NULL,
    created REAL NOT NULL,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS flights (
    key TEXT PRIMARY KEY,
    owner TEXT NOT NULL,
    expires REAL NOT NULL
);
"""

#: Default lifetime of a cross-process flight lease (seconds).  Long
#: enough for any sane spec computation; short enough that a worker
#: SIGKILLed mid-compute only stalls its peers briefly before one of
#: them takes the claim over.
FLIGHT_TTL = 30.0


def normalized_program(rules: Iterable[Rule], facts: Iterable[Fact],
                       temporal_preds: Iterable[str] = ()) -> str:
    """The canonical text a cache key is derived from."""
    proper = [r for r in rules if not r.is_fact]
    return format_program(proper, facts, temporal_preds)


def program_key(rules: Iterable[Rule], facts: Iterable[Fact],
                temporal_preds: Iterable[str] = ()) -> str:
    """SHA-256 content key of a TDD (hex digest).

    Derived from :func:`normalized_program`, so ordering and whitespace
    differences do not split the cache, while any semantic change to the
    rules or the database yields a fresh key.
    """
    text = normalized_program(rules, facts, temporal_preds)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def tdd_key(tdd) -> str:
    """Content key of a :class:`repro.core.tdd.TDD`."""
    return program_key(tdd.rules, tdd.database.facts(),
                       tdd.temporal_preds)


class SpecCache:
    """Two-layer (LRU + SQLite) specification cache, thread-safe.

    All counters are plain ints guarded by the instance lock;
    :meth:`counters` snapshots them for stats reporting.  ``lookups``
    always equals ``mem_hits + disk_hits + misses``.
    """

    def __init__(self, path: Union[str, Path, None] = None,
                 memory_size: int = 64):
        if memory_size < 1:
            raise ValueError("memory_size must be at least 1")
        self.path = None if path is None else Path(path)
        self.memory_size = memory_size
        self._memory: OrderedDict[str, RelationalSpec] = OrderedDict()
        self._lock = threading.Lock()
        self.lookups = 0
        self.mem_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0
        self.corrupt = 0
        self.flights_claimed = 0
        self.flights_rejected = 0

    # -- SQLite layer ----------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        assert self.path is not None
        connection = sqlite3.connect(str(self.path))
        connection.executescript(_SCHEMA)
        return connection

    def _corrupt(self, parent, reason: str) -> None:
        """Count a corruption event; record a span when traced."""
        self.corrupt += 1
        if parent is not None:
            parent.child("cache.corrupt", reason=reason).end()

    def _disk_get(self, key: str,
                  parent=None) -> Union[RelationalSpec, None]:
        if self.path is None:
            return None
        try:
            connection = self._connect()
        except sqlite3.Error:
            self._corrupt(parent, "sqlite-error")
            return None
        try:
            row = connection.execute(
                "SELECT format, payload FROM specs WHERE key = ?",
                (key,)).fetchone()
            if row is None:
                return None
            fmt, payload = row
            if fmt != FORMAT_VERSION:
                # Version skew: drop the row, report a miss.
                connection.execute("DELETE FROM specs WHERE key = ?",
                                   (key,))
                connection.commit()
                self._corrupt(parent, "version-skew")
                return None
            try:
                spec = spec_from_dict(json.loads(payload))
            except (ValueError, KeyError, TypeError):
                # Truncated or garbage payload: same treatment.
                connection.execute("DELETE FROM specs WHERE key = ?",
                                   (key,))
                connection.commit()
                self._corrupt(parent, "garbage-payload")
                return None
            return spec
        except sqlite3.Error:
            self._corrupt(parent, "sqlite-error")
            return None
        finally:
            connection.close()

    def _disk_put(self, key: str, spec: RelationalSpec) -> None:
        if self.path is None:
            return
        payload = json.dumps(spec_to_dict(spec))
        try:
            connection = self._connect()
        except sqlite3.Error:
            # An unusable cache file must not take query serving down;
            # the LRU layer still holds the entry for this process.
            self.corrupt += 1
            return
        try:
            connection.execute(
                "INSERT OR REPLACE INTO specs "
                "(key, format, created, payload) VALUES (?, ?, ?, ?)",
                (key, FORMAT_VERSION, time.time(), payload))
            connection.commit()
        except sqlite3.Error:
            self.corrupt += 1
        finally:
            connection.close()

    # -- the public two-layer API ---------------------------------------

    def _remember(self, key: str, spec: RelationalSpec) -> None:
        self._memory[key] = spec
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_size:
            self._memory.popitem(last=False)
            self.evictions += 1

    def get(self, key: str,
            parent=None) -> Union[RelationalSpec, None]:
        """Look a key up; None on a miss.  Disk hits warm the LRU."""
        spec, _ = self.get_with_source(key, parent=parent)
        return spec

    def get_with_source(self, key: str, parent=None) -> tuple[
            Union[RelationalSpec, None], Union[str, None]]:
        """Like :meth:`get`, but also says which layer answered.

        ``parent`` is an optional :class:`repro.obs.Span`: when given,
        the lookup (and any corruption it uncovers) is recorded as a
        ``cache.lookup`` child span with an ``outcome`` attribute.
        """
        span = (None if parent is None
                else parent.child("cache.lookup", key=key[:12]))
        try:
            with self._lock:
                self.lookups += 1
                cached = self._memory.get(key)
                if cached is not None:
                    self._memory.move_to_end(key)
                    self.mem_hits += 1
                    if span is not None:
                        span.set_attribute("outcome", MEMORY)
                    return cached, MEMORY
                spec = self._disk_get(key, parent=span)
                if spec is not None:
                    self.disk_hits += 1
                    self._remember(key, spec)
                    if span is not None:
                        span.set_attribute("outcome", DISK)
                    return spec, DISK
                self.misses += 1
                if span is not None:
                    span.set_attribute("outcome", "miss")
                return None, None
        finally:
            if span is not None:
                span.end()

    def put(self, key: str, spec: RelationalSpec) -> None:
        """Store a spec in both layers."""
        with self._lock:
            self.stores += 1
            self._remember(key, spec)
            self._disk_put(key, spec)

    # -- cross-process single-flight leases ------------------------------

    def try_claim(self, key: str, owner: str,
                  ttl: float = FLIGHT_TTL) -> bool:
        """Claim the cross-process flight lease for ``key``.

        Returns True when this ``owner`` now holds (or already held)
        the lease — the caller should compute the spec and
        :meth:`release_claim` afterwards.  False means another live
        process owns an unexpired lease: the caller should poll
        :meth:`get` for that process's result instead of duplicating
        the BT run.

        The lease is advisory and *fail-open*: a memory-only cache, a
        broken cache file, or any SQLite error grants the claim — at
        worst two processes compute the same spec and the
        ``INSERT OR REPLACE`` of :meth:`put` converges them to one
        row.  Correctness never depends on the lease; only duplicate
        work does.
        """
        if self.path is None:
            return True
        now = time.time()
        try:
            connection = self._connect()
        except sqlite3.Error:
            return True
        try:
            connection.execute("BEGIN IMMEDIATE")
            row = connection.execute(
                "SELECT owner, expires FROM flights WHERE key = ?",
                (key,)).fetchone()
            if row is not None and row[0] != owner and row[1] > now:
                connection.rollback()
                with self._lock:
                    self.flights_rejected += 1
                return False
            connection.execute(
                "INSERT OR REPLACE INTO flights (key, owner, expires) "
                "VALUES (?, ?, ?)", (key, owner, now + ttl))
            connection.commit()
            with self._lock:
                self.flights_claimed += 1
            return True
        except sqlite3.Error:
            return True
        finally:
            connection.close()

    def release_claim(self, key: str, owner: str) -> None:
        """Drop ``owner``'s flight lease on ``key`` (idempotent)."""
        if self.path is None:
            return
        try:
            connection = self._connect()
        except sqlite3.Error:
            return
        try:
            connection.execute(
                "DELETE FROM flights WHERE key = ? AND owner = ?",
                (key, owner))
            connection.commit()
        except sqlite3.Error:
            pass
        finally:
            connection.close()

    def invalidate(self, key: str) -> bool:
        """Drop one entry from both layers; True when anything was
        present."""
        with self._lock:
            present = self._memory.pop(key, None) is not None
            if self.path is not None:
                connection = self._connect()
                try:
                    cursor = connection.execute(
                        "DELETE FROM specs WHERE key = ?", (key,))
                    connection.commit()
                    present = present or cursor.rowcount > 0
                finally:
                    connection.close()
            if present:
                self.invalidations += 1
            return present

    def clear(self) -> int:
        """Drop every entry; returns how many persistent rows died."""
        with self._lock:
            self._memory.clear()
            removed = 0
            if self.path is not None:
                connection = self._connect()
                try:
                    cursor = connection.execute("DELETE FROM specs")
                    connection.commit()
                    removed = cursor.rowcount
                finally:
                    connection.close()
            self.invalidations += removed
            return removed

    # -- introspection ---------------------------------------------------

    def entries(self) -> list[dict]:
        """Persistent rows as dictionaries (for ``repro cache ls``)."""
        if self.path is None:
            with self._lock:
                return [{"key": key, "format": FORMAT_VERSION,
                         "created": None, "bytes": None, "layer": MEMORY}
                        for key in self._memory]
        connection = self._connect()
        try:
            rows = connection.execute(
                "SELECT key, format, created, LENGTH(payload) "
                "FROM specs ORDER BY created").fetchall()
        finally:
            connection.close()
        return [{"key": key, "format": fmt, "created": created,
                 "bytes": size, "layer": DISK}
                for key, fmt, created, size in rows]

    def counters(self) -> dict:
        """A snapshot of the hit/miss accounting, JSON-ready."""
        with self._lock:
            return {
                "lookups": self.lookups,
                "mem_hits": self.mem_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "corrupt": self.corrupt,
                "flights_claimed": self.flights_claimed,
                "flights_rejected": self.flights_rejected,
                "memory_entries": len(self._memory),
            }

    def __repr__(self) -> str:
        where = "memory" if self.path is None else str(self.path)
        return (f"SpecCache({where}, {len(self._memory)}/"
                f"{self.memory_size} in LRU)")
