"""Worker processes for the multi-process serving tier.

``repro serve --workers N`` splits serving across processes so the warm
query path scales with cores instead of being capped by one
interpreter's GIL: a front-end (:mod:`repro.serve.router`) owns the
listening socket and consistent-hash routes each request's program key
to one of N *worker* processes, each running the ordinary
single-process :class:`~repro.serve.server.SpecServer` on a private
loopback port.

This module is both the supervisor half (:class:`WorkerPool`, which
spawns, watches, and respawns the children) and the child entry point
(``python -m repro.serve.workers``, :func:`worker_main`).

Lifecycle
---------

* **Spawn** — the pool launches ``sys.executable -m repro.serve.workers
  --worker-id I ...`` with the repro package directory forced onto
  ``PYTHONPATH``.  The child binds port 0, prints one
  ``REPRO-WORKER-READY port=P pid=Q`` line on stdout, and serves; the
  parent parses that line for the port.  Ports are never configured,
  so two tiers (or a respawn racing an old socket) cannot collide.
* **Supervise** — a daemon thread polls every worker: an exited
  process, or one the front-end reported unreachable, is killed (if
  needed) and respawned under the *same worker id* — the hash ring is
  keyed by id, so a respawned worker takes back exactly its old key
  range.  Respawns increment per-worker and pool ``restarts`` counters
  (surfaced in ``/stats`` and as ``repro_worker_restarts_total``).
  A reported-down worker that still answers ``/healthz`` is marked
  back up without a restart — a slow response must not trigger a
  bounce loop.
* **Die with the parent** — each child runs a watchdog thread that
  exits the process the moment ``os.getppid()`` changes, so a killed
  front-end can never leak a worker tier.
"""

from __future__ import annotations

import http.client
import os
import select
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Union

#: Handshake line prefix a worker prints once its server is bound.
READY_PREFIX = "REPRO-WORKER-READY"

#: Longest the pool waits for a spawned worker's handshake (seconds).
SPAWN_TIMEOUT = 60.0

#: Supervisor poll interval (seconds).  Failure reports from the
#: front-end wake the supervisor immediately; this is only the cadence
#: at which silent crashes are noticed.
SUPERVISE_INTERVAL = 0.25


class WorkerError(RuntimeError):
    """A worker process could not be spawned or handshaken."""


@dataclass(frozen=True)
class WorkerConfig:
    """Service knobs every worker of a tier shares.

    ``cache`` is the path of the *shared* SQLite spec cache — the
    cross-process layer that makes any worker able to answer any key
    (after rerouting) without recomputing what another worker already
    stored.  ``None`` leaves each worker with a private in-memory
    cache: still correct, but a respawned worker starts cold.
    """

    cache: Union[str, None] = None
    engine: str = "bt"
    deadline: Union[float, None] = None
    max_predicted_cost: Union[float, None] = None
    #: URL of the front-end's ``POST /ingest`` endpoint.  When set the
    #: worker runs a :class:`~repro.serve.collect.CollectorClient`
    #: shipping spans, sampled derive events, and per-rule metric
    #: windows there every ``collect_interval`` seconds.  Set via
    #: :meth:`WorkerPool.set_collect_url` once the front-end knows its
    #: port (the front-end binds before the pool starts).
    collect_url: Union[str, None] = None
    collect_interval: float = 1.0


def _worker_command(worker_id: int, config: WorkerConfig) -> list:
    # -c rather than -m: runpy would import the repro.serve package
    # first and then warn about re-executing this module inside it.
    entry = ("from repro.serve.workers import worker_main; "
             "raise SystemExit(worker_main())")
    command = [sys.executable, "-c", entry,
               "--worker-id", str(worker_id),
               "--engine", config.engine]
    if config.cache:
        command += ["--cache", str(config.cache)]
    if config.deadline is not None:
        command += ["--deadline", str(config.deadline)]
    if config.max_predicted_cost is not None:
        command += ["--max-predicted-cost",
                    str(config.max_predicted_cost)]
    if config.collect_url:
        command += ["--collect-url", config.collect_url,
                    "--collect-interval", str(config.collect_interval)]
    return command


def _worker_env() -> dict:
    """The child's environment: inherit, plus the package on the path.

    The parent may have imported ``repro`` via a relative
    ``PYTHONPATH=src`` or an installed copy — the child must resolve
    the same package regardless of its working directory, so the
    package's parent directory is prepended explicitly.
    """
    env = os.environ.copy()
    package_parent = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if package_parent not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (package_parent + os.pathsep + existing
                             if existing else package_parent)
    return env


class WorkerProcess:
    """One supervised child: its process handle, port, and counters."""

    def __init__(self, worker_id: int, config: WorkerConfig):
        self.id = worker_id
        self.config = config
        self.proc: Union[subprocess.Popen, None] = None
        self.port: Union[int, None] = None
        #: Bumped on every (re)spawn; failure reports carry the
        #: generation they saw, so a report about a worker that was
        #: already respawned is ignored as stale.
        self.generation = 0
        self.restarts = 0
        #: Set by the front-end when a forward to this worker failed;
        #: cleared on respawn (or by a passing health check).
        self.down = False

    # -- lifecycle -------------------------------------------------------

    def spawn(self) -> None:
        """Start the child and wait for its READY handshake."""
        self._close_pipe()
        self.proc = subprocess.Popen(
            _worker_command(self.id, self.config),
            stdout=subprocess.PIPE, text=True, env=_worker_env())
        deadline = time.monotonic() + SPAWN_TIMEOUT
        line = ""
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise WorkerError(
                    f"worker {self.id} exited with status "
                    f"{self.proc.returncode} before its handshake")
            ready, _, _ = select.select([self.proc.stdout], [], [], 0.1)
            if ready:
                line = self.proc.stdout.readline()
                break
        fields = dict(part.split("=", 1)
                      for part in line.split()[1:]) \
            if line.startswith(READY_PREFIX) else None
        if not fields or "port" not in fields:
            self.kill()
            raise WorkerError(
                f"worker {self.id} printed {line!r} instead of a "
                f"'{READY_PREFIX} port=...' handshake")
        self.port = int(fields["port"])
        self.generation += 1
        self.down = False

    def _close_pipe(self) -> None:
        if self.proc is not None and self.proc.stdout is not None:
            self.proc.stdout.close()

    def kill(self) -> None:
        """Stop the child (TERM, then KILL); reap it."""
        if self.proc is None:
            return
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()
        self._close_pipe()

    # -- state -----------------------------------------------------------

    @property
    def alive(self) -> bool:
        """Routable: handshaken and not known-down.

        Deliberately *not* a ``proc.poll()`` check: routability flips
        only through the supervisor (which does poll, and respawns)
        or a failure report.  The front-end therefore keeps routing
        to a silently crashed worker until a forward actually fails —
        making the failure path (one retried request) the single,
        deterministic degradation mode instead of a race between
        poll timing and request timing.
        """
        return (self.proc is not None and self.port is not None
                and not self.down)

    @property
    def pid(self) -> Union[int, None]:
        return None if self.proc is None else self.proc.pid

    def healthy(self, timeout: float = 2.0) -> bool:
        """One ``/healthz`` probe against the worker's current port."""
        if (self.proc is None or self.proc.poll() is not None
                or self.port is None):
            return False
        connection = http.client.HTTPConnection("127.0.0.1", self.port,
                                                timeout=timeout)
        try:
            connection.request("GET", "/healthz")
            return connection.getresponse().status == 200
        except OSError:
            return False
        finally:
            connection.close()

    def describe(self) -> dict:
        """The worker's row in the front-end's ``/stats``."""
        return {"id": self.id, "port": self.port, "pid": self.pid,
                "up": self.alive, "generation": self.generation,
                "restarts": self.restarts}


class WorkerPool:
    """N supervised workers plus the respawn loop.

    Thread-safe: the front-end's handler threads call
    :meth:`alive_ids`, :meth:`snapshot` and :meth:`report_failure`
    concurrently with the supervisor thread's respawns.
    """

    def __init__(self, size: int,
                 config: Union[WorkerConfig, None] = None,
                 supervise_interval: float = SUPERVISE_INTERVAL):
        if size < 1:
            raise ValueError("a worker pool needs at least 1 worker")
        self.config = config if config is not None else WorkerConfig()
        self.workers = [WorkerProcess(i, self.config)
                        for i in range(size)]
        self.supervise_interval = supervise_interval
        self.restarts = 0
        self._lock = threading.RLock()
        self._wake = threading.Event()
        self._closed = False
        self._thread: Union[threading.Thread, None] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Spawn every worker, then start the supervisor thread."""
        try:
            for worker in self.workers:
                worker.spawn()
        except WorkerError:
            self.close()
            raise
        self._thread = threading.Thread(target=self._supervise,
                                        name="repro-worker-supervisor",
                                        daemon=True)
        self._thread.start()
        return self

    def set_collect_url(self, url: Union[str, None],
                        interval: Union[float, None] = None) -> None:
        """Point every worker's collection client at ``url``.

        Call *before* :meth:`start`: the URL lands in the spawn command
        line, and respawned workers inherit it automatically (each
        :class:`WorkerProcess` keeps its own config).  On an
        already-started pool only future respawns pick it up.
        """
        import dataclasses
        changes: dict = {"collect_url": url}
        if interval is not None:
            changes["collect_interval"] = interval
        with self._lock:
            self.config = dataclasses.replace(self.config, **changes)
            for worker in self.workers:
                worker.config = dataclasses.replace(worker.config,
                                                    **changes)

    def close(self) -> None:
        """Stop supervision and terminate every worker."""
        self._closed = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
        with self._lock:
            for worker in self.workers:
                worker.kill()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- supervision -----------------------------------------------------

    def _supervise(self) -> None:
        while not self._closed:
            self._wake.wait(self.supervise_interval)
            self._wake.clear()
            if self._closed:
                return
            with self._lock:
                for worker in self.workers:
                    if self._closed:
                        return
                    dead = (worker.proc is None
                            or worker.proc.poll() is not None)
                    if not dead and not worker.down:
                        continue
                    if not dead and worker.healthy():
                        # Reported down but answering: a transient
                        # failure, not a crash — no bounce.
                        worker.down = False
                        continue
                    worker.kill()
                    try:
                        worker.spawn()
                    except WorkerError:
                        # Spawn failed (e.g. fork pressure): leave the
                        # worker down; the next tick retries.
                        worker.down = True
                        continue
                    worker.restarts += 1
                    self.restarts += 1

    def report_failure(self, worker_id: int, generation: int) -> None:
        """The front-end saw a connection failure to this worker.

        ``generation`` is the spawn generation the failing connection
        targeted; a report about an earlier generation is stale (the
        worker was already respawned) and ignored.  Fresh reports mark
        the worker un-routable and wake the supervisor immediately, so
        a crashed worker's respawn starts now, not a poll tick later.
        """
        with self._lock:
            worker = self.workers[worker_id]
            if worker.generation != generation:
                return
            worker.down = True
        self._wake.set()

    # -- routing views ---------------------------------------------------

    def alive_ids(self) -> list:
        with self._lock:
            return [w.id for w in self.workers if w.alive]

    def snapshot(self, worker_id: int) -> tuple:
        """(port, generation, alive) of one worker, atomically."""
        with self._lock:
            worker = self.workers[worker_id]
            return worker.port, worker.generation, worker.alive

    def describe(self) -> list:
        with self._lock:
            return [w.describe() for w in self.workers]


# ---------------------------------------------------------------------------
# The child entry point
# ---------------------------------------------------------------------------

def _watch_parent(parent_pid: int) -> None:
    """Exit the worker as soon as its spawning parent is gone."""
    while True:
        time.sleep(0.5)
        if os.getppid() != parent_pid:
            os._exit(3)


def worker_main(argv=None) -> int:
    """``python -m repro.serve.workers`` — run one tier worker.

    Binds the standard :class:`SpecServer` on a fresh loopback port,
    prints the ``REPRO-WORKER-READY`` handshake, and serves until
    killed (or until the parent process disappears).
    """
    import argparse

    from ..obs import Telemetry
    from .server import make_server
    from .service import QueryService
    from .cache import SpecCache

    parser = argparse.ArgumentParser(
        prog="repro.serve.workers",
        description="internal: one worker of `repro serve --workers N`")
    parser.add_argument("--worker-id", type=int, required=True)
    parser.add_argument("--cache", default=None)
    parser.add_argument("--engine", default="bt")
    parser.add_argument("--deadline", type=float, default=None)
    parser.add_argument("--max-predicted-cost", type=float,
                        default=None)
    parser.add_argument("--collect-url", default=None)
    parser.add_argument("--collect-interval", type=float, default=1.0)
    args = parser.parse_args(argv)

    client = None
    if args.collect_url:
        from .collect import CollectorClient
        client = CollectorClient(args.collect_url,
                                 worker_id=args.worker_id,
                                 interval=args.collect_interval)
    cache = SpecCache(args.cache) if args.cache else SpecCache()
    service = QueryService(cache=cache,
                           default_deadline=args.deadline,
                           telemetry=Telemetry(collector=client),
                           engine=args.engine,
                           max_predicted_cost=args.max_predicted_cost,
                           collect=client)
    server = make_server(service, host="127.0.0.1", port=0,
                         quiet=True, worker_id=args.worker_id)
    port = server.server_address[1]
    print(f"{READY_PREFIX} port={port} pid={os.getpid()}", flush=True)
    threading.Thread(target=_watch_parent, args=(os.getppid(),),
                     daemon=True).start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        if client is not None:
            client.close()
    return 0


if __name__ == "__main__":
    sys.exit(worker_main())
