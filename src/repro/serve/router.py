"""Consistent-hash routing front-end for the multi-process tier.

``repro serve --workers N`` answers the GIL problem structurally: one
front-end process owns the listening socket and does only cheap work —
read the JSON batch, derive each request's *routing key*, forward
sub-batches to worker processes over loopback HTTP — while the N
workers (:mod:`repro.serve.workers`) burn their own interpreters on
parsing, spec computation, and query evaluation.

Routing
-------

The ring (:class:`HashRing`) hashes each worker id to ``replicas``
points on a 64-bit circle; a request's key routes to the first live
worker clockwise of the key's own point.  The key is the
content-addressed program key (:func:`repro.serve.cache.tdd_key`) when
the program parses — memoised per program text, so the warm path is a
dictionary hit — with a SHA-256 of the raw text as the fallback for
unparseable programs (the worker then produces the authoritative
parse-error response).  Content addressing means every request for one
program lands on one worker, whose in-memory LRU therefore stays hot
for exactly its key range; the shared SQLite
:class:`~repro.serve.cache.SpecCache` is the cross-process fallback
that makes rerouting after a crash a cache hit, not a recompute.

Failure handling
----------------

A forward that dies (connection refused/reset, truncated response)
marks the worker down via :meth:`WorkerPool.report_failure` — waking
the supervisor to respawn it — and the affected requests re-enter
routing against the surviving workers.  Queries are read-only, so
retrying is always safe; a retried request's response is marked
``"retried": true`` and counted in ``/stats``.  Only when *no* worker
becomes routable within ``retry_deadline`` seconds does a request fail,
and then as a per-request ``ok: false`` response, never a dropped
connection.

Telemetry
---------

The front-end root span's trace id is forwarded to workers via
``X-Repro-Trace-Id``, so one id ties the client response, the
front-end access log, and the worker-side spans together.  ``/stats``
aggregates every worker's counters (plus per-worker rows and the
front-end's own routing counters); ``/metrics`` renders the same
aggregate through :func:`repro.serve.service.render_prometheus` with
``repro_worker_*`` and ``repro_frontend_*`` series appended.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import threading
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from http.server import ThreadingHTTPServer
from typing import Sequence, Union

from ..lang.errors import ReproError
from ..obs.telemetry import LatencyHistogram, Telemetry
from .cache import tdd_key
from .server import MAX_BODY_BYTES, AccessLog, _Handler
from .service import render_prometheus
from .workers import WorkerPool

#: Virtual nodes per worker on the ring.  64 keeps the key ranges of a
#: small pool balanced to within a few percent while the ring stays
#: tiny (N*64 points).
RING_REPLICAS = 64

#: Routing keys memoised per raw program text (the front-end's
#: equivalent of the service's parse memo).
ROUTE_MEMO_SIZE = 128

#: Give up routing a request after this many seconds without any live
#: worker (the supervisor usually respawns one in well under a second).
RETRY_DEADLINE = 15.0

#: Socket timeout of a forward to a worker.  Generous: a slow cold
#: spec computation must not masquerade as a dead worker.
WORKER_TIMEOUT = 120.0


def _hash64(data: str) -> int:
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing of string keys onto integer node ids.

    Deterministic by construction (SHA-256, no process randomness):
    every front-end — including one restarted mid-conversation — maps
    the same key to the same worker.  ``route`` walks clockwise past
    dead nodes, so removing a node only moves *its* keys and restoring
    it moves exactly those keys back (property-tested in
    ``tests/test_serve_multiprocess.py``).
    """

    def __init__(self, nodes: Sequence[int],
                 replicas: int = RING_REPLICAS):
        if not nodes:
            raise ValueError("a hash ring needs at least one node")
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.nodes = tuple(nodes)
        self.replicas = replicas
        points = []
        for node in self.nodes:
            for replica in range(replicas):
                points.append((_hash64(f"{node}#{replica}"), node))
        points.sort()
        self._points = points
        self._positions = [position for position, _ in points]

    def route(self, key: str,
              alive: Union[Sequence[int], None] = None
              ) -> Union[int, None]:
        """The live node owning ``key``; None when nothing is alive."""
        live = set(self.nodes if alive is None else alive)
        if not live:
            return None
        start = bisect_right(self._positions, _hash64(key))
        count = len(self._points)
        for step in range(count):
            node = self._points[(start + step) % count][1]
            if node in live:
                return node
        return None


@dataclass
class _FrontEndCounters:
    requests: int = 0
    batches: int = 0
    forwards: int = 0
    retries: int = 0
    retried_requests: int = 0
    unrouted: int = 0
    routed: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "forwards": self.forwards,
            "retries": self.retries,
            "retried_requests": self.retried_requests,
            "unrouted": self.unrouted,
            "routed": {str(worker): count
                       for worker, count in sorted(self.routed.items())},
        }


class _ForwardFailed(Exception):
    """A worker could not produce a usable response; retry elsewhere."""


class FrontEnd(ThreadingHTTPServer):
    """The routing HTTP front-end over a :class:`WorkerPool`."""

    daemon_threads = True
    request_queue_size = 128

    def __init__(self, address, pool: WorkerPool,
                 quiet: bool = True,
                 access_log: Union[AccessLog, None] = None,
                 slow_ms: Union[float, None] = None,
                 telemetry: Union[Telemetry, None] = None,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 retry_deadline: float = RETRY_DEADLINE,
                 worker_timeout: float = WORKER_TIMEOUT,
                 replicas: int = RING_REPLICAS,
                 collector=None):
        self.pool = pool
        self.ring = HashRing([w.id for w in pool.workers],
                             replicas=replicas)
        self.quiet = quiet
        self.access_log = access_log
        self.slow_ms = slow_ms
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry())
        self.max_body_bytes = max_body_bytes
        self.retry_deadline = retry_deadline
        self.worker_timeout = worker_timeout
        #: Front-end-side end-to-end latency (includes routing and the
        #: forward round-trip); the aggregated ``latency`` block in
        #: ``/stats`` is the workers' own service-side histogram.
        self.latency = LatencyHistogram()
        self._counters = _FrontEndCounters()
        self._counters_lock = threading.Lock()
        self._route_memo: dict = {}
        self._route_order: list = []
        self._memo_lock = threading.Lock()
        super().__init__(address, _FrontEndHandler)
        #: Optional :class:`repro.serve.collect.Collector` — the tier's
        #: aggregation terminal.  Attached *after* the socket is bound
        #: so the workers' collect URL can carry the real port: a pool
        #: constructed (but not yet started) with this front-end will
        #: spawn its workers pointing at ``/ingest`` here.
        self.collector = collector
        if collector is not None:
            if self.telemetry.collector is None:
                self.telemetry.collector = collector
            port = self.server_address[1]
            pool.set_collect_url(f"http://127.0.0.1:{port}/ingest")

    # -- routing ---------------------------------------------------------

    def routing_key(self, program: str) -> str:
        """The content key of a program text, memoised; raw-text hash
        for programs that do not parse (the worker still answers —
        with the authoritative parse error)."""
        with self._memo_lock:
            cached = self._route_memo.get(program)
            if cached is not None:
                return cached
        try:
            from ..core.tdd import TDD
            key = tdd_key(TDD.from_text(program))
        except ReproError:
            key = hashlib.sha256(program.encode("utf-8")).hexdigest()
        with self._memo_lock:
            if program not in self._route_memo:
                self._route_memo[program] = key
                self._route_order.append(program)
                while len(self._route_order) > ROUTE_MEMO_SIZE:
                    del self._route_memo[self._route_order.pop(0)]
        return key

    # -- delivery --------------------------------------------------------

    def deliver(self, entries: list, root) -> tuple[dict, int]:
        """Forward routed entries until each has a response.

        ``entries`` are ``{"index", "key", "item", "attempts"}``
        dictionaries.  Returns ``(responses_by_index,
        total_failed_forward_attempts)``.  Requests whose worker dies
        mid-flight re-enter routing against the survivors; only a
        tier with no routable worker for ``retry_deadline`` seconds
        produces ``ok: false`` fallback responses.
        """
        results: dict = {}
        pending = list(entries)
        give_up_at = time.monotonic() + self.retry_deadline
        retries = 0
        while pending:
            alive = self.pool.alive_ids()
            if not alive:
                if time.monotonic() >= give_up_at:
                    break
                time.sleep(0.05)
                continue
            groups: dict = {}
            for entry in pending:
                worker_id = self.ring.route(entry["key"], alive)
                groups.setdefault(worker_id, []).append(entry)
            outcomes: list = []

            def forward(worker_id, group):
                outcomes.append(
                    self._forward_group(worker_id, group, root))

            if len(groups) == 1:
                forward(*next(iter(groups.items())))
            else:
                threads = [threading.Thread(target=forward, args=pair)
                           for pair in groups.items()]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            failed: list = []
            for delivered, group_failed in outcomes:
                results.update(delivered)
                failed.extend(group_failed)
            if failed:
                retries += len(failed)
                with self._counters_lock:
                    self._counters.retries += len(failed)
                for entry in failed:
                    entry["attempts"] += 1
                if time.monotonic() >= give_up_at:
                    pending = failed
                    break
                time.sleep(0.02)
            pending = failed
        for entry in pending:
            results[entry["index"]] = self._unrouted_response(entry,
                                                              root)
        return results, retries

    def _forward_group(self, worker_id: int, group: list,
                       root) -> tuple[dict, list]:
        """POST one sub-batch to one worker; (delivered, failed)."""
        port, generation, alive = self.pool.snapshot(worker_id)
        if not alive or port is None:
            return {}, group
        span = self.telemetry.span("forward", parent=root,
                                   worker=worker_id,
                                   requests=len(group))
        body = json.dumps(
            {"requests": [entry["item"] for entry in group]}
        ).encode("utf-8")
        try:
            data = self._post_worker(port, body, root.trace_id,
                                     span.context.span_id)
            responses = data["responses"]
            if len(responses) != len(group):
                raise _ForwardFailed(
                    f"worker {worker_id} returned {len(responses)} "
                    f"responses for {len(group)} requests")
        except _ForwardFailed as exc:
            span.set_attribute("error", str(exc))
            span.end()
            self.pool.report_failure(worker_id, generation)
            return {}, group
        span.end()
        delivered = {}
        retried = 0
        for entry, response in zip(group, responses):
            response["worker"] = worker_id
            if entry["attempts"]:
                response["retried"] = True
                retried += 1
            delivered[entry["index"]] = response
        with self._counters_lock:
            self._counters.forwards += 1
            self._counters.retried_requests += retried
            self._counters.routed[worker_id] = (
                self._counters.routed.get(worker_id, 0) + len(group))
        return delivered, []

    def _post_worker(self, port: int, body: bytes, trace_id: str,
                     parent_span: Union[str, None] = None) -> dict:
        headers = {"Content-Type": "application/json",
                   "X-Repro-Trace-Id": trace_id}
        if parent_span is not None:
            # The worker roots its http.request span under the
            # forward span, so the collector can stitch the two
            # processes' trees into one.
            headers["X-Repro-Parent-Span"] = parent_span
        connection = http.client.HTTPConnection(
            "127.0.0.1", port, timeout=self.worker_timeout)
        try:
            connection.request("POST", "/query", body, headers)
            response = connection.getresponse()
            payload = response.read()
            if response.status != 200:
                raise _ForwardFailed(
                    f"worker answered {response.status}: "
                    f"{payload[:200]!r}")
            return json.loads(payload)
        except (OSError, http.client.HTTPException, ValueError) as exc:
            raise _ForwardFailed(str(exc)) from exc
        finally:
            connection.close()

    def _unrouted_response(self, entry: dict, root) -> dict:
        item = entry["item"] if isinstance(entry["item"], dict) else {}
        with self._counters_lock:
            self._counters.unrouted += 1
        return {
            "ok": False,
            "kind": item.get("kind", "ask"),
            "answer": None,
            "degraded": False,
            "refused": False,
            "source": None,
            "key": None,
            "error": ("no live worker within the "
                      f"{self.retry_deadline:g}s retry deadline"),
            "elapsed_ms": 0.0,
            "duration_ms": 0.0,
            "trace_id": root.trace_id,
            "retried": entry["attempts"] > 0,
            "worker": None,
        }

    # -- aggregated observability ---------------------------------------

    def _collect_workers(self) -> list:
        """Per-worker rows: pool state + routed counts + live stats."""
        with self._counters_lock:
            routed = dict(self._counters.routed)
        rows = []
        for row in self.pool.describe():
            row["routed"] = routed.get(row["id"], 0)
            if row["up"] and row["port"] is not None:
                try:
                    row["stats"] = self._fetch_json(row["port"],
                                                    "/stats")
                except (OSError, http.client.HTTPException,
                        ValueError):
                    row["up"] = False
            rows.append(row)
        return rows

    def _fetch_json(self, port: int, path: str,
                    timeout: float = 5.0) -> dict:
        connection = http.client.HTTPConnection("127.0.0.1", port,
                                                timeout=timeout)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            if response.status != 200:
                raise ValueError(f"{path} answered {response.status}")
            return json.loads(response.read())
        finally:
            connection.close()

    def counters(self) -> dict:
        with self._counters_lock:
            snapshot = self._counters.to_dict()
        snapshot["workers"] = len(self.pool.workers)
        snapshot["workers_up"] = len(self.pool.alive_ids())
        snapshot["worker_restarts"] = self.pool.restarts
        return snapshot

    def health_payload(self) -> dict:
        from .. import __version__
        from ..obs.trace import TRACE_SCHEMA
        return {"ok": True, "version": __version__,
                "trace_schema": TRACE_SCHEMA, "role": "frontend",
                "workers": len(self.pool.workers),
                "workers_up": len(self.pool.alive_ids())}

    def _aggregate(self, rows: list) -> tuple[dict, dict,
                                              LatencyHistogram]:
        stats = [row["stats"] for row in rows if "stats" in row]
        serve = _sum_counters([s["serve"] for s in stats],
                              _zero_serve())
        cache = _sum_counters([s["cache"] for s in stats],
                              _zero_cache())
        latency = LatencyHistogram.from_dicts(
            [s["latency"] for s in stats])
        return serve, cache, latency

    def stats_dict(self) -> dict:
        """``GET /stats``: the single-process shape (``serve`` /
        ``cache`` / ``latency``), aggregated across workers so
        ``repro top`` and the CI reconciliation work unchanged, plus
        ``frontend`` (routing counters) and per-worker ``workers``
        rows."""
        rows = self._collect_workers()
        serve, cache, latency = self._aggregate(rows)
        frontend = self.counters()
        frontend["latency"] = self.latency.to_dict()
        stats = {"serve": serve, "cache": cache,
                 "latency": latency.to_dict(),
                 "frontend": frontend, "workers": rows}
        if self.collector is not None:
            stats["collector"] = self.collector.counters()
        return stats

    def prometheus_text(self) -> str:
        rows = self._collect_workers()
        serve, cache, latency = self._aggregate(rows)
        frontend = self.counters()
        lines = [
            "# HELP repro_workers Configured worker processes.",
            "# TYPE repro_workers gauge",
            f"repro_workers {frontend['workers']}",
            "# HELP repro_workers_up Workers currently routable.",
            "# TYPE repro_workers_up gauge",
            f"repro_workers_up {frontend['workers_up']}",
            "# HELP repro_worker_up Liveness of one worker.",
            "# TYPE repro_worker_up gauge",
        ]
        for row in rows:
            lines.append(
                f'repro_worker_up{{worker="{row["id"]}"}} '
                f'{1 if row["up"] else 0}')
        lines.append("# HELP repro_worker_restarts_total "
                     "Respawns of one worker.")
        lines.append("# TYPE repro_worker_restarts_total counter")
        for row in rows:
            lines.append(
                f'repro_worker_restarts_total{{worker="{row["id"]}"}} '
                f'{row["restarts"]}')
        lines.append("# HELP repro_worker_routed_total "
                     "Requests routed to one worker.")
        lines.append("# TYPE repro_worker_routed_total counter")
        for row in rows:
            lines.append(
                f'repro_worker_routed_total{{worker="{row["id"]}"}} '
                f'{row["routed"]}')
        for name, help_text in (
                ("requests", "Query requests accepted."),
                ("forwards", "Sub-batches forwarded to workers."),
                ("retries", "Failed forward attempts retried."),
                ("retried_requests",
                 "Requests that needed more than one worker."),
                ("unrouted",
                 "Requests failed with no routable worker.")):
            lines.append(f"# HELP repro_frontend_{name}_total "
                         f"{help_text}")
            lines.append(f"# TYPE repro_frontend_{name}_total counter")
            lines.append(f"repro_frontend_{name}_total "
                         f"{frontend[name]}")
        if self.collector is not None:
            lines.extend(self.collector.prometheus_lines())
        return render_prometheus(serve, cache, latency,
                                 extra_lines=lines)

    def attach_stats(self, stats) -> None:
        """Mirror :meth:`QueryService.attach_stats` for ``--stats``."""
        aggregated = self.stats_dict()
        stats.extra["serve"] = aggregated["serve"]
        stats.extra["cache"] = aggregated["cache"]
        stats.extra["latency"] = aggregated["latency"]
        stats.extra["frontend"] = aggregated["frontend"]


def _zero_serve() -> dict:
    from .service import _ServeCounters
    return _ServeCounters().to_dict()


def _zero_cache() -> dict:
    from .cache import SpecCache
    return SpecCache().counters()


def _sum_counters(blocks: Sequence[dict], zero: dict) -> dict:
    """Sum integer counter dictionaries key-by-key over ``zero``."""
    total = dict(zero)
    for block in blocks:
        for key, value in block.items():
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            total[key] = total.get(key, 0) + value
    return total


class _FrontEndHandler(_Handler):
    server: FrontEnd

    def _route_post(self, root) -> int:
        if self.path == "/ingest":
            return self._handle_ingest()
        return super()._route_post(root)

    def _handle_ingest(self) -> int:
        """``POST /ingest``: one worker collection envelope.

        Internal to the tier (workers POST here over loopback); bodies
        follow the envelope schema in :mod:`repro.serve.collect`.
        Malformed envelopes get a 400 and are counted — never raised —
        so a confused worker cannot take the front-end down.
        """
        collector = self.server.collector
        if collector is None:
            return self._reply(
                404, {"error": "collection is disabled on this tier"})
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            return self._reply(400,
                               {"error": "unreadable Content-Length"})
        if length < 0:
            return self._reply(
                400, {"error": f"negative Content-Length {length}"})
        if length > self.server.max_body_bytes:
            return self._reply(413, {
                "error": f"ingest body of {length} bytes exceeds the "
                         f"{self.server.max_body_bytes} byte limit"},
                close=True)
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
            summary = collector.ingest(payload)
        except (ValueError, TypeError) as exc:
            collector.ingest_error()
            return self._reply(400, {"error": str(exc)})
        return self._reply(200, summary)

    def _handle_batch(self, raw: list, requests, root) -> int:
        frontend = self.server
        with frontend._counters_lock:
            frontend._counters.requests += len(raw)
            frontend._counters.batches += 1
        started = time.monotonic()
        entries = [{"index": index,
                    "key": frontend.routing_key(request.program),
                    "item": item, "attempts": 0}
                   for index, (item, request)
                   in enumerate(zip(raw, requests))]
        results, retries = frontend.deliver(entries, root)
        ordered = [results[index] for index in range(len(raw))]
        batch_ms = (time.monotonic() - started) * 1e3
        for _ in ordered:
            frontend.latency.observe(batch_ms)
        self._log_extra = _summarize_routed(ordered, retries)
        return self._reply(200, {"responses": ordered})


def _summarize_routed(responses: Sequence[dict], retries: int) -> dict:
    """The `/query` access-log fields of a routed batch."""
    return {
        "n": len(responses),
        "degraded": sum(1 for r in responses if r.get("degraded")),
        "errors": sum(1 for r in responses if not r.get("ok")),
        "retries": retries,
        "retried": sum(1 for r in responses if r.get("retried")),
        "workers": sorted({r["worker"] for r in responses
                           if r.get("worker") is not None}),
    }


def make_frontend(pool: WorkerPool, host: str = "127.0.0.1",
                  port: int = 0, **kwargs) -> FrontEnd:
    """Bind (but do not run) a front-end; ``port=0`` picks a port."""
    return FrontEnd((host, port), pool, **kwargs)
