"""Spec serving: cache, batched query service, and HTTP front-end.

The production shape of Theorem 4.1 — compute the finite relational
specification once, then answer every query against it:

* :mod:`repro.serve.cache` — a content-addressed (SHA-256 of the
  normalized program + database) persistent spec cache, SQLite-backed
  with an in-process LRU in front;
* :mod:`repro.serve.service` — a thread-safe :class:`QueryService` with
  request batching, single-flight spec computation, per-request
  deadlines and graceful degradation to windowed evaluation;
* :mod:`repro.serve.server` — the ``repro serve`` JSON-over-HTTP
  front-end (stdlib ``ThreadingHTTPServer``) with request-level
  telemetry: per-request root spans (``X-Repro-Trace-Id`` honored and
  echoed), a Prometheus-format ``GET /metrics`` endpoint, a
  structured JSON access log, and a slow-query span-tree log;
* :mod:`repro.serve.workers` — supervised worker processes for the
  multi-process tier (``repro serve --workers N``): spawn, READY
  handshake, crash detection and respawn;
* :mod:`repro.serve.router` — the consistent-hash routing front-end
  of the tier: one process owning the listening socket, forwarding
  sub-batches to workers by content-addressed program key, retrying
  around worker crashes, and aggregating ``/stats`` and ``/metrics``;
* :mod:`repro.serve.collect` — cross-process observability collection:
  workers ship ended spans, sampled ``derive`` events, and windowed
  per-rule metrics to the front-end's ``POST /ingest``; the front-end
  assembles them into ``GET /trace/<id>`` trees, the ``GET /profile``
  continuous profile, and the cost-calibration telemetry;
* :mod:`repro.serve.top` — the ``repro top`` live dashboard polling
  ``GET /stats``.
"""

from .cache import (DISK, MEMORY, SpecCache, normalized_program,
                    program_key, tdd_key)
from .collect import Collector, CollectorClient
from .router import FrontEnd, HashRing, make_frontend
from .server import (MAX_BODY_BYTES, AccessLog, SpecServer,
                     make_server)
from .service import (COMPUTED, DeadlineExceeded, QueryRequest,
                      QueryResponse, QueryService, render_prometheus)
from .top import TopError, fetch_stats, run_top
from .workers import WorkerConfig, WorkerError, WorkerPool, worker_main

__all__ = [
    "SpecCache", "program_key", "tdd_key", "normalized_program",
    "QueryService", "QueryRequest", "QueryResponse", "DeadlineExceeded",
    "SpecServer", "make_server", "AccessLog", "MAX_BODY_BYTES",
    "FrontEnd", "HashRing", "make_frontend", "render_prometheus",
    "Collector", "CollectorClient",
    "WorkerPool", "WorkerConfig", "WorkerError", "worker_main",
    "TopError", "fetch_stats", "run_top",
    "MEMORY", "DISK", "COMPUTED",
]
