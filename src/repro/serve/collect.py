"""Shipping observability out of worker processes: the collection tier.

:mod:`repro.obs.collector` holds the process-neutral aggregation
structures (trace store, windowed rule profile, cost calibration); this
module moves data into them across process boundaries.

* :class:`Collector` lives where the aggregate view is served — the
  front-end of a tier, or directly inside a single-process ``repro
  serve``.  It is the terminal for four streams: locally ended spans
  (via :class:`~repro.obs.telemetry.Telemetry`'s ``collector`` hook),
  sampled ``derive`` events, per-computation
  :class:`~repro.obs.metrics.MetricsRegistry` deltas, and cost
  calibration rows — plus everything workers POST to ``/ingest``.
* :class:`CollectorClient` lives inside a tier worker.  It presents the
  *same* recording interface, but buffers into bounded deques and ships
  one JSON envelope to the front-end's ``/ingest`` endpoint every
  ``interval`` seconds from a daemon thread.

Crash-safety is by construction, not by protocol: the client never
acknowledges, never retries, and never queues more than its bounded
window.  A SIGKILLed worker loses at most the envelope it had not yet
flushed (≤ ``interval`` seconds of data); a front-end that cannot be
reached costs the worker one dropped envelope per interval and nothing
else — serving is never blocked on collection.

The ``/ingest`` envelope (one JSON object per POST)::

    {"worker": 0, "pid": 12345,
     "spans":       [ <span event>, ... ],
     "derives":     [ <derive event + trace_id>, ... ],
     "rules":       [ <RuleMetrics.to_dict() delta>, ... ],
     "calibration": [ {"label", "line", "est_rows", "measured_rows"}, ... ]}

Span and derive events are exactly the schema-3/4 trace events already
documented in docs/INTERNALS.md — collection reuses the trace schema
rather than inventing a parallel one.
"""

from __future__ import annotations

import json
import os
import threading
import urllib.error
import urllib.request
from collections import deque
from typing import Union

from ..obs.collector import (CostCalibration, RuleWindowAggregator,
                             TraceStore)

#: Default sampling stride for ``derive`` events: every Nth recorded
#: support edge is shipped (:class:`~repro.obs.provenance.
#: ProvenanceStore` semantics).  1 would ship every derivation of every
#: cold computation — far too hot for a collection path that must stay
#: under the E17 overhead gate.
DERIVE_SAMPLE = 16

#: Default worker-side flush cadence, seconds.  Also the upper bound on
#: data lost when a worker dies mid-window.
FLUSH_INTERVAL = 1.0

#: Bound on buffered span/derive events between flushes (per stream);
#: overflow drops the *oldest* buffered event first.
MAX_BUFFERED_EVENTS = 2048

#: Bound on distinct ``repro_rule_seconds_total`` series exposed on
#: ``/metrics`` (hottest rules win) — label cardinality insurance.
MAX_RULE_SERIES = 64


def span_event(span) -> dict:
    """One ended :class:`~repro.obs.telemetry.Span` as its schema-3
    event dictionary (the same shape the tracer exports)."""
    return {
        "trace_id": span.context.trace_id,
        "span_id": span.context.span_id,
        "parent": span.context.parent_id,
        "name": span.name,
        "start_ms": round(span.start_ms, 3),
        "duration_ms": round(span.duration_ms or 0.0, 3),
        "attrs": dict(span.attributes),
    }


def _keep_span(event: dict) -> bool:
    """Whether a span belongs in the trace store.

    Monitoring traffic (``/stats`` polls, ``/metrics`` scrapes,
    ``/ingest`` posts, health checks) would otherwise flood the bounded
    ring with single-span traces and evict the query traces the store
    exists for.  Only ``http.request`` roots are filtered — every
    non-HTTP span (forward, parse, spec.compute, answer, serve.batch)
    is kept unconditionally.
    """
    if event.get("name") != "http.request":
        return True
    path = (event.get("attrs") or {}).get("path") or ""
    return path == "/" or path.startswith("/query")


def _escape_label(value: str) -> str:
    """Prometheus label-value escaping (backslash, quote, newline)."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


class _DeriveSink:
    """A trace sink that stamps ``derive`` events with one trace id and
    hands them to its owning collector/client.  Built per computation
    via :meth:`Collector.derive_sink`; any other event type is ignored
    (the provenance store only ever emits ``derive``)."""

    __slots__ = ("_owner", "_trace_id")

    def __init__(self, owner, trace_id: str):
        self._owner = owner
        self._trace_id = trace_id

    def write_event(self, event: dict) -> None:
        if event.get("event") != "derive":
            return
        record = {key: value for key, value in event.items()
                  if key not in ("event", "ts", "body")}
        record["trace_id"] = self._trace_id
        self._owner.add_derive(record)


class Collector:
    """The aggregation terminal: traces, windowed profile, calibration.

    Thread-safe throughout — handler threads ingest concurrently with
    the local telemetry export hook and with ``/trace`` / ``/profile``
    reads.
    """

    def __init__(self, max_traces: Union[int, None] = None,
                 derive_sample: int = DERIVE_SAMPLE,
                 window_s: float = 60.0, bucket_s: float = 5.0):
        kwargs = {} if max_traces is None else {"max_traces": max_traces}
        self.traces = TraceStore(**kwargs)
        self.rules = RuleWindowAggregator(window_s=window_s,
                                          bucket_s=bucket_s)
        self.calibration = CostCalibration()
        self.derive_sample = max(1, int(derive_sample))
        self._origin = {"pid": os.getpid(), "worker": None}
        self._lock = threading.Lock()
        self._spans = 0
        self._derives = 0
        self._ingests = 0
        self._ingest_errors = 0

    # -- local recording (Telemetry hook + service instrumentation) ------

    def record_span(self, span) -> None:
        """:class:`~repro.obs.telemetry.Telemetry` export hook."""
        event = span_event(span)
        if not _keep_span(event):
            return
        with self._lock:
            self._spans += 1
        self.traces.add_span(event, self._origin)

    def add_derive(self, record: dict) -> None:
        with self._lock:
            self._derives += 1
        self.traces.add_derive(record, self._origin)

    def derive_sink(self, trace_id: Union[str, None]):
        """A per-computation trace sink for sampled ``derive`` events
        (``None`` when there is no trace to attach them to)."""
        if not trace_id:
            return None
        return _DeriveSink(self, trace_id)

    def observe_rules(self, records) -> None:
        """File per-rule counter deltas into the windowed profile."""
        self.rules.observe(records)

    def observe_calibration(self, rows) -> None:
        self.calibration.observe(rows)

    # -- cross-process ingestion -----------------------------------------

    def ingest(self, payload: dict) -> dict:
        """File one worker envelope; returns an acceptance summary.

        Raises ``ValueError`` on a malformed envelope (the HTTP layer
        turns that into a 400).
        """
        if not isinstance(payload, dict):
            raise ValueError("ingest payload must be a JSON object")
        blocks = {}
        for name in ("spans", "derives", "rules", "calibration"):
            block = payload.get(name) or []
            if not isinstance(block, list):
                raise ValueError(f"ingest field {name!r} must be a list")
            blocks[name] = [item for item in block
                            if isinstance(item, dict)]
        origin = {"pid": payload.get("pid"),
                  "worker": payload.get("worker")}
        kept = 0
        for event in blocks["spans"]:
            if _keep_span(event):
                self.traces.add_span(event, origin)
                kept += 1
        for event in blocks["derives"]:
            self.traces.add_derive(event, origin)
        self.rules.observe(blocks["rules"])
        self.calibration.observe(blocks["calibration"])
        with self._lock:
            self._ingests += 1
            self._spans += kept
            self._derives += len(blocks["derives"])
        return {"ok": True, "spans": kept,
                "derives": len(blocks["derives"]),
                "rules": len(blocks["rules"]),
                "calibration": len(blocks["calibration"])}

    def ingest_error(self) -> None:
        with self._lock:
            self._ingest_errors += 1

    # -- serving views ----------------------------------------------------

    def trace_payload(self, trace_id: str) -> Union[dict, None]:
        return self.traces.tree(trace_id)

    def traces_payload(self) -> dict:
        return {"traces": self.traces.summaries()}

    def profile_payload(self) -> dict:
        """``GET /profile``: the sliding-window rule profile, lifetime
        totals, and the calibration table."""
        window = self.rules.window()
        return {
            "window_s": window["window_s"],
            "rules": window["rules"],
            "totals": self.rules.totals(),
            "calibration": self.calibration.to_dict(),
        }

    def counters(self) -> dict:
        """The ``collector`` block of ``/stats``."""
        with self._lock:
            spans, derives = self._spans, self._derives
            ingests, errors = self._ingests, self._ingest_errors
        return {
            "traces": len(self.traces),
            "evicted": self.traces.evicted,
            "spans": spans,
            "derives": derives,
            "ingests": ingests,
            "ingest_errors": errors,
            "calibration_ratio": round(self.calibration.ratio(), 4),
        }

    def prometheus_lines(self) -> list:
        """The collector's ``/metrics`` series."""
        lines = [
            "# HELP repro_rule_seconds_total Evaluation seconds "
            "attributed to one rule (lifetime of this collector).",
            "# TYPE repro_rule_seconds_total counter",
        ]
        for row in self.rules.totals()[:MAX_RULE_SERIES]:
            label = _escape_label(row["label"])
            lines.append(f'repro_rule_seconds_total{{rule="{label}"}} '
                         f'{row["seconds"]:.6f}')
        counters = self.counters()
        lines += [
            "# HELP repro_cost_calibration_ratio Measured derived rows "
            "over statically predicted rows (1.0 = calibrated; 0 = no "
            "data yet).",
            "# TYPE repro_cost_calibration_ratio gauge",
            "repro_cost_calibration_ratio "
            f"{self.calibration.ratio():.6f}",
            "# HELP repro_collector_ingests_total Worker envelopes "
            "accepted on /ingest.",
            "# TYPE repro_collector_ingests_total counter",
            f"repro_collector_ingests_total {counters['ingests']}",
            "# HELP repro_collector_spans_total Spans filed into the "
            "trace store.",
            "# TYPE repro_collector_spans_total counter",
            f"repro_collector_spans_total {counters['spans']}",
            "# HELP repro_collector_traces Traces currently retained.",
            "# TYPE repro_collector_traces gauge",
            f"repro_collector_traces {counters['traces']}",
        ]
        return lines


class CollectorClient:
    """The worker-side half: record locally, ship periodically.

    Implements the same recording interface as :class:`Collector`
    (``record_span`` / ``derive_sink`` / ``observe_rules`` /
    ``observe_calibration``), so :class:`~repro.obs.telemetry.Telemetry`
    and :class:`~repro.serve.service.QueryService` cannot tell which
    side of the process boundary they are instrumenting.

    All buffers are bounded (oldest dropped first) and all shipping is
    fire-and-forget from one daemon thread; a failed POST drops that
    envelope and moves on.  ``close()`` performs a final synchronous
    flush so an orderly shutdown loses nothing.
    """

    def __init__(self, url: str, worker_id: Union[int, None] = None,
                 interval: float = FLUSH_INTERVAL,
                 max_events: int = MAX_BUFFERED_EVENTS,
                 derive_sample: int = DERIVE_SAMPLE,
                 timeout: float = 5.0):
        self.url = url
        self.worker_id = worker_id
        self.interval = max(0.05, float(interval))
        self.derive_sample = max(1, int(derive_sample))
        self.timeout = timeout
        self._spans: deque = deque(maxlen=max(1, int(max_events)))
        self._derives: deque = deque(maxlen=max(1, int(max_events)))
        self._rules: list = []
        self._calibration: list = []
        self._lock = threading.Lock()
        self.shipped = 0
        self.ship_errors = 0
        self.dropped = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-collector-client", daemon=True)
        self._thread.start()

    # -- recording interface ---------------------------------------------

    def _buffer(self, queue: deque, item: dict) -> None:
        with self._lock:
            if len(queue) == queue.maxlen:
                self.dropped += 1
            queue.append(item)

    def record_span(self, span) -> None:
        event = span_event(span)
        if _keep_span(event):
            self._buffer(self._spans, event)

    def add_derive(self, record: dict) -> None:
        self._buffer(self._derives, record)

    def derive_sink(self, trace_id: Union[str, None]):
        if not trace_id:
            return None
        return _DeriveSink(self, trace_id)

    def observe_rules(self, records) -> None:
        with self._lock:
            self._rules.extend(records)

    def observe_calibration(self, rows) -> None:
        with self._lock:
            self._calibration.extend(rows)

    # -- shipping ---------------------------------------------------------

    def _drain(self) -> Union[dict, None]:
        with self._lock:
            if not (self._spans or self._derives or self._rules
                    or self._calibration):
                return None
            payload = {
                "worker": self.worker_id,
                "pid": os.getpid(),
                "spans": list(self._spans),
                "derives": list(self._derives),
                "rules": self._rules,
                "calibration": self._calibration,
            }
            self._spans.clear()
            self._derives.clear()
            self._rules = []
            self._calibration = []
        return payload

    def flush(self) -> bool:
        """Ship one envelope now; True when there was nothing to ship
        or the POST succeeded.  A failed POST drops the envelope — the
        documented loss semantics, never a retry queue."""
        payload = self._drain()
        if payload is None:
            return True
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.url, data=body,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as reply:
                reply.read()
        except (OSError, urllib.error.URLError, ValueError):
            self.ship_errors += 1
            return False
        self.shipped += 1
        return True

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.flush()

    def close(self) -> None:
        """Stop the flush thread and ship the final window."""
        self._stop.set()
        self._thread.join(timeout=self.timeout + 1.0)
        self.flush()
