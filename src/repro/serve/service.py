"""The batched, deadline-aware query service over cached specifications.

This is the compute-once/serve-many shape of Theorem 4.1 as a component:
requests carry a program and a query; the service resolves the program
to its content key (:func:`repro.serve.cache.program_key`), obtains the
relational specification from the :class:`~repro.serve.cache.SpecCache`
— computing and storing it on a miss, with *single-flight* so concurrent
requests for the same key trigger exactly one BT run — and answers the
query on the finite object.

Batching
--------

:meth:`QueryService.serve_batch` groups requests by program text, so a
batch of N queries against one TDD parses the program once, acquires the
spec once, and canonicalises each query through the same ``W``.

Deadlines and graceful degradation
----------------------------------

A request may carry ``deadline`` seconds.  Spec computation then runs as
budgeted iterative deepening (the certified BT deepening, with the clock
checked between window enlargements).  When the budget expires before a
certified period is found — or BT finds no period at all — the service
*degrades* instead of failing: the query is answered by a windowed BT
evaluation whose horizon covers the query's ground timepoints, and the
response is marked ``degraded`` (quantified answers are then relative to
the window, not the infinite model).

Admission control
-----------------

A service constructed with ``max_predicted_cost`` (the
``--max-predicted-cost`` flag of ``repro serve``) runs the static cost
model (:func:`repro.analysis.static.predicted_cost`) on each program
before acquiring its spec; a program whose budget estimate exceeds the
knob is *refused* up front — the response carries ``ok=False`` and
``refused=True``, mirroring how ``degraded`` marks the windowed
fallback.  The estimate is memoised per content key, so admission adds
static-analysis work once per program, not per request.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence, Union

from ..core.queries import (Query, answers as spec_answers,
                            answers_on_model, evaluate, evaluate_on_model,
                            free_variables, max_ground_time, parse_query)
from ..core.spec import RelationalSpec, compute_specification
from ..core.tdd import TDD
from ..engines import QUERY_ENGINES, canonical_window_engine
from ..lang.errors import EvaluationError, ReproError
from ..obs.telemetry import LatencyHistogram, Span, Telemetry
from ..temporal.bt import bt_evaluate
from .cache import SpecCache, tdd_key

#: Spec source tag for a cache miss filled by this service.
COMPUTED = "computed"

#: Default horizon of the degraded (windowed) evaluation path.
DEGRADED_WINDOW = 64

#: Longest a thread will poll a *peer process's* in-flight spec
#: computation (seconds) before failing open and computing itself.
#: Bounded so a SIGKILLed peer can only stall, never wedge, a request.
PEER_WAIT_LIMIT = 10.0

#: Parsed programs memoised per service (keyed by raw request text).
#: Parsing + content-hashing a large program dwarfs a warm query, so a
#: server answering many requests for the same program must not redo
#: either per request.
PARSE_MEMO_SIZE = 32


class DeadlineExceeded(Exception):
    """Raised internally when a spec cannot be computed in budget."""


@dataclass(frozen=True)
class QueryRequest:
    """One unit of work for the service.

    ``kind`` is ``"ask"`` (closed query, boolean answer) or
    ``"answers"`` (open query, finite answer representation);
    ``deadline`` is a per-request spec-computation budget in seconds;
    ``expand`` additionally enumerates concrete answers up to the given
    timepoint (``answers`` kind only); ``engine`` overrides the
    service's window engine (``"bt"`` or ``"compiled"``) for this
    request — the specification (and so the answer) is identical either
    way, only the compute path differs.  ``explain`` asks the service
    to attach the recorded proof DAG to a true ground ``ask`` answer
    (``proof`` in the response, with ``proof_depth``/``proof_facts``).
    """

    program: str
    query: str
    kind: str = "ask"
    deadline: Union[float, None] = None
    expand: Union[int, None] = None
    engine: Union[str, None] = None
    explain: bool = False

    @classmethod
    def from_dict(cls, data: dict) -> "QueryRequest":
        if not isinstance(data, dict):
            raise ValueError("a request must be a JSON object")
        unknown = set(data) - {"program", "query", "kind", "deadline",
                               "expand", "engine", "explain"}
        if unknown:
            raise ValueError(f"unknown request fields {sorted(unknown)}")
        for name in ("program", "query"):
            if not isinstance(data.get(name), str):
                raise ValueError(f"request field {name!r} must be a "
                                 "string")
        engine = data.get("engine")
        if engine is not None and engine not in QUERY_ENGINES:
            raise ValueError(
                f"request field 'engine' must be one of "
                f"{list(QUERY_ENGINES)}, not {engine!r}")
        explain = data.get("explain", False)
        if not isinstance(explain, bool):
            raise ValueError("request field 'explain' must be a boolean")
        return cls(program=data["program"], query=data["query"],
                   kind=data.get("kind", "ask"),
                   deadline=data.get("deadline"),
                   expand=data.get("expand"),
                   engine=engine,
                   explain=explain)


@dataclass
class QueryResponse:
    """The service's answer to one request.

    ``elapsed_ms`` times the answer phase alone (parse the query,
    evaluate it on the spec); ``duration_ms`` is the request's
    end-to-end service time, including its share of the group's
    program parse and spec acquisition.  ``trace_id`` ties the
    response to the access-log line and the exported spans of the
    same request.
    """

    ok: bool
    kind: str
    answer: Union[bool, dict, None] = None
    degraded: bool = False
    #: True when admission control rejected the program before any spec
    #: work (its predicted cost exceeded ``max_predicted_cost``).
    refused: bool = False
    source: Union[str, None] = None
    key: Union[str, None] = None
    error: Union[str, None] = None
    elapsed_ms: float = 0.0
    duration_ms: float = 0.0
    trace_id: Union[str, None] = None
    #: Recorded proof DAG (``explain: true`` on a true ground ask):
    #: the node/edge lists of the fact's ancestors, plus
    #: ``proof_depth`` and ``proof_facts`` summary counts.
    proof: Union[dict, None] = None

    def to_dict(self) -> dict:
        data = {
            "ok": self.ok,
            "kind": self.kind,
            "answer": self.answer,
            "degraded": self.degraded,
            "refused": self.refused,
            "source": self.source,
            "key": self.key,
            "error": self.error,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "duration_ms": round(self.duration_ms, 3),
            "trace_id": self.trace_id,
        }
        if self.proof is not None:
            data["proof"] = self.proof
        return data


@dataclass
class _ServeCounters:
    requests: int = 0
    batches: int = 0
    batched_requests: int = 0
    max_batch: int = 0
    asks: int = 0
    open_queries: int = 0
    degraded: int = 0
    refused: int = 0
    errors: int = 0
    spec_computes: int = 0
    singleflight_waits: int = 0
    explained: int = 0
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "max_batch": self.max_batch,
            "asks": self.asks,
            "open_queries": self.open_queries,
            "degraded": self.degraded,
            "refused": self.refused,
            "errors": self.errors,
            "spec_computes": self.spec_computes,
            "singleflight_waits": self.singleflight_waits,
            "explained": self.explained,
        }


class QueryService:
    """Thread-safe query answering over a :class:`SpecCache`."""

    def __init__(self, cache: Union[SpecCache, None] = None,
                 default_deadline: Union[float, None] = None,
                 max_window: int = 1 << 20,
                 degraded_window: int = DEGRADED_WINDOW,
                 telemetry: Union[Telemetry, None] = None,
                 engine: str = "bt",
                 max_predicted_cost: Union[float, None] = None,
                 collect=None):
        self.cache = cache if cache is not None else SpecCache()
        self.default_deadline = default_deadline
        self.max_window = max_window
        self.degraded_window = degraded_window
        #: Optional collection target (:class:`repro.serve.collect.
        #: Collector` locally, :class:`~repro.serve.collect.
        #: CollectorClient` inside a tier worker).  When set, every
        #: spec computation runs with a fresh per-rule
        #: :class:`~repro.obs.metrics.MetricsRegistry` and sampled
        #: provenance recording, and the resulting rule/calibration
        #: deltas (plus sampled ``derive`` events) flow to it.
        self.collect = collect
        #: Admission-control knob: programs whose static budget estimate
        #: (:func:`repro.analysis.static.predicted_cost`) exceeds this
        #: are refused without any spec work.  None disables the gate.
        self.max_predicted_cost = max_predicted_cost
        #: Default window engine for spec computations and degraded
        #: evaluations; a request's ``engine`` field overrides it.
        #: Validated eagerly so a misconfigured service fails at
        #: construction, not on the first request.
        self.engine = canonical_window_engine(engine)
        # A disabled Telemetry still mints trace ids and durations, so
        # every response carries both even without an export sink.
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry())
        self.latency = LatencyHistogram()
        self._counters = _ServeCounters()
        self._counters_lock = threading.Lock()
        self._flight_lock = threading.Lock()
        self._key_locks: dict[str, threading.Lock] = {}
        self._computes: dict[str, int] = {}
        self._parse_lock = threading.Lock()
        self._parse_memo: OrderedDict[str, tuple[TDD, str]] = OrderedDict()
        #: Identity this process stamps on cross-process flight leases.
        self._flight_owner = f"{os.getpid()}-{id(self):x}"
        self._cost_lock = threading.Lock()
        self._cost_memo: dict[str, float] = {}

    def _resolve_program(self, program: str) -> tuple[TDD, str]:
        """Parse + content-key a program text, memoised on the raw text.

        Distinct texts of the same TDD (whitespace, ordering) take
        separate memo slots but still converge on one content key — the
        memo is a parse cache, not the identity of the spec.
        """
        with self._parse_lock:
            cached = self._parse_memo.get(program)
            if cached is not None:
                self._parse_memo.move_to_end(program)
                return cached
        tdd = TDD.from_text(program)  # may raise ReproError; never memoised
        key = tdd_key(tdd)
        with self._parse_lock:
            self._parse_memo[program] = (tdd, key)
            self._parse_memo.move_to_end(program)
            while len(self._parse_memo) > PARSE_MEMO_SIZE:
                self._parse_memo.popitem(last=False)
        return tdd, key

    def _predicted_cost(self, tdd: TDD, key: str) -> float:
        """The static budget estimate for a parsed program, memoised on
        its content key (admission is per-program work, not per-request).

        Uses the structural classifier only (``semantic=False``): the
        admission gate must stay cheap relative to the work it guards,
        and the Theorem 5.2 procedure evaluates test databases.
        """
        with self._cost_lock:
            cached = self._cost_memo.get(key)
        if cached is not None:
            return cached
        from ..analysis.static import classify_program, predicted_cost
        facts = list(tdd.database.facts())
        tract = classify_program(tdd.rules, semantic=False)
        cost = predicted_cost(tdd.rules, facts, period=tract.period)
        with self._cost_lock:
            self._cost_memo[key] = cost
        return cost

    # -- spec acquisition (single-flight) --------------------------------

    def _key_lock(self, key: str) -> threading.Lock:
        with self._flight_lock:
            lock = self._key_locks.get(key)
            if lock is None:
                lock = self._key_locks[key] = threading.Lock()
            return lock

    def compute_count(self, key: str) -> int:
        """How many times this service ran BT for ``key`` (tests use
        this to assert single-flight)."""
        with self._flight_lock:
            return self._computes.get(key, 0)

    def _request_engine(self, request: Union[QueryRequest, None]) -> str:
        """The window engine a request runs on (canonical name)."""
        if request is not None and request.engine is not None:
            return canonical_window_engine(request.engine)
        return self.engine

    def _instruments(self, trace_id: Union[str, None]) -> tuple:
        """(metrics, provenance) for one instrumented evaluation.

        Both ``None`` when no collection target is configured — the
        engines then skip every instrumentation call site, so serving
        without collection costs exactly what it did before.  The
        provenance store samples every ``derive_sample``-th support
        edge into the request's trace (and only when there *is* a
        request trace to attach them to).
        """
        collect = self.collect
        if collect is None:
            return None, None
        from ..obs.metrics import MetricsRegistry
        metrics = MetricsRegistry()
        provenance = None
        sink = collect.derive_sink(trace_id)
        if sink is not None:
            from ..obs.provenance import ProvenanceStore
            from ..obs.trace import Tracer
            provenance = ProvenanceStore(
                tracer=Tracer(sink), sample=collect.derive_sample)
        return metrics, provenance

    def _observe_compute(self, metrics) -> None:
        """Flush one computation's per-rule deltas to the collector."""
        if metrics is None or self.collect is None:
            return
        records = metrics.to_dict()
        if not records:
            return
        from ..obs.collector import calibration_rows
        self.collect.observe_rules(records)
        rows = calibration_rows(metrics)
        if rows:
            self.collect.observe_calibration(rows)

    def _compute(self, tdd: TDD, deadline: Union[float, None],
                 engine: Union[str, None] = None,
                 trace_id: Union[str, None] = None) -> RelationalSpec:
        engine = engine if engine is not None else self.engine
        metrics, provenance = self._instruments(trace_id)
        try:
            if deadline is None:
                return compute_specification(tdd.rules, tdd.database,
                                             max_window=self.max_window,
                                             engine=engine,
                                             metrics=metrics,
                                             provenance=provenance)
            start = time.monotonic()
            window_cap = max(64, 4 * (tdd.database.c + 1))
            while True:
                if time.monotonic() - start >= deadline:
                    raise DeadlineExceeded(
                        f"spec computation exceeded the {deadline}s "
                        "budget")
                try:
                    return compute_specification(
                        tdd.rules, tdd.database, max_window=window_cap,
                        engine=engine, metrics=metrics,
                        provenance=provenance)
                except EvaluationError:
                    if window_cap >= self.max_window:
                        raise
                    window_cap = min(window_cap * 4, self.max_window)
        finally:
            # The registry accumulated across deepening retries; one
            # flush files everything the computation actually did.
            self._observe_compute(metrics)

    def specification(self, tdd: TDD,
                      deadline: Union[float, None] = None,
                      key: Union[str, None] = None,
                      parent: Union[Span, None] = None,
                      engine: Union[str, None] = None
                      ) -> tuple[RelationalSpec, str]:
        """The spec for a TDD, via the cache; returns (spec, source).

        ``source`` is ``"memory"``, ``"disk"``, or ``"computed"``.
        Raises :class:`DeadlineExceeded` when computation cannot finish
        in budget, and :class:`~repro.lang.errors.EvaluationError` when
        BT finds no period within ``max_window``.  ``key`` lets callers
        that already know the content key skip re-deriving it;
        ``parent`` is an optional telemetry span the cache-lookup and
        spec-compute child spans hang off; ``engine`` overrides the
        service's window engine for a miss (cache keys are engine-free:
        the spec is the same object whichever engine built it).
        """
        if key is None:
            key = tdd_key(tdd)
        spec, source = self.cache.get_with_source(key, parent=parent)
        if spec is not None:
            return spec, source
        lock = self._key_lock(key)
        acquired = lock.acquire(
            timeout=deadline if deadline is not None else -1)
        if not acquired:
            with self._counters_lock:
                self._counters.singleflight_waits += 1
            raise DeadlineExceeded(
                f"timed out waiting for an in-flight computation of "
                f"{key[:12]}…")
        try:
            # Double-check: another thread may have filled the cache
            # while this one waited on the key lock.
            spec, source = self.cache.get_with_source(key,
                                                      parent=parent)
            if spec is not None:
                with self._counters_lock:
                    self._counters.singleflight_waits += 1
                return spec, source
            # Cross-process single-flight: with a disk-backed cache,
            # claim the key's flight lease before computing.  A denied
            # claim means a peer process is already running BT for
            # this key — poll for its stored result instead of
            # duplicating the work, but only for a bounded window
            # (fail open and compute if the peer dies or stalls).
            claimed = self.cache.try_claim(key, self._flight_owner)
            if not claimed:
                wait_limit = PEER_WAIT_LIMIT
                if deadline is not None:
                    wait_limit = min(wait_limit, deadline)
                wait_deadline = time.monotonic() + wait_limit
                while not claimed:
                    spec, source = self.cache.get_with_source(
                        key, parent=parent)
                    if spec is not None:
                        with self._counters_lock:
                            self._counters.singleflight_waits += 1
                        return spec, source
                    if time.monotonic() >= wait_deadline:
                        break
                    time.sleep(0.05)
                    claimed = self.cache.try_claim(key,
                                                   self._flight_owner)
            try:
                with self._flight_lock:
                    self._computes[key] = self._computes.get(key, 0) + 1
                with self._counters_lock:
                    self._counters.spec_computes += 1
                span = (None if parent is None
                        else parent.child("spec.compute", key=key[:12]))
                try:
                    spec = self._compute(
                        tdd, deadline, engine=engine,
                        trace_id=(None if parent is None
                                  else parent.trace_id))
                except (DeadlineExceeded, EvaluationError) as exc:
                    if span is not None:
                        span.set_attribute("error", str(exc))
                    raise
                finally:
                    if span is not None:
                        span.end()
                self.cache.put(key, spec)
                return spec, COMPUTED
            finally:
                if claimed:
                    self.cache.release_claim(key, self._flight_owner)
        finally:
            lock.release()

    # -- degraded (windowed) evaluation ----------------------------------

    def _degraded_answer(self, tdd: TDD, query: Query,
                         request: QueryRequest,
                         trace_id: Union[str, None] = None
                         ) -> Union[bool, dict]:
        bound = max(self.degraded_window, max_ground_time(query),
                    tdd.database.c)
        metrics, provenance = self._instruments(trace_id)
        try:
            result = bt_evaluate(tdd.rules, tdd.database, window=bound,
                                 engine=self._request_engine(request),
                                 metrics=metrics, provenance=provenance)
        finally:
            self._observe_compute(metrics)
        if request.kind == "ask":
            return evaluate_on_model(query, result)
        concrete = answers_on_model(query, result, time_bound=bound)
        sorts = free_variables(query)
        return {
            "variables": [[name, sorts[name]] for name in sorted(sorts)],
            "concrete": concrete,
            "window": bound,
        }

    # -- request handling -------------------------------------------------

    def _explain_proof(self, tdd: TDD, query: Query) -> Union[dict, None]:
        """Recorded proof payload for a true ground ask (``explain``).

        Evaluates the TDD with provenance recording on (cached on the
        TDD, so repeat explains of one program pay BT once) and returns
        the fact's ancestor sub-DAG plus depth/size summary counts.
        Beyond-horizon facts fold through the period first, keeping the
        proof bounded by the window rather than the query timepoint.
        Returns ``None`` when no proof applies (non-atomic query, or
        the recorded run cannot reach the fact).
        """
        from ..core.queries import AtomQ
        from ..lang.atoms import Fact
        if not isinstance(query, AtomQ) or not query.atom.is_ground:
            return None
        try:
            provenance = tdd.provenance()
            result = tdd.evaluate()
        except ReproError:
            return None
        fact = query.atom.to_fact()
        if (fact.time is not None and fact.time > result.horizon
                and result.period is not None):
            fact = Fact(fact.pred, result.period.fold(fact.time),
                        fact.args)
        derivation = provenance.derivation(fact, database=tdd.database)
        if derivation is None:
            return None
        dag = provenance.to_json_dict(root=fact)
        return {
            "fact": str(fact),
            "proof_depth": derivation.depth,
            "proof_facts": len(dag["nodes"]),
            "dag": dag,
        }

    def _answer_payload(self, query: Query, spec: RelationalSpec,
                        request: QueryRequest) -> dict:
        result = spec_answers(query, spec)
        names = [name for name, _ in result.variables]
        payload = {
            "variables": [list(pair) for pair in result.variables],
            "canonical": [
                {name: sub[name] for name in names} for sub in result
            ],
            "infinite": result.is_infinite,
            "b": result.b,
            "p": result.p,
            "rewrites": str(result.rewrites),
        }
        if request.expand is not None:
            payload["expanded"] = list(result.expand(request.expand))
        return payload

    def _serve_parsed(self, tdd: TDD, spec: Union[RelationalSpec, None],
                      source: Union[str, None], key: str,
                      request: QueryRequest,
                      spec_error: Union[Exception, None],
                      parent: Union[Span, None] = None
                      ) -> QueryResponse:
        span = self.telemetry.span("answer", parent=parent,
                                   kind=request.kind)
        degraded = False
        try:
            if request.kind not in ("ask", "answers"):
                raise ReproError(
                    f"unknown request kind {request.kind!r} "
                    "(expected 'ask' or 'answers')")
            query = parse_query(request.query, tdd.temporal_preds)
            if request.kind == "ask" and free_variables(query):
                raise ReproError(
                    "'ask' needs a closed query; use kind='answers' "
                    "for open queries")
            if spec is None:
                # Spec unavailable in budget (or no period): windowed
                # fallback, marked degraded.
                if not isinstance(spec_error,
                                  (DeadlineExceeded, EvaluationError)):
                    raise spec_error  # pragma: no cover - defensive
                degraded = True
                answer = self._degraded_answer(tdd, query, request,
                                               trace_id=span.trace_id)
            elif request.kind == "ask":
                answer = evaluate(query, spec)
            else:
                answer = self._answer_payload(query, spec, request)
            proof = None
            if (request.explain and request.kind == "ask"
                    and answer is True and not degraded):
                proof = self._explain_proof(tdd, query)
        except ReproError as exc:
            with self._counters_lock:
                self._counters.errors += 1
            span.set_attribute("error", str(exc))
            return QueryResponse(
                ok=False, kind=request.kind, key=key, error=str(exc),
                elapsed_ms=span.end(),
                trace_id=span.trace_id)
        with self._counters_lock:
            if request.kind == "ask":
                self._counters.asks += 1
            else:
                self._counters.open_queries += 1
            if degraded:
                self._counters.degraded += 1
            if proof is not None:
                self._counters.explained += 1
        span.set_attribute("degraded", degraded)
        return QueryResponse(
            ok=True, kind=request.kind, answer=answer, degraded=degraded,
            source=None if degraded else source, key=key,
            elapsed_ms=span.end(),
            trace_id=span.trace_id, proof=proof)

    def serve(self, request: QueryRequest,
              parent: Union[Span, None] = None) -> QueryResponse:
        """Answer one request (sugar for a singleton batch)."""
        return self.serve_batch([request], parent=parent)[0]

    def serve_batch(self, requests: Sequence[QueryRequest],
                    parent: Union[Span, None] = None
                    ) -> list[QueryResponse]:
        """Answer a batch; order of responses matches the requests.

        Requests are grouped by program text: each distinct program is
        parsed once and its specification acquired once for the whole
        group.

        ``parent`` is the telemetry span the batch runs under — the
        HTTP front-end passes its per-request root span so the whole
        serving path shares one trace id.  Without one, the service
        opens its own ``serve.batch`` root, so direct (embedded) use
        is traced identically.  Every response is stamped with the
        trace id and its end-to-end ``duration_ms`` (which includes
        the request's share of the group's parse + spec acquisition),
        and each duration feeds the service's latency histogram —
        exactly one observation per request, so the histogram count
        reconciles with the ``requests`` counter.
        """
        with self._counters_lock:
            self._counters.requests += len(requests)
            self._counters.batches += 1
            self._counters.batched_requests += len(requests)
            self._counters.max_batch = max(self._counters.max_batch,
                                           len(requests))
        root = parent
        own_root = root is None
        if own_root:
            root = self.telemetry.root("serve.batch",
                                       requests=len(requests))
        responses: list[Union[QueryResponse, None]] = [None] * len(requests)
        groups: dict[str, list[int]] = {}
        for index, request in enumerate(requests):
            groups.setdefault(request.program, []).append(index)
        for program, indexes in groups.items():
            parse_span = self.telemetry.span("parse", parent=root)
            try:
                tdd, key = self._resolve_program(program)
            except ReproError as exc:
                parse_span.set_attribute("error", str(exc))
                parse_ms = parse_span.end()
                with self._counters_lock:
                    self._counters.errors += len(indexes)
                for index in indexes:
                    responses[index] = QueryResponse(
                        ok=False, kind=requests[index].kind,
                        error=f"program parse error: {exc}",
                        duration_ms=parse_ms,
                        trace_id=root.trace_id)
                    self.latency.observe(parse_ms)
                continue
            parse_span.set_attribute("key", key[:12])
            parse_ms = parse_span.end()
            if self.max_predicted_cost is not None:
                cost = self._predicted_cost(tdd, key)
                if cost > self.max_predicted_cost:
                    with self._counters_lock:
                        self._counters.refused += len(indexes)
                    for index in indexes:
                        responses[index] = QueryResponse(
                            ok=False, kind=requests[index].kind,
                            key=key, refused=True,
                            error=(f"admission control: predicted "
                                   f"evaluation cost {cost:.1f} exceeds "
                                   f"max_predicted_cost="
                                   f"{self.max_predicted_cost:g}"),
                            duration_ms=parse_ms,
                            trace_id=root.trace_id)
                        self.latency.observe(parse_ms)
                    continue
            deadlines = [requests[i].deadline for i in indexes]
            if any(d is None for d in deadlines):
                deadline = self.default_deadline
            else:
                deadline = max(d for d in deadlines if d is not None)
            # A group shares one spec computation; when any request in
            # it names an engine, that engine runs it (the spec itself
            # is engine-independent, so sharing stays sound).
            overrides = [requests[i].engine for i in indexes
                         if requests[i].engine is not None]
            engine = (canonical_window_engine(overrides[0])
                      if overrides else self.engine)
            spec: Union[RelationalSpec, None] = None
            source: Union[str, None] = None
            spec_error: Union[Exception, None] = None
            acquire_start = time.monotonic()
            try:
                spec, source = self.specification(tdd, deadline,
                                                  key=key, parent=root,
                                                  engine=engine)
            except (DeadlineExceeded, EvaluationError) as exc:
                spec_error = exc
            overhead_ms = (parse_ms
                           + (time.monotonic() - acquire_start) * 1e3)
            for index in indexes:
                response = self._serve_parsed(
                    tdd, spec, source, key, requests[index],
                    spec_error, parent=root)
                response.duration_ms = overhead_ms + response.elapsed_ms
                response.trace_id = root.trace_id
                self.latency.observe(response.duration_ms)
                responses[index] = response
        if own_root:
            root.end()
        return [r for r in responses if r is not None]

    # -- stats -------------------------------------------------------------

    def counters(self) -> dict:
        """Service-side counters (requests, batches, degradations)."""
        with self._counters_lock:
            return self._counters.to_dict()

    def stats_dict(self) -> dict:
        """Everything observable: serve counters, cache counters, and
        the request-latency distribution (buckets + p50/p95/p99)."""
        return {"serve": self.counters(),
                "cache": self.cache.counters(),
                "latency": self.latency.to_dict()}

    def attach_stats(self, stats) -> None:
        """Land the counters in an :class:`repro.obs.EvalStats` so they
        reach ``--stats`` output and benchreport columns."""
        stats.extra["serve"] = self.counters()
        stats.extra["cache"] = self.cache.counters()
        stats.extra["latency"] = self.latency.to_dict()

    def prometheus_text(self) -> str:
        """The ``GET /metrics`` payload: Prometheus text exposition.

        Counter values come from the same snapshots ``/stats`` serves,
        so ``repro_requests_total`` always equals
        ``stats["serve"]["requests"]`` and the histogram count equals
        the number of served requests — the reconciliation the CI
        smoke job and the telemetry concurrency test assert.
        """
        return render_prometheus(self.counters(),
                                 self.cache.counters(),
                                 self.latency)


def render_prometheus(serve: dict, cache: dict, latency,
                      extra_lines: Sequence[str] = ()) -> str:
    """Prometheus text exposition from counter snapshots.

    Shared by the single-process server (one service's counters) and
    the multi-process front-end (the same counters aggregated across
    workers, plus ``repro_worker_*`` lines via ``extra_lines``).
    ``latency`` is anything with ``prometheus_lines(name)`` — a
    :class:`~repro.obs.telemetry.LatencyHistogram`, merged or not.
    """
    from .. import __version__
    from ..obs.trace import TRACE_SCHEMA
    lines = [
        "# HELP repro_info Build information.",
        "# TYPE repro_info gauge",
        f'repro_info{{version="{__version__}",'
        f'trace_schema="{TRACE_SCHEMA}"}} 1',
    ]

    def counter(name: str, help_text: str, value: int,
                labels: str = "") -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}{labels} {value}")

    counter("repro_requests_total",
            "Query requests received.", serve["requests"])
    counter("repro_batches_total",
            "Request batches served.", serve["batches"])
    counter("repro_degraded_total",
            "Responses answered by the windowed fallback.",
            serve["degraded"])
    counter("repro_refused_total",
            "Requests refused by cost-based admission control.",
            serve["refused"])
    counter("repro_errors_total",
            "Requests that failed (parse/kind/query errors).",
            serve["errors"])
    counter("repro_spec_computes_total",
            "Full BT specification computations.",
            serve["spec_computes"])
    counter("repro_singleflight_waits_total",
            "Requests that waited on an in-flight computation.",
            serve["singleflight_waits"])
    counter("repro_explained_total",
            "Responses carrying a recorded proof DAG "
            "(explain: true).", serve["explained"])
    counter("repro_cache_lookups_total",
            "Spec cache lookups.", cache["lookups"])
    lines.append("# HELP repro_cache_hits_total "
                 "Spec cache hits by layer.")
    lines.append("# TYPE repro_cache_hits_total counter")
    lines.append('repro_cache_hits_total{layer="memory"} '
                 f'{cache["mem_hits"]}')
    lines.append('repro_cache_hits_total{layer="disk"} '
                 f'{cache["disk_hits"]}')
    counter("repro_cache_misses_total",
            "Spec cache misses.", cache["misses"])
    counter("repro_cache_corrupt_total",
            "Corrupt/version-skewed cache rows discarded.",
            cache["corrupt"])
    counter("repro_cache_evictions_total",
            "LRU evictions from the in-memory layer.",
            cache["evictions"])
    lines.append("# HELP repro_cache_memory_entries "
                 "Entries currently in the in-memory LRU.")
    lines.append("# TYPE repro_cache_memory_entries gauge")
    lines.append("repro_cache_memory_entries "
                 f'{cache["memory_entries"]}')
    lines.extend(latency.prometheus_lines(
        "repro_request_duration_seconds"))
    lines.extend(extra_lines)
    return "\n".join(lines) + "\n"
