"""Interval-coalesced bottom-up evaluation.

The slice engine of :mod:`repro.temporal.operator` touches every
timepoint individually; workloads whose predicates hold over long runs
(the travel example's 90-day seasons, maintenance windows, ...) do the
same work once per day.  This engine instead represents each tuple's
timepoints as an :class:`IntervalSet` — a sorted sequence of disjoint
closed intervals — and fires rules with set algebra:

    for a rule  H(T+k0) :- B1(T+k1), ..., Bn(T+kn), nt-atoms
    and one data binding of the body,
        T-set = ⋂ᵢ shift(times(Bᵢ tuple), -kᵢ)
        head tuple gains  clip(shift(T-set, +k0), 0, horizon)

so a 90-day season contributes one interval operation instead of 90
slice operations.  Supported fragment: definite, range-restricted,
semi-normal rules (one temporal variable; any offsets — forward or
backward).  Results equal the slice engine's window fixpoint exactly
(property-tested); benchmark E15 measures the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, Iterator, Sequence, Union

from ..datalog.facts import ArgTuple, FactStore
from ..lang.atoms import Atom
from ..lang.errors import EvaluationError
from ..lang.rules import Rule, validate_rules
from ..lang.terms import Const, Var
from .database import TemporalDatabase
from .store import TemporalStore

Interval = tuple[int, int]


@dataclass(frozen=True)
class IntervalSet:
    """An immutable set of timepoints as disjoint sorted intervals."""

    intervals: tuple[Interval, ...] = ()

    @classmethod
    def from_points(cls, points: Iterable[int]) -> "IntervalSet":
        ordered = sorted(set(points))
        if not ordered:
            return cls()
        out = []
        start = prev = ordered[0]
        for t in ordered[1:]:
            if t == prev + 1:
                prev = t
                continue
            out.append((start, prev))
            start = prev = t
        out.append((start, prev))
        return cls(tuple(out))

    @classmethod
    def point(cls, t: int) -> "IntervalSet":
        return cls(((t, t),))

    @classmethod
    def span(cls, lo: int, hi: int) -> "IntervalSet":
        return cls() if hi < lo else cls(((lo, hi),))

    def __bool__(self) -> bool:
        return bool(self.intervals)

    def __contains__(self, t: int) -> bool:
        # Binary search over the disjoint sorted intervals.
        lo, hi = 0, len(self.intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            a, b = self.intervals[mid]
            if t < a:
                hi = mid - 1
            elif t > b:
                lo = mid + 1
            else:
                return True
        return False

    def cardinality(self) -> int:
        return sum(b - a + 1 for a, b in self.intervals)

    def points(self) -> Iterator[int]:
        for a, b in self.intervals:
            yield from range(a, b + 1)

    def shift(self, delta: int) -> "IntervalSet":
        return IntervalSet(tuple(
            (a + delta, b + delta) for a, b in self.intervals))

    def clip(self, lo: int, hi: int) -> "IntervalSet":
        out = []
        for a, b in self.intervals:
            a2, b2 = max(a, lo), min(b, hi)
            if a2 <= b2:
                out.append((a2, b2))
        return IntervalSet(tuple(out))

    def union(self, other: "IntervalSet") -> "IntervalSet":
        if not other.intervals:
            return self
        if not self.intervals:
            return other
        merged = sorted(self.intervals + other.intervals)
        out = [merged[0]]
        for a, b in merged[1:]:
            la, lb = out[-1]
            if a <= lb + 1:
                out[-1] = (la, max(lb, b))
            else:
                out.append((a, b))
        return IntervalSet(tuple(out))

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        out = []
        i = j = 0
        mine, theirs = self.intervals, other.intervals
        while i < len(mine) and j < len(theirs):
            a = max(mine[i][0], theirs[j][0])
            b = min(mine[i][1], theirs[j][1])
            if a <= b:
                out.append((a, b))
            if mine[i][1] < theirs[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet(tuple(out))

    def __str__(self) -> str:
        return "{" + ", ".join(
            f"{a}..{b}" if b > a else str(a)
            for a, b in self.intervals) + "}"


class IntervalStore:
    """Per-(predicate, tuple) interval sets plus a non-temporal part."""

    def __init__(self) -> None:
        self._temporal: dict[str, dict[ArgTuple, IntervalSet]] = {}
        self.nt = FactStore()

    def times(self, pred: str, args: ArgTuple) -> IntervalSet:
        return self._temporal.get(pred, {}).get(args, IntervalSet())

    def tuples(self, pred: str) -> "dict[ArgTuple, IntervalSet]":
        return self._temporal.get(pred, {})

    def merge(self, pred: str, args: ArgTuple,
              times: IntervalSet) -> bool:
        """Union new times in; True when the set actually grew."""
        if not times:
            return False
        table = self._temporal.setdefault(pred, {})
        current = table.get(args, IntervalSet())
        merged = current.union(times)
        if merged.intervals == current.intervals:
            return False
        table[args] = merged
        return True

    def to_store(self) -> TemporalStore:
        """Expand into the slice representation (for period detection,
        comparisons, and the rest of the pipeline)."""
        store = TemporalStore()
        for pred, table in self._temporal.items():
            for args, times in table.items():
                for t in times.points():
                    store.add(pred, t, args)
        for fact in self.nt.facts():
            store.add_fact(fact)
        return store


def _check_fragment(rules: Sequence[Rule]) -> None:
    for rule in rules:
        if rule.is_fact:
            continue
        if not rule.is_definite:
            raise EvaluationError(
                "the interval engine handles definite rules"
            )
        if not rule.is_semi_normal:
            raise EvaluationError(
                f"rule {rule} has several temporal variables; "
                "normalize to semi-normal form first"
            )


def _data_bindings(atoms: Sequence[Atom], store: IntervalStore,
                   binding: dict) -> Iterator[dict]:
    """Enumerate data-level bindings; time is handled separately."""
    if not atoms:
        yield binding
        return
    atom, rest = atoms[0], atoms[1:]
    if atom.time is None:
        positions, key = [], []
        for i, arg in enumerate(atom.args):
            if isinstance(arg, Const):
                positions.append(i)
                key.append(arg.value)
            elif arg.name in binding:
                positions.append(i)
                key.append(binding[arg.name])
        candidates = store.nt.lookup(atom.pred, tuple(positions),
                                     tuple(key))
    else:
        candidates = list(store.tuples(atom.pred))
    for args in candidates:
        extended = _extend(atom, args, binding)
        if extended is not None:
            yield from _data_bindings(rest, store, extended)


def _extend(atom: Atom, args: ArgTuple,
            binding: dict) -> Union[dict, None]:
    new = None
    for pattern, value in zip(atom.args, args):
        if isinstance(pattern, Const):
            if pattern.value != value:
                return None
        else:
            source = new if new is not None else binding
            bound = source.get(pattern.name)
            if bound is None:
                if new is None:
                    new = dict(binding)
                new[pattern.name] = value
            elif bound != value:
                return None
    return new if new is not None else binding


def _bound_args(atom: Atom, binding: dict) -> ArgTuple:
    return tuple(
        binding[a.name] if isinstance(a, Var) else a.value
        for a in atom.args
    )


def interval_fixpoint(rules: Sequence[Rule], database: TemporalDatabase,
                      horizon: int, stats=None,
                      tracer=None, metrics=None) -> TemporalStore:
    """The window least fixpoint, computed with interval algebra.

    Equals ``fixpoint(rules, database, horizon)`` exactly; use when the
    model's tuples hold over long runs of timepoints.
    """
    validate_rules(rules)
    proper = [r for r in rules if not r.is_fact]
    _check_fragment(proper)
    if stats is not None:
        stats.engine = "interval"
        stats.horizon = (horizon if stats.horizon is None
                         else max(stats.horizon, horizon))
    if tracer is not None:
        tracer.emit("eval_start", engine="interval", horizon=horizon,
                    rules=len(proper))

    store = IntervalStore()
    by_tuple: dict[tuple[str, ArgTuple], list[int]] = {}
    for fact in database.facts():
        if fact.time is None:
            store.nt.add(fact.pred, fact.args)
        elif fact.time <= horizon:
            by_tuple.setdefault((fact.pred, fact.args),
                                []).append(fact.time)
    for rule in rules:
        if rule.is_fact:
            fact = rule.head.to_fact()
            if fact.time is None:
                store.nt.add(fact.pred, fact.args)
            elif fact.time <= horizon:
                by_tuple.setdefault((fact.pred, fact.args),
                                    []).append(fact.time)
    for (pred, args), times in by_tuple.items():
        store.merge(pred, args, IntervalSet.from_points(times))

    plans = [(rule, metrics.rule(rule) if metrics is not None else None)
             for rule in proper]
    changed = True
    round_no = 0
    while changed:
        round_no += 1
        changed = False
        merges = 0
        for rule, rm in plans:
            if rm is not None:
                rule_t0 = perf_counter()
                rm.begin_round()
            # Saturate each rule before moving on: a self-recursive
            # rule (the common shape) then converges inside one outer
            # pass instead of driving O(horizon/offset) global passes.
            while True:
                grew = _fire_rule(rule, store, horizon, stats=stats,
                                  rm=rm)
                merges += grew
                if not grew:
                    break
                changed = True
            if rm is not None:
                rm.seconds += perf_counter() - rule_t0
                rm.end_round()
        if stats is not None:
            stats.record_round(derived=merges)
        if tracer is not None:
            tracer.emit("round", round=round_no, merges=merges)
    if tracer is not None:
        tracer.emit("eval_end")
    if metrics is not None and stats is not None:
        metrics.export_into(stats)
    return store.to_store()


def _fire_rule(rule: Rule, store: IntervalStore, horizon: int,
               stats=None, rm=None) -> int:
    """Fire one rule over all data bindings; returns the number of
    tuple-interval merges that grew the store (0 = fixpoint).

    ``rm`` is the rule's :class:`~repro.obs.metrics.RuleMetrics` record;
    a firing here is a binding whose head interval set is non-empty, and
    one merge that grows the store counts as one new fact (the engine's
    unit of derivation, mirroring ``record_round(derived=merges)``).
    """
    head = rule.head
    grew = 0
    for binding in _data_bindings(rule.body, store, {}):
        if stats is not None:
            stats.join_probes += 1
        if rm is not None:
            rm.probes += 1
        times: Union[IntervalSet, None] = None
        dead = False
        for atom in rule.body:
            if atom.time is None:
                continue
            args = _bound_args(atom, binding)
            tuple_times = store.times(atom.pred, args)
            if atom.time.var is None:
                if atom.time.offset not in tuple_times:
                    dead = True
                    break
                continue
            shifted = tuple_times.shift(-atom.time.offset)
            times = shifted if times is None else \
                times.intersect(shifted)
            if not times:
                dead = True
                break
        if dead:
            continue
        head_args = _bound_args(head, binding)
        if head.time is None:
            # Non-temporal head: derivable when the body is satisfiable
            # at some timepoint (or the body was purely non-temporal).
            if times is None or times.clip(0, horizon):
                if rm is not None:
                    rm.firings += 1
                if store.nt.add(head.pred, head_args):
                    grew += 1
                    if rm is not None:
                        rm.new_facts += 1
                elif rm is not None:
                    rm.duplicates += 1
            continue
        assert times is not None, "range-restricted head needs T bound"
        head_times = times.shift(head.time.offset).clip(0, horizon)
        # The body variable T itself ranges over >= 0 only.
        head_times = head_times.clip(head.time.offset, horizon)
        if rm is not None and head_times:
            rm.firings += 1
        if store.merge(head.pred, head_args, head_times):
            grew += 1
            if rm is not None:
                rm.new_facts += 1
        elif rm is not None and head_times:
            rm.duplicates += 1
    return grew


def interval_bt(rules: Sequence[Rule], database: TemporalDatabase,
                horizon: int, stats=None, tracer=None,
                metrics=None) -> TemporalStore:
    """Alias of :func:`interval_fixpoint` (naming symmetry with bt)."""
    return interval_fixpoint(rules, database, horizon, stats=stats,
                             tracer=tracer, metrics=metrics)
