"""Incremental maintenance of temporal least models.

A practical extension beyond the paper: temporal databases grow — new
seed facts arrive (a new resort opens, an edge is added) — and
recomputing BT from scratch on every insertion wastes the work already
done.  For the paper's *definite* rules the least model is monotone in
the database, so an insertion is exactly a semi-naive continuation: the
new facts form the initial delta and the existing window model absorbs
their consequences.

Two wrinkles are handled:

* **window growth** — an inserted fact may lie beyond the current
  window, or move the period threshold; the model re-detects its period
  after every insertion and, when detection fails (or the certificate
  conditions stop holding), extends the window by continuing the
  fixpoint from the *frontier* (the last ``g`` slices seed the delta —
  complete for forward programs, whose derivations only look back
  ``g`` slices);
* **non-monotone programs** — rules with (stratified) negation lose
  monotonicity, so insertion falls back to recomputation (the API is
  unchanged; ``stats`` reports which path ran).

Deletion is supported for definite forward programs via the classical
**DRed** (delete-and-rederive) algorithm: overdelete everything whose
derivations might have used a removed fact, then rederive what still
has deleted-free support from the remainder; non-monotone programs fall
back to recomputation.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from ..lang.atoms import Atom, Fact
from ..lang.errors import EvaluationError
from ..lang.rules import Rule, validate_rules
from ..datalog.engine import plan_order
from .bt import BTResult, bt_evaluate
from .database import TemporalDatabase
from .operator import (_head_values, continue_fixpoint, temporal_join)
from .periodicity import (Period, find_minimal_period, forward_lookback)
from .stratified import is_definite
from .store import TemporalStore


class IncrementalModel:
    """A temporal least model maintained under fact insertions."""

    def __init__(self, rules: Sequence[Rule],
                 database: Union[TemporalDatabase, Iterable[Fact]] = (),
                 max_window: int = 1 << 20,
                 stats=None, tracer=None, metrics=None):
        validate_rules(rules)
        self.rules = tuple(r for r in rules if not r.is_fact)
        if not isinstance(database, TemporalDatabase):
            database = TemporalDatabase(database)
        self.database = database
        self.max_window = max_window
        self._definite = is_definite(self.rules)
        self._g = max((r.temporal_depth for r in self.rules), default=1)
        self._g = max(self._g, 1)
        self._lookback = forward_lookback(self.rules)
        self.eval_stats = stats
        self.tracer = tracer
        self.metrics = metrics
        self._result = bt_evaluate(self.rules, database,
                                   max_window=max_window,
                                   stats=stats, tracer=tracer,
                                   metrics=metrics)
        if stats is not None:
            stats.engine = "incremental"
        self.stats = {"inserts": 0, "deletes": 0, "incremental": 0,
                      "recomputed": 0, "facts_added": 0}

    # -- queries -------------------------------------------------------------

    @property
    def result(self) -> BTResult:
        return self._result

    @property
    def period(self) -> Union[Period, None]:
        return self._result.period

    def holds(self, fact: Union[Fact, Atom]) -> bool:
        return self._result.holds(fact)

    def __len__(self) -> int:
        return len(self._result.store)

    # -- mutation --------------------------------------------------------

    def insert(self, facts: Union[Fact, Iterable[Fact]]) -> None:
        """Insert facts and bring the model (and its period) up to date."""
        if isinstance(facts, Fact):
            facts = [facts]
        facts = list(facts)
        self.stats["inserts"] += 1
        for fact in facts:
            self.database.add_fact(fact)

        recompute = (
            not self._definite
            or self._lookback is None
            or any(fact.time is not None
                   and fact.time > self._result.horizon
                   for fact in facts)
        )
        if self.tracer is not None:
            self.tracer.emit("insert", facts=len(facts),
                             path="recompute" if recompute
                             else "incremental")
        if recompute:
            self.stats["recomputed"] += 1
            self._result = bt_evaluate(self.rules, self.database,
                                       max_window=self.max_window,
                                       stats=self.eval_stats,
                                       tracer=self.tracer,
                                       metrics=self.metrics)
            self._note_paths()
            return

        self.stats["incremental"] += 1
        store = self._result.store
        delta = TemporalStore()
        for fact in facts:
            if store.add_fact(fact):
                delta.add_fact(fact)
        added = continue_fixpoint(self.rules, store, delta,
                                  self._result.horizon,
                                  stats=self.eval_stats,
                                  tracer=self.tracer,
                                  metrics=self.metrics)
        self.stats["facts_added"] += added + len(delta)
        self._note_paths()
        self._refresh_period()

    def delete(self, facts: Union[Fact, Iterable[Fact]]) -> None:
        """Delete database facts and bring the model up to date (DRed).

        Facts not present in the database are ignored.  Definite
        programs run overdelete + rederive on the existing window model;
        stratified programs recompute.
        """
        if isinstance(facts, Fact):
            facts = [facts]
        removed = [fact for fact in facts
                   if self.database.discard_fact(fact)]
        if not removed:
            return
        self.stats.setdefault("deletes", 0)
        self.stats["deletes"] += 1

        if self.tracer is not None:
            self.tracer.emit("delete", facts=len(removed))
        if not self._definite or self._lookback is None:
            self.stats["recomputed"] += 1
            self._result = bt_evaluate(self.rules, self.database,
                                       max_window=self.max_window,
                                       stats=self.eval_stats,
                                       tracer=self.tracer,
                                       metrics=self.metrics)
            self._note_paths()
            return

        store = self._result.store
        horizon = self._result.horizon

        # Phase 1 — overdelete: mark everything whose derivation may
        # have used a removed fact (transitively).
        marked = TemporalStore(f for f in removed if f in store)
        frontier = marked.copy()
        plans = [
            (rule, [(i, plan_order(rule.body, first=i))
                    for i in range(len(rule.body))])
            for rule in self.rules
        ]
        while len(frontier):
            next_frontier = TemporalStore()
            for rule, leads in plans:
                for i, order in leads:
                    stores = [frontier] + [store] * (len(order) - 1)
                    for binding in temporal_join(rule.body, order,
                                                 stores):
                        pred, time, args = _head_values(rule.head,
                                                        binding)
                        if time is not None and time > horizon:
                            continue
                        if store.contains(pred, time, args) and \
                                marked.add(pred, time, args):
                            next_frontier.add(pred, time, args)
            frontier = next_frontier
        for fact in marked.facts():
            store.discard_fact(fact)

        # Phase 2 — rederive: marked facts with deleted-free support
        # seed a normal semi-naive continuation.  A marked fact that is
        # still a database fact rederives extensionally.
        delta = TemporalStore()
        for fact in marked.facts():
            if fact in self.database and store.add_fact(fact):
                delta.add_fact(fact)
        for rule, _ in plans:
            order = plan_order(rule.body)
            stores = [store] * len(order)
            for binding in temporal_join(rule.body, order, stores):
                pred, time, args = _head_values(rule.head, binding)
                if time is not None and time > horizon:
                    continue
                if marked.contains(pred, time, args):
                    if store.add(pred, time, args):
                        delta.add(pred, time, args)
        continue_fixpoint(self.rules, store, delta, horizon,
                          stats=self.eval_stats, tracer=self.tracer,
                          metrics=self.metrics)
        self._note_paths()
        self._refresh_period()

    def _note_paths(self) -> None:
        """Mirror the per-operation counters into the EvalStats extras."""
        if self.eval_stats is not None:
            self.eval_stats.engine = "incremental"
            self.eval_stats.extra.update(self.stats)

    def _refresh_period(self) -> None:
        """Re-detect the period; extend the window from the frontier
        until the forwardness certificate holds again."""
        result = self._result
        c = self.database.c
        while True:
            states = result.store.states(0, result.horizon)
            found = find_minimal_period(states, floor=0, g=self._g)
            if found is not None:
                b, p = found
                if max(b, c + 1) + p + self._g - 1 <= result.horizon:
                    result.c = c
                    result.period = Period(
                        b, p, certified=True,
                        verified_horizon=result.horizon)
                    return
            if result.horizon * 2 > self.max_window:
                raise EvaluationError(
                    "window exceeded max_window while re-detecting the "
                    "period after insertion"
                )
            self._extend_window(result.horizon * 2)
            result = self._result

    def _extend_window(self, new_horizon: int) -> None:
        """Grow the window by continuing from the frontier slices.

        Complete for forward programs: any fact beyond the old horizon
        derives, within ``g`` steps, from a fact in the last ``g``
        slices of the old window or from another new fact.
        """
        store = self._result.store
        old_horizon = self._result.horizon
        delta = TemporalStore()
        for fact in store.segment(max(old_horizon - self._g + 1, 0),
                                  old_horizon):
            delta.add_fact(fact)
        for fact in store.nt.facts():
            delta.add_fact(fact)
        continue_fixpoint(self.rules, store, delta, new_horizon,
                          stats=self.eval_stats, tracer=self.tracer,
                          metrics=self.metrics)
        self._result.horizon = new_horizon
