"""Period detection for least models of temporal rules.

A model ``M`` of ``Z ∧ D`` (with ``c`` the maximum temporal depth in
``D``) is *periodic with period* ``(b, p)`` when ``M[t] = M[t+p]`` for all
``t ≥ b`` (Section 3.2; the paper writes the period as ``(k - c, p)`` —
we carry the absolute threshold ``b``).  For semi-normal rules with
maximum non-ground temporal depth ``g``, single-state equality is replaced
by equality of ``g`` subsequent states; detecting ``M[t] = M[t+p]`` for
every ``t`` in a long enough suffix subsumes both readings.

Theorem 3.1 guarantees a period with ``b + p`` at most exponential in the
database size; the tractable classes of Sections 5 and 6 bound it
polynomially.  :func:`find_minimal_period` recovers the minimal period of
a computed window of states, and :func:`forward_lookback` provides the
soundness certificate: for *forward* rulesets, the slice at ``t`` (beyond
the database horizon) is a function of the ``g`` preceding slices and the
stabilised non-temporal part, so an observed repetition of a ``g``-block
proves true periodicity of the infinite least model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from ..lang.rules import Rule
from .store import State


@dataclass(frozen=True)
class Period:
    """A period ``(b, p)``: states repeat with period ``p`` from time ``b``.

    ``certified`` is True when the ruleset is forward, in which case the
    period provably extends to the infinite least model; otherwise it has
    only been *verified* up to ``verified_horizon``.
    """

    b: int
    p: int
    certified: bool = False
    verified_horizon: int = 0

    def fold(self, t: int) -> int:
        """Map timepoint ``t`` to its equivalent within the first period.

        For ``t < b`` the timepoint is its own representative; beyond,
        states repeat, so ``t`` collapses to ``b + (t - b) mod p``.
        """
        if t < self.b:
            return t
        return self.b + (t - self.b) % self.p


def state_ids(states: Sequence[State]) -> list[int]:
    """Intern states as small integers for cheap equality scans."""
    seen: dict[State, int] = {}
    ids: list[int] = []
    for state in states:
        ident = seen.setdefault(state, len(seen))
        ids.append(ident)
    return ids


def _z_function(seq: Sequence[int]) -> list[int]:
    """Z-array: ``z[i]`` = length of the longest common prefix of ``seq``
    and ``seq[i:]`` (with ``z[0] = len(seq)``)."""
    n = len(seq)
    z = [0] * n
    if n == 0:
        return z
    z[0] = n
    left = right = 0
    for i in range(1, n):
        if i < right:
            z[i] = min(right - i, z[i - left])
        while i + z[i] < n and seq[z[i]] == seq[i + z[i]]:
            z[i] += 1
        if i + z[i] > right:
            left, right = i, i + z[i]
    return z


def find_minimal_period(states: Sequence[State], floor: int,
                        g: int = 1,
                        evidence: int = 2) -> Union[tuple[int, int], None]:
    """Minimal ``(b, p)`` such that ``states[t] == states[t+p]`` for every
    ``t`` in ``[b, m-p]``, with ``b ≥ floor``.

    ``states`` covers timepoints ``0..m``.  ``g`` is the block size of the
    semi-normal periodicity definition and ``evidence`` the number of full
    period repetitions that must be visible inside the window
    (``b + evidence*p + g - 1 ≤ m``); a candidate without that much
    corroboration is rejected, which makes the search robust under the
    iterative-deepening driver.  Periods are minimal in ``p`` first, then
    in ``b``, matching the paper's minimal-period convention.

    Runs in O(m) via a Z-function over the reversed state-id sequence:
    suffix periodicity of the state sequence is prefix periodicity of its
    reversal, and the Z-array yields, for each candidate ``p``, the least
    admissible start ``b_p = max(floor, m - p - z[p] + 1)`` directly.
    """
    m = len(states) - 1
    if m < floor:
        return None
    ids = state_ids(states)
    rev = ids[::-1]
    z = _z_function(rev)
    max_p = (m - floor - g + 1) // max(evidence, 1)
    best: Union[tuple[int, int], None] = None
    for p in range(1, min(max_p, m) + 1):
        b = max(floor, m - p - z[p] + 1)
        if b + evidence * p + g - 1 <= m:
            best = (b, p)
            break
    return best


def find_period_by_recurrence(states: Sequence[State],
                              floor: int) -> Union[tuple[int, int], None]:
    """Detect the period from the first repeated state at/after ``floor``.

    For *forward* programs with lookback 1 (normal rules), the slice at
    ``t > c`` is a deterministic function of the slice at ``t-1``, so
    the state sequence beyond the database horizon is rho-shaped: a
    transient tail followed by a cycle.  The first state that recurs
    marks the cycle: ``(first occurrence, gap)`` is then an exact period
    of the infinite least model — this is how the specification
    procedure the paper imports from [6] gets away with the window
    ``m = max(c, h) + range(Z∧D)``, which is far too short for the
    evidence-based detector of :func:`find_minimal_period`.

    Only sound under the lookback-1 forwardness precondition (the
    caller checks it); returns None when no recurrence lies within the
    window.
    """
    seen: dict[int, int] = {}
    ids = state_ids(states)
    for t in range(floor, len(states)):
        first = seen.get(ids[t])
        if first is not None:
            return (first, t - first)
        seen[ids[t]] = t
    return None


def holds_with_period(states: Sequence[State], b: int, p: int) -> bool:
    """Check that ``states[t] == states[t+p]`` for all ``t`` in
    ``[b, m-p]`` (used to re-verify a candidate at a larger horizon)."""
    m = len(states) - 1
    if p <= 0 or b < 0:
        return False
    ids = state_ids(states)
    return all(ids[t] == ids[t + p] for t in range(b, m - p + 1))


def forward_lookback(rules: Sequence[Rule]) -> Union[int, None]:
    """The certification lookback ``g`` of a forward ruleset, else None.

    For a forward ruleset, every derivation moves weakly forward in time,
    so the slice at ``t`` beyond the database horizon is a function of the
    preceding ``g`` slices (``g`` = the largest head-to-body offset gap)
    and the non-temporal part.  Equality of two ``g``-blocks of states
    then certifies periodicity of the infinite least model.  Returns at
    least 1; returns None when some rule is not forward.
    """
    lookback = 1
    for rule in rules:
        if rule.is_fact:
            continue
        if not rule.is_forward:
            return None
        if rule.head.time is not None and not rule.head.time.is_ground:
            head_offset = rule.head.time.offset
            for k in rule.body_offsets():
                lookback = max(lookback, head_offset - k)
    return lookback


def range_of(states: Sequence[State]) -> int:
    """Number of distinct states in the window (``range(Z ∧ D)``)."""
    return len(set(states))
