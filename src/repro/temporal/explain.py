"""Derivation explanations: why is a fact in the least model?

A production deductive database must be able to justify its answers.
Given a computed window model, :func:`explain` reconstructs a derivation
tree for a ground fact: the rule instance that produced it, recursively
down to database facts.  The reconstruction is a top-down search over
the *already computed* store, so every branch is guaranteed to succeed
for facts that are actually in the model — the search only chooses
among valid supports.

Cycles (a fact transitively "supporting" itself, which can happen in the
search space even though every true derivation is well-founded) are
avoided by keeping the current path as a guard set; the search then
falls back to alternative rule instances.  For rules with negative
literals (the stratified extension) the negated facts are recorded as
``absent`` leaves — they are justified by the Closed World Assumption,
not by a derivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from ..datalog.engine import plan_order
from ..lang.atoms import Atom, Fact
from ..lang.errors import EvaluationError
from ..lang.rules import Rule
from .operator import _head_values, temporal_join
from .store import TemporalStore


@dataclass
class Derivation:
    """A node of a derivation tree.

    ``kind`` is ``"database"`` (an extensional leaf), ``"rule"`` (an
    application of ``rule`` to the ``premises``), or ``"absent"`` (a
    negated premise, true by CWA).
    """

    fact: Fact
    kind: str
    rule: Union[Rule, None] = None
    premises: list["Derivation"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        if not self.premises:
            return 1
        return 1 + max(p.depth for p in self.premises)

    def leaves(self) -> list[Fact]:
        """The extensional facts this derivation bottoms out in."""
        if self.kind == "database":
            return [self.fact]
        if self.kind == "absent":
            return []
        out: list[Fact] = []
        for premise in self.premises:
            out.extend(premise.leaves())
        return out

    def render(self, indent: str = "") -> str:
        """A human-readable multi-line rendering of the tree."""
        if self.kind == "database":
            line = f"{indent}{self.fact}   [database]"
        elif self.kind == "absent":
            line = f"{indent}not {self.fact}   [closed world]"
        else:
            line = f"{indent}{self.fact}   [by  {self.rule}]"
        parts = [line]
        for premise in self.premises:
            parts.append(premise.render(indent + "    "))
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()


def explain(rules: Sequence[Rule], database: TemporalStore,
            store: TemporalStore, fact: Union[Fact, Atom],
            max_nodes: int = 100_000) -> Derivation:
    """A derivation tree for ``fact`` from the computed ``store``.

    ``database`` supplies the extensional leaves; ``store`` must be a
    model containing ``fact`` (e.g. ``BTResult.store``).  Raises
    :class:`EvaluationError` when the fact is not in the store or no
    well-founded derivation can be reconstructed within ``max_nodes``
    search steps.
    """
    if isinstance(fact, Atom):
        fact = fact.to_fact()
    if fact not in store:
        raise EvaluationError(f"{fact} is not in the model")
    proper = [r for r in rules if not r.is_fact]
    budget = [max_nodes]
    memo: dict[Fact, Derivation] = {}
    result = _search(fact, proper, database, store, frozenset(), memo,
                     budget)
    if result is None:
        raise EvaluationError(
            f"no derivation reconstructed for {fact} within "
            f"{max_nodes} steps"
        )
    return result


def _search(fact: Fact, rules: Sequence[Rule], database: TemporalStore,
            store: TemporalStore, path: frozenset,
            memo: dict, budget: list) -> Union[Derivation, None]:
    if fact in memo:
        return memo[fact]
    if budget[0] <= 0:
        return None
    budget[0] -= 1
    if fact in database:
        node = Derivation(fact, "database")
        memo[fact] = node
        return node
    extended_path = path | {fact}
    for rule in rules:
        if rule.head.pred != fact.pred:
            continue
        binding = _match_head(rule.head, fact)
        if binding is None:
            continue
        order = plan_order(rule.body)
        stores = [store] * len(order)
        for full_binding in temporal_join(rule.body, order, stores,
                                          dict(binding)):
            premises = _try_premises(rule, full_binding, rules,
                                     database, store, extended_path,
                                     memo, budget)
            if premises is not None:
                node = Derivation(fact, "rule", rule=rule,
                                  premises=premises)
                memo[fact] = node
                return node
    return None


def _try_premises(rule: Rule, binding, rules, database, store,
                  path: frozenset, memo, budget
                  ) -> Union[list, None]:
    premises: list[Derivation] = []
    for atom in rule.body:
        pred, time, args = _head_values(atom, binding)
        premise_fact = Fact(pred, time, args)
        if premise_fact in path:
            return None  # would not be well-founded; try another support
        sub = _search(premise_fact, rules, database, store, path, memo,
                      budget)
        if sub is None:
            return None
        premises.append(sub)
    for atom in rule.negative:
        pred, time, args = _head_values(atom, binding)
        absent = Fact(pred, time, args)
        if absent in store:
            return None
        premises.append(Derivation(absent, "absent"))
    return premises


def _match_head(head: Atom, fact: Fact):
    """Bind the head pattern against a ground fact, or None."""
    from ..lang.subst import match_atom
    return match_atom(head, fact, {})
