"""Ultimately periodic sets — the [7] "infinite objects" representation.

Section 7 of the paper contrasts its relational specifications with the
earlier approach of Chomicki/Imielinski PODS 1988 ([7]): represent each
tuple's *infinite* set of timepoints directly by a finite object.  In
one dimension those objects are exactly the **ultimately periodic
sets**

    S = prefix ∪ { t ≥ b : (t - b) mod p ∈ residues }

(1-D semilinear sets), closed under union, intersection and shifting —
the full algebra is implemented on :class:`UPSet`, canonicalised after
every operation so equal sets have equal representations.

A note on evaluation strategy, mirroring the paper's history: firing
rules *directly* on UP sets does not by itself reach the infinite least
model — a self-recursive rule adds one shifted copy per application, so
the naive algebra iteration approaches the model only in the limit (an
acceleration step per recursive rule is what [7] needed separability
for).  This library therefore derives the infinite-objects view *from*
the computed model and its certified period: :func:`infinite_objects`
runs algorithm BT once and converts, giving a :class:`UPStore` whose
``holds`` answers membership at any temporal depth with no folding and
whose per-tuple sets print as the paper's answer shape ("12+365k").
The UPSet algebra then supports exact reasoning over those infinite
answers — intersections of schedules, shifted joins, complements of
finite parts — without ever materialising timepoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import lcm
from typing import Iterable, Iterator, Sequence

from ..datalog.facts import ArgTuple, FactStore
from ..lang.atoms import Fact
from ..lang.errors import EvaluationError
from ..lang.rules import Rule
from .database import TemporalDatabase
from .store import TemporalStore


@dataclass(frozen=True)
class UPSet:
    """An ultimately periodic set of non-negative timepoints.

    ``prefix`` holds the explicit members below ``b``; from ``b`` on,
    membership is ``(t - b) % p in residues``.  The canonical empty set
    is ``UPSet(frozenset(), 0, 1, frozenset())``.
    """

    prefix: frozenset[int]
    b: int
    p: int
    residues: frozenset[int]

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "UPSet":
        return cls(frozenset(), 0, 1, frozenset())

    @classmethod
    def finite(cls, points: Iterable[int]) -> "UPSet":
        points = frozenset(points)
        b = max(points, default=-1) + 1
        return cls(points, b, 1, frozenset()).canonical()

    @classmethod
    def periodic(cls, start: int, period: int,
                 residues: Iterable[int] = (0,)) -> "UPSet":
        """``{start + r + k·period : k ≥ 0, r ∈ residues}``."""
        residues = frozenset(r % period for r in residues)
        return cls(frozenset(), start, period, residues).canonical()

    # -- membership / iteration --------------------------------------------

    def __contains__(self, t: int) -> bool:
        if t < self.b:
            return t in self.prefix
        return (t - self.b) % self.p in self.residues

    def __bool__(self) -> bool:
        return bool(self.prefix) or bool(self.residues)

    @property
    def is_finite(self) -> bool:
        return not self.residues

    def points(self, until: int) -> Iterator[int]:
        """Members ≤ ``until`` in increasing order."""
        for t in range(until + 1):
            if t in self:
                yield t

    # -- canonical form ------------------------------------------------------

    def canonical(self) -> "UPSet":
        """The unique minimal representation of the same set.

        Minimises the period to the smallest divisor consistent with
        the residues, then lowers the threshold while the prefix keeps
        continuing the periodic pattern, then drops out-of-range
        prefix points into the pattern region.
        """
        prefix = frozenset(t for t in self.prefix if t < self.b)
        b, p, residues = self.b, self.p, self.residues
        if not residues:
            # Finite set: normalise to b = max+1, p = 1.
            b = max(prefix, default=-1) + 1
            return UPSet(prefix, b, 1, frozenset())
        # Minimal period: smallest divisor d of p with residues
        # invariant under +d (mod p).
        for d in sorted(_divisors(p)):
            shifted = frozenset((r + d) % p for r in residues)
            if shifted == residues:
                residues = frozenset(r % d for r in residues)
                p = d
                break
        # Lower the threshold while the point below it continues the
        # pattern.  Anchoring at b-1 rotates the residues by +1
        # (so the set is unchanged); the point b-1 then belongs to the
        # pattern iff p-1 is a residue of the current anchoring.
        while b > 0:
            t = b - 1
            would_be_member = (p - 1) % p in residues
            if (t in prefix) != would_be_member:
                break
            prefix = prefix - {t}
            residues = frozenset((r + 1) % p for r in residues)
            b = t
        return UPSet(prefix, b, p, residues)

    # -- algebra ------------------------------------------------------------

    def _aligned(self, other: "UPSet") -> tuple[int, int, "UPSet",
                                                "UPSet"]:
        b = max(self.b, other.b)
        p = lcm(self.p, other.p)
        return b, p, self._rebase(b, p), other._rebase(b, p)

    def _rebase(self, b: int, p: int) -> "UPSet":
        """An equivalent (non-canonical) representation at (b, p)."""
        assert b >= self.b and p % self.p == 0
        prefix = frozenset(t for t in range(b) if t in self)
        residues = frozenset(
            r for r in range(p)
            if (b + r) in self
        ) if self.residues else frozenset()
        return UPSet(prefix, b, p, residues)

    def union(self, other: "UPSet") -> "UPSet":
        b, p, left, right = self._aligned(other)
        return UPSet(left.prefix | right.prefix, b, p,
                     left.residues | right.residues).canonical()

    def intersect(self, other: "UPSet") -> "UPSet":
        b, p, left, right = self._aligned(other)
        return UPSet(left.prefix & right.prefix, b, p,
                     left.residues & right.residues).canonical()

    def shift(self, delta: int) -> "UPSet":
        """``{t + delta : t ∈ S, t + delta ≥ 0}`` for any int delta."""
        if delta == 0:
            return self
        if delta > 0:
            prefix = frozenset(t + delta for t in self.prefix)
            return UPSet(prefix, self.b + delta, self.p,
                         self.residues).canonical()
        # Negative shift: clip at zero.
        b = max(self.b + delta, 0)
        prefix = frozenset(t + delta for t in self.prefix
                           if t + delta >= 0 and t + delta < b)
        if self.residues:
            residues = frozenset(
                r for r in range(self.p)
                if (b + r - delta - self.b) % self.p in self.residues
            )
        else:
            residues = frozenset()
        return UPSet(prefix, b, self.p, residues).canonical()

    def size_measure(self) -> int:
        """Representation size: prefix points + threshold + period."""
        return len(self.prefix) + self.b + self.p

    def __str__(self) -> str:
        parts = [str(t) for t in sorted(self.prefix)]
        if self.residues:
            parts.extend(f"{self.b + r}+{self.p}k"
                         for r in sorted(self.residues))
        return "{" + ", ".join(parts) + "}" if parts else "{}"


def _divisors(n: int) -> list[int]:
    out = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            out.append(d)
            if d != n // d:
                out.append(n // d)
        d += 1
    return out




# ---------------------------------------------------------------------------
# The infinite-objects view of a computed model
# ---------------------------------------------------------------------------

class UPStore:
    """Per-(predicate, tuple) ultimately periodic sets + non-temporal.

    The [7]-style representation of an infinite least model: every
    ground atomic query is a direct membership test, with no period
    folding and no window.
    """

    def __init__(self) -> None:
        self._temporal: dict[str, dict[ArgTuple, UPSet]] = {}
        self.nt = FactStore()

    def times(self, pred: str, args: ArgTuple) -> UPSet:
        """The (possibly infinite) set of timepoints of one tuple."""
        return self._temporal.get(pred, {}).get(args, UPSet.empty())

    def tuples(self, pred: str) -> dict[ArgTuple, UPSet]:
        return self._temporal.get(pred, {})

    def set_times(self, pred: str, args: ArgTuple,
                  times: UPSet) -> None:
        if times:
            self._temporal.setdefault(pred, {})[args] = times

    def holds(self, fact: Fact) -> bool:
        """Membership in the infinite model."""
        if fact.time is None:
            return self.nt.contains(fact.pred, fact.args)
        return fact.time in self.times(fact.pred, fact.args)

    def to_store(self, horizon: int) -> TemporalStore:
        """Materialise a window of the infinite model into slices."""
        store = TemporalStore()
        for pred, table in self._temporal.items():
            for args, times in table.items():
                for t in times.points(horizon):
                    store.add(pred, t, args)
        for fact in self.nt.facts():
            store.add_fact(fact)
        return store

    def describe(self) -> dict[str, dict[ArgTuple, str]]:
        """Human-readable per-tuple rendering ("5, 12+365k")."""
        return {
            pred: {args: str(times) for args, times in table.items()}
            for pred, table in self._temporal.items()
        }

    def __repr__(self) -> str:
        tuples = sum(len(t) for t in self._temporal.values())
        return (f"UPStore({tuples} temporal tuples, "
                f"{len(self.nt)} non-temporal facts)")


def infinite_objects(rules: Sequence[Rule],
                     database: TemporalDatabase,
                     **bt_kwargs) -> UPStore:
    """The [7] infinite-objects view of a TDD's least model.

    Runs algorithm BT once (period detection included) and converts the
    windowed model plus its period ``(b, p)`` into per-tuple
    :class:`UPSet` values: explicit points below ``b``, residues from
    the first full period at and beyond it.  Raises
    :class:`EvaluationError` when BT finds no period (pass ``window=``
    or other :func:`~repro.temporal.bt.bt_evaluate` keywords through).
    """
    from .bt import bt_evaluate

    result = bt_evaluate(rules, database, **bt_kwargs)
    if result.period is None:
        raise EvaluationError(
            "no period detected; the infinite-objects view needs one"
        )
    b, p = result.period.b, result.period.p
    out = UPStore()
    by_tuple: dict[tuple[str, ArgTuple], list[int]] = {}
    for fact in result.store.truncate(b + p - 1).temporal_facts():
        by_tuple.setdefault((fact.pred, fact.args),
                            []).append(fact.time)
    for (pred, args), times in by_tuple.items():
        prefix = [t for t in times if t < b]
        residues = [(t - b) % p for t in times if t >= b]
        up = UPSet.finite(prefix)
        if residues:
            up = up.union(UPSet.periodic(b, p, residues))
        out.set_times(pred, args, up)
    for fact in result.store.nt.facts():
        out.nt.add(fact.pred, fact.args)
    return out
