"""Stratified negation for temporal rules — an extension of the paper.

The paper's TDDs are definite Horn programs; its Section 8 and the
inflationary-semantics work it cites ([10] Kolaitis/Papadimitriou)
motivate negation as the natural next step.  This module adds the
standard *stratified* (perfect-model) semantics to the temporal engine:

* rules may carry ``not`` literals (safe: all their variables bound by
  positive literals);
* the program must be stratifiable — no recursion through negation
  (:func:`repro.datalog.depgraph.stratification`);
* the perfect model is computed stratum by stratum inside the BT
  window: each stratum runs the ordinary semi-naive truncated fixpoint
  with all lower strata's facts frozen as extensional input, so the
  negation checks are stable and the per-stratum operator stays
  monotone.

Periodicity survives the extension: for *forward* stratified programs
the slice at ``t`` beyond the database horizon is still a deterministic
function of the ``g`` preceding slices (each stratum is a function of
lower strata and earlier slices), so the period-certification argument
of :mod:`repro.temporal.periodicity` carries over unchanged — and with
it, the paper's whole tractability story.  The stratified travel
example in ``examples/blackout_scheduling.py`` exercises this.
"""

from __future__ import annotations

from typing import Sequence

from ..datalog.depgraph import strata_of_rules
from ..lang.errors import EvaluationError
from ..lang.rules import Rule
from .operator import fixpoint
from .store import TemporalStore


def is_definite(rules: Sequence[Rule]) -> bool:
    """True when no rule carries negative literals (the paper's case)."""
    return all(rule.is_definite for rule in rules)


def stratified_fixpoint(rules: Sequence[Rule], database: TemporalStore,
                        horizon: int, stats=None,
                        tracer=None, metrics=None,
                        fixpoint_fn=None,
                        provenance=None) -> TemporalStore:
    """The perfect model of a stratified program, within a window.

    Equivalent to :func:`repro.temporal.operator.fixpoint` on definite
    programs (the single stratum).  Raises :class:`EvaluationError` for
    non-stratifiable programs.  ``fixpoint_fn`` swaps the per-stratum
    window engine (any callable with the ``fixpoint`` signature, e.g.
    :func:`repro.datalog.compiled.compiled_fixpoint`); the default is
    the generic semi-naive loop.
    """
    proper = [r for r in rules if not r.is_fact]
    facts = [r for r in rules if r.is_fact]
    try:
        groups = strata_of_rules(proper)
    except ValueError as exc:
        raise EvaluationError(str(exc)) from exc

    store = database.truncate(horizon)
    for fact_rule in facts:
        fact = fact_rule.head.to_fact()
        if fact.time is None or fact.time <= horizon:
            if store.add_fact(fact) and provenance is not None:
                provenance.record(fact_rule, fact, ())
    if stats is not None and len(groups) > 1:
        stats.engine = "stratified"
        stats.extra["strata"] = len(groups)
    # Each stratum sees lower strata's facts as extensional input, but
    # the shared provenance store keeps their support edges, so proofs
    # cross stratum boundaries transparently.
    run = fixpoint if fixpoint_fn is None else fixpoint_fn
    for group in groups:
        store = run(group, store, horizon, stats=stats,
                    tracer=tracer, metrics=metrics,
                    provenance=provenance)
    return store
