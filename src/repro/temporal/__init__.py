"""Temporal substrate: stores, the T operator, algorithm BT, periodicity.

Implements Sections 3.1–3.2 and Figure 1 of the paper: slice-oriented
temporal stores with states/snapshots/segments, the immediate-consequence
operator for temporal rules, the bottom-up algorithm BT (verbatim and
semi-naive), minimal-period detection with forwardness certificates, and
the semi-normal/normal transformations.
"""

from .bt import (BTResult, bt_evaluate, bt_verbatim, evaluate_window,
                 verify_period)
from .explain import Derivation, explain
from .incremental import IncrementalModel
from .interval_engine import (IntervalSet, IntervalStore,
                              interval_fixpoint)
from .intervals import (compress, describe_periodic, format_intervals,
                        from_intervals, timeline, to_intervals)
from .operator import continue_fixpoint
from .stratified import is_definite, stratified_fixpoint
from .topdown import TopDownEngine, topdown_ask
from .upsets import UPSet, UPStore, infinite_objects
from .database import TemporalDatabase
from .normalize import is_normal, is_semi_normal, to_normal, to_semi_normal
from .operator import fixpoint, step, temporal_join
from .periodicity import (Period, find_minimal_period, forward_lookback,
                          holds_with_period, range_of, state_ids)
from .store import EMPTY_STATE, State, TemporalStore

__all__ = [
    "TemporalStore", "TemporalDatabase", "State", "EMPTY_STATE",
    "step", "fixpoint", "temporal_join",
    "bt_evaluate", "bt_verbatim", "BTResult", "verify_period",
    "evaluate_window", "stratified_fixpoint", "is_definite",
    "IncrementalModel", "continue_fixpoint",
    "explain", "Derivation",
    "TopDownEngine", "topdown_ask",
    "to_intervals", "from_intervals", "compress", "format_intervals",
    "describe_periodic", "timeline",
    "IntervalSet", "IntervalStore", "interval_fixpoint",
    "UPSet", "UPStore", "infinite_objects",
    "Period", "find_minimal_period", "holds_with_period",
    "forward_lookback", "range_of", "state_ids",
    "to_semi_normal", "to_normal", "is_semi_normal", "is_normal",
]
