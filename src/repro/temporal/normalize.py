"""Normalization of temporal rules (Section 3.1).

The paper works with *normal* rules — at most one temporal variable, and
non-ground temporal terms of depth at most 1 — and notes that every
ruleset has equivalent semi-normal and normal forms obtained by
introducing additional predicates and rules (the construction is from the
author's thesis [5]).  This module implements both transformations; the
introduced predicates start with ``_`` and the transforms are exactly
model-preserving on the original predicates (property-tested):

* :func:`to_semi_normal` — a rule with several temporal variables has
  each secondary variable's atoms folded into a fresh non-temporal
  predicate that projects the temporal argument away (the secondary
  variable is existential, so the projection is exact).
* :func:`to_normal` — depth is reduced to 1 by (a) replacing a body atom
  ``p(T+k)`` with ``k ≥ 2`` by a *next-chain* predicate ``_next·k·p``
  satisfying ``_next·j·p(t) ⇔ p(t+j)``, and (b) lowering a head
  ``H(T+K)`` with ``K ≥ 2`` through a *copy chain* of fresh predicates
  stepping one timepoint at a time (this preserves the implicit ``t ≥ K``
  lower bound on derived head times, which a naive re-anchoring of the
  rule would not).

As the paper remarks at the start of Section 6, normalization can destroy
the syntactic shape that the Section 6 classes rely on (next-chains are
backward rules), which is why multi-separability is defined on
semi-normal rules; callers that need Section 6 classification should
normalize only to semi-normal form.
"""

from __future__ import annotations

from typing import Sequence

from ..lang.atoms import Atom
from ..lang.rules import Rule
from ..lang.terms import TimeTerm, Var


def _fresh_base(rules: Sequence[Rule], stem: str) -> str:
    """A predicate-name stem not colliding with any existing predicate."""
    existing = {atom.pred for rule in rules for atom in rule.atoms()}
    candidate = stem
    suffix = 0
    while any(p == candidate or p.startswith(candidate + "_")
              for p in existing):
        suffix += 1
        candidate = f"{stem}{suffix}"
    return candidate


def to_semi_normal(rules: Sequence[Rule]) -> list[Rule]:
    """Equivalent semi-normal ruleset (≤ 1 temporal variable per rule)."""
    stem = _fresh_base(rules, "_sn")
    out: list[Rule] = []
    counter = 0
    for rule in rules:
        tvars = rule.temporal_variables()
        if len(tvars) <= 1:
            out.append(rule)
            continue
        head_tvar = rule.head.temporal_variable()
        if head_tvar is not None:
            keep = head_tvar
        else:
            keep = sorted(tvars)[0]
        body = list(rule.body)
        for tvar in sorted(tvars - {keep}):
            group = [a for a in body
                     if a.temporal_variable() == tvar]
            rest = [a for a in body
                    if a.temporal_variable() != tvar]
            group_vars = {v.name for a in group for v in a.data_variables()}
            outside_vars = set(rule.head_data_variables())
            for atom in rest:
                outside_vars.update(v.name for v in atom.data_variables())
            shared = sorted(group_vars & outside_vars)
            aux_pred = f"{stem}_{counter}"
            counter += 1
            aux_head = Atom(aux_pred, None, tuple(Var(v) for v in shared))
            out.append(Rule(aux_head, tuple(group), span=rule.span))
            body = rest + [aux_head]
        out.append(Rule(rule.head, tuple(body), span=rule.span))
    return out


def to_normal(rules: Sequence[Rule]) -> list[Rule]:
    """Equivalent normal ruleset (semi-normal, temporal depth ≤ 1)."""
    semi = to_semi_normal(rules)
    stem = _fresh_base(semi, "_nm")
    out: list[Rule] = []
    next_chains: dict[tuple[str, int], str] = {}
    counter = 0

    def next_pred(pred: str, arity: int, k: int,
                  origin_span=None) -> str:
        """``_next·k·pred(t) ⇔ pred(t+k)``; builds missing chain rules."""
        for j in range(1, k + 1):
            if (pred, j) in next_chains:
                continue
            name = f"{stem}_nx{j}_{pred}"
            next_chains[(pred, j)] = name
            args = tuple(Var(f"X{i}") for i in range(arity))
            prev = pred if j == 1 else next_chains[(pred, j - 1)]
            out.append(Rule(
                Atom(name, TimeTerm("T", 0), args),
                (Atom(prev, TimeTerm("T", 1), args),),
                span=origin_span,
            ))
        return next_chains[(pred, k)]

    for rule in semi:
        if rule.temporal_depth <= 1:
            out.append(rule)
            continue
        # (a) deep body atoms -> next-chain predicates at depth 0.
        body: list[Atom] = []
        for atom in rule.body:
            if (atom.time is not None and not atom.time.is_ground
                    and atom.time.offset >= 2):
                pred = next_pred(atom.pred, atom.arity,
                                 atom.time.offset, rule.span)
                body.append(Atom(pred, TimeTerm(atom.time.var, 0),
                                 atom.args))
            else:
                body.append(atom)
        head = rule.head
        if (head.time is None or head.time.is_ground
                or head.time.offset <= 1):
            out.append(Rule(head, tuple(body), span=rule.span))
            continue
        # (b) deep head -> copy chain stepping one timepoint at a time.
        big_k = head.time.offset
        tvar = head.time.var
        assert tvar is not None
        head_vars = []
        seen: set[str] = set()
        for var in head.data_variables():
            if var.name not in seen:
                seen.add(var.name)
                head_vars.append(var)
        carry = tuple(head_vars)
        first = Atom(f"{stem}_cp{counter}_1", TimeTerm(tvar, 1), carry)
        counter += 1
        out.append(Rule(first, tuple(body), span=rule.span))
        prev = first
        for j in range(2, big_k):
            link = Atom(f"{prev.pred[:prev.pred.rfind('_')]}_{j}",
                        TimeTerm(tvar, 1), carry)
            out.append(Rule(link, (Atom(prev.pred, TimeTerm(tvar, 0),
                                        carry),), span=rule.span))
            prev = link
        final_head = Atom(head.pred, TimeTerm(tvar, 1), head.args)
        out.append(Rule(final_head, (Atom(prev.pred, TimeTerm(tvar, 0),
                                          carry),), span=rule.span))
    return out


def is_semi_normal(rules: Sequence[Rule]) -> bool:
    """Every rule has at most one temporal variable (Section 3.1)."""
    return all(rule.is_semi_normal for rule in rules)


def is_normal(rules: Sequence[Rule]) -> bool:
    """Semi-normal with temporal depth at most 1 (Section 3.1)."""
    return all(rule.is_normal for rule in rules)
