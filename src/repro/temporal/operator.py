"""The immediate-consequence operator ``T_{Z∧D}`` for temporal rules.

Section 3.2 of the paper defines, for a set of rules ``Z`` and database
``D``::

    T_{Z∧D}(I) = {A : A = A0·θ, A0 :- A1,...,Ak ∈ Z, Ai·θ ∈ I} ∪ D

and the least model as ``LFP(Z, D) = ⋃ T^i(∅)``.  This module implements

* :func:`step` — one application of ``T_{Z∧D}`` (the naive operator used
  verbatim by algorithm BT, Figure 1), and
* :func:`fixpoint` — the least fixpoint of the operator *truncated to a
  window* ``[0..horizon]``, computed semi-naively with delta stores.

The truncated fixpoint is exactly what BT's repeat-until loop converges
to: facts beyond the window are dropped between rounds, so they can never
contribute to a derivation (a single ``T`` application cannot chain
through them).  The equivalence of the two paths is property-tested.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterator, Sequence, Union

from ..datalog.engine import plan_order
from ..datalog.facts import ArgTuple
from ..lang.atoms import Atom, Fact
from ..lang.rules import Rule
from ..lang.terms import Const, Var
from .store import TemporalStore

Binding = dict[str, Union[str, int]]


def _data_index(atom: Atom,
                binding: Binding) -> tuple[tuple[int, ...], ArgTuple]:
    """Bound data positions and their key values under ``binding``."""
    positions: list[int] = []
    key: list[Union[str, int]] = []
    for i, arg in enumerate(atom.args):
        if isinstance(arg, Const):
            positions.append(i)
            key.append(arg.value)
        elif arg.name in binding:
            positions.append(i)
            key.append(binding[arg.name])
    return tuple(positions), tuple(key)


def _extend_data(atom: Atom, args: ArgTuple,
                 binding: Binding) -> Union[Binding, None]:
    new: Union[Binding, None] = None
    for pattern, value in zip(atom.args, args):
        if isinstance(pattern, Const):
            if pattern.value != value:
                return None
        else:
            source = new if new is not None else binding
            bound = source.get(pattern.name)
            if bound is None:
                if new is None:
                    new = dict(binding)
                new[pattern.name] = value
            elif bound != value:
                return None
    return new if new is not None else binding


def _atom_matches(atom: Atom, store: TemporalStore,
                  binding: Binding) -> Iterator[Binding]:
    """Enumerate extensions of ``binding`` matching ``atom`` in ``store``."""
    positions, key = _data_index(atom, binding)

    if atom.time is None:
        for args in store.nt.lookup(atom.pred, positions, key):
            extended = _extend_data(atom, args, binding)
            if extended is not None:
                yield extended
        return

    tt = atom.time
    if tt.var is None:
        times: list[tuple[int, Union[Binding, None]]] = [(tt.offset, None)]
    elif tt.var in binding:
        base = binding[tt.var]
        assert isinstance(base, int)
        times = [(base + tt.offset, None)]
    else:
        times = []
        for t in store.times(atom.pred):
            base = t - tt.offset
            if base >= 0:
                extended = dict(binding)
                extended[tt.var] = base
                times.append((t, extended))

    for t, time_binding in times:
        effective = time_binding if time_binding is not None else binding
        for args in store.lookup_at(atom.pred, t, positions, key):
            extended = _extend_data(atom, args, effective)
            if extended is not None:
                yield extended


def temporal_join(body: Sequence[Atom], order: Sequence[int],
                  stores: Sequence[TemporalStore],
                  binding: Union[Binding, None] = None) -> Iterator[Binding]:
    """Enumerate bindings satisfying every body atom.

    ``stores[k]`` supplies the facts for the atom at ``order[k]``; the
    semi-naive path passes the delta store at position 0.
    """
    if binding is None:
        binding = {}

    def recurse(step_idx: int, binding: Binding) -> Iterator[Binding]:
        if step_idx == len(order):
            yield binding
            return
        atom = body[order[step_idx]]
        for extended in _atom_matches(atom, stores[step_idx], binding):
            yield from recurse(step_idx + 1, extended)

    return recurse(0, binding)


def _head_values(head: Atom,
                 binding: Binding) -> tuple[str, Union[int, None], ArgTuple]:
    if head.time is None:
        time: Union[int, None] = None
    elif head.time.var is None:
        time = head.time.offset
    else:
        base = binding[head.time.var]
        assert isinstance(base, int)
        time = base + head.time.offset
    args = tuple(
        binding[a.name] if isinstance(a, Var) else a.value
        for a in head.args
    )
    return head.pred, time, args


def negatives_absent(rule: Rule, binding: Binding,
                     store: TemporalStore) -> bool:
    """Check the rule's negative literals against ``store``.

    Sound as a monotone test only when the negated predicates cannot
    gain facts during the ongoing fixpoint — the stratified scheduler
    (:mod:`repro.temporal.stratified`) guarantees that.
    """
    for atom in rule.negative:
        pred, time, args = _head_values(atom, binding)
        if store.contains(pred, time, args):
            return False
    return True


def step(rules: Sequence[Rule], store: TemporalStore,
         database: Union[TemporalStore, None] = None,
         metrics=None,
         window: Union[int, None] = None) -> TemporalStore:
    """One application of ``T_{Z∧D}``: rule consequences of ``store``,
    unioned with the database ``D`` (per the paper's definition).

    Negative literals (the stratified extension) are checked against the
    input ``store`` — the standard non-monotone immediate-consequence
    operator; iterate it only under a stratified schedule.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`)
    attributes the round's work to individual rules; ``window`` tells
    the attribution which head times the caller will truncate away, so a
    "new fact" credit matches what actually survives the round.
    """
    out = TemporalStore()
    if database is not None:
        for fact in database.facts():
            out.add_fact(fact)
    for rule in rules:
        if rule.is_fact:
            out.add_fact(rule.head.to_fact())
            continue
        rm = metrics.rule(rule) if metrics is not None else None
        if rm is not None:
            rule_t0 = perf_counter()
            rm.begin_round()
        order = plan_order(rule.body)
        stores = [store] * len(order)
        for binding in temporal_join(rule.body, order, stores):
            if rm is not None:
                rm.probes += 1
            if rule.negative and not negatives_absent(rule, binding,
                                                      store):
                continue
            pred, time, args = _head_values(rule.head, binding)
            if rm is None:
                out.add(pred, time, args)
                continue
            rm.firings += 1
            first = out.add(pred, time, args)
            if window is not None and time is not None and time > window:
                continue  # the caller truncates it; neither new nor dup
            if first and not store.contains(pred, time, args):
                rm.new_facts += 1
            else:
                rm.duplicates += 1
        if rm is not None:
            rm.seconds += perf_counter() - rule_t0
            rm.end_round()
    return out


def fixpoint(rules: Sequence[Rule], database: TemporalStore,
             horizon: int,
             max_facts: Union[int, None] = None,
             stats=None, tracer=None, metrics=None,
             provenance=None) -> TemporalStore:
    """Least fixpoint of the window-truncated operator, semi-naively.

    Computes the largest set ``L`` of facts with timepoints in
    ``[0..horizon]`` (plus all non-temporal facts) derivable from ``D``
    by rules whose every intermediate fact also lies within the window —
    i.e. the set algorithm BT converges to for window bound ``horizon``.

    Rules may carry negative literals only if the negated predicates are
    not derived by this rule group (the stratified scheduler arranges
    that); violating the precondition raises :class:`EvaluationError`.
    """
    negated = {a.pred for r in rules for a in r.negative}
    derived_here = {r.head.pred for r in rules}
    clash = negated & derived_here
    if clash:
        from ..lang.errors import EvaluationError
        raise EvaluationError(
            f"predicates {sorted(clash)} are both negated and derived in "
            "one fixpoint group; use stratified_fixpoint"
        )
    store = database.truncate(horizon)
    delta = store.copy()
    for rule in rules:
        if rule.is_fact:
            fact = rule.head.to_fact()
            if fact.time is not None and fact.time > horizon:
                continue
            if store.add_fact(fact):
                delta.add_fact(fact)
                if provenance is not None:
                    provenance.record(rule, fact, ())

    if stats is not None:
        if not stats.engine:
            stats.engine = "seminaive"
        stats.horizon = (horizon if stats.horizon is None
                         else max(stats.horizon, horizon))
        stats.extra["initial_facts"] = (
            stats.extra.get("initial_facts", 0) + len(store))
    if tracer is not None:
        tracer.emit("eval_start", engine=stats.engine if stats else
                    "seminaive", horizon=horizon,
                    rules=sum(1 for r in rules if not r.is_fact),
                    initial_facts=len(store))
    continue_fixpoint(rules, store, delta, horizon,
                      max_facts=max_facts, stats=stats, tracer=tracer,
                      metrics=metrics, provenance=provenance)
    if tracer is not None:
        tracer.emit("eval_end", facts=len(store))
    if provenance is not None and stats is not None:
        provenance.export_into(stats)
    return store


def continue_fixpoint(rules: Sequence[Rule], store: TemporalStore,
                      delta: TemporalStore, horizon: int,
                      max_facts: Union[int, None] = None,
                      stats=None, tracer=None, metrics=None,
                      provenance=None) -> int:
    """Drive the semi-naive loop from an initial ``delta``, in place.

    Every derivation producible from ``store`` that uses at least one
    ``delta`` fact (transitively) is added to ``store``; heads beyond
    ``horizon`` are discarded.  This is both the tail of
    :func:`fixpoint` and the engine of incremental insertion
    (:mod:`repro.temporal.incremental`).  Returns the number of facts
    added.

    ``max_facts`` is a resource guard: when the store would exceed it,
    :class:`EvaluationError` is raised rather than exhausting memory —
    useful for untrusted programs whose slices blow up combinatorially.
    """
    plans: list[tuple] = []
    for rule in rules:
        if rule.is_fact:
            continue
        leads = [(i, plan_order(rule.body, first=i))
                 for i in range(len(rule.body))]
        plans.append((rule, leads,
                      metrics.rule(rule) if metrics is not None else None))

    if stats is not None:
        prev_stats = store.stats
        store.stats = stats
    added = 0
    round_no = 0
    while len(delta):
        round_no += 1
        probes = 0
        new_delta = TemporalStore()
        delta_preds = delta.temporal_predicates()
        delta_preds.update(delta.nt.predicates())
        for rule, leads, rm in plans:
            if rm is not None:
                rule_t0 = perf_counter()
                rm.begin_round()
            for i, order in leads:
                if rule.body[i].pred not in delta_preds:
                    continue
                stores = [delta] + [store] * (len(order) - 1)
                for binding in temporal_join(rule.body, order, stores):
                    probes += 1
                    if rm is not None:
                        rm.probes += 1
                    if rule.negative and not negatives_absent(
                            rule, binding, store):
                        continue
                    pred, time, args = _head_values(rule.head, binding)
                    if rm is not None:
                        rm.firings += 1
                    if time is not None and time > horizon:
                        continue
                    if store.add(pred, time, args):
                        new_delta.add(pred, time, args)
                        added += 1
                        if rm is not None:
                            rm.new_facts += 1
                        if provenance is not None:
                            provenance.record(
                                rule, Fact(pred, time, args),
                                tuple(Fact(*_head_values(a, binding))
                                      for a in rule.body),
                                tuple(Fact(*_head_values(a, binding))
                                      for a in rule.negative),
                                round_no)
                    elif rm is not None:
                        rm.duplicates += 1
            if rm is not None:
                rm.seconds += perf_counter() - rule_t0
                rm.end_round()
        if max_facts is not None and len(store) > max_facts:
            from ..lang.errors import EvaluationError
            raise EvaluationError(
                f"model exceeded max_facts={max_facts} within the "
                f"window (currently {len(store)} facts)"
            )
        if stats is not None:
            stats.record_round(derived=len(new_delta), delta=len(delta))
            stats.join_probes += probes
        if tracer is not None:
            tracer.emit("round", round=round_no,
                        delta=len(delta), derived=len(new_delta),
                        probes=probes, store=len(store))
            for fact in new_delta.facts():
                tracer.emit("fact", pred=fact.pred, time=fact.time,
                            args=list(fact.args))
        delta = new_delta
    if stats is not None:
        store.stats = prev_stats
        if metrics is not None:
            metrics.export_into(stats)
    return added
