"""Slice-oriented storage for temporal interpretations.

The periodicity definitions of the paper (Section 3.2) quantify over
*states* ``M[t]`` — the non-temporal projection of all facts at timepoint
``t``.  :class:`TemporalStore` therefore keeps temporal facts grouped by
``(predicate, timepoint)``, making states O(slice) to extract and compare,
and keeps the non-temporal part ``M_nt`` in a separate
:class:`~repro.datalog.facts.FactStore`.

Like :class:`FactStore`, lookups on bound argument positions build lazy
hash indexes that are maintained incrementally, so semi-naive joins stay
cheap across rounds.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from ..datalog.facts import ArgTuple, FactStore
from ..lang.atoms import Fact

#: A state M[t]: the set of (predicate, args) pairs holding at time t.
State = frozenset[tuple[str, ArgTuple]]

EMPTY_STATE: State = frozenset()


class TemporalStore:
    """A mutable set of temporal + non-temporal ground facts."""

    def __init__(self, facts: Iterable[Fact] = ()):
        # pred -> time -> set of arg tuples
        self._slices: dict[str, dict[int, set[ArgTuple]]] = {}
        self._nt = FactStore()
        #: Optional EvalStats accumulator counting index hits/misses;
        #: attached by the engines, never copied with the store.
        self.stats = None
        # (pred, time) -> {positions: {key: [args]}} — keyed by slice so
        # insertion only maintains its own slice's indexes.
        self._indexes: dict[tuple[str, int],
                            dict[tuple[int, ...],
                                 dict[ArgTuple, list[ArgTuple]]]] = {}
        self._count_temporal = 0
        for fact in facts:
            self.add_fact(fact)

    # -- mutation ----------------------------------------------------------

    def add(self, pred: str, time: Union[int, None],
            args: ArgTuple) -> bool:
        """Insert a fact; returns True when it was not already present."""
        if time is None:
            return self._nt.add(pred, args)
        by_time = self._slices.setdefault(pred, {})
        relation = by_time.setdefault(time, set())
        if args in relation:
            return False
        relation.add(args)
        self._count_temporal += 1
        slice_indexes = self._indexes.get((pred, time))
        if slice_indexes:
            for positions, index in slice_indexes.items():
                key = tuple(args[p] for p in positions)
                index.setdefault(key, []).append(args)
        return True

    def add_fact(self, fact: Fact) -> bool:
        return self.add(fact.pred, fact.time, fact.args)

    def discard(self, pred: str, time: Union[int, None],
                args: ArgTuple) -> bool:
        """Remove a fact; returns True when it was present.

        Indexes on the affected slice are dropped and rebuilt lazily.
        """
        if time is None:
            return self._nt.discard(pred, args)
        by_time = self._slices.get(pred)
        if by_time is None:
            return False
        relation = by_time.get(time)
        if relation is None or args not in relation:
            return False
        relation.discard(args)
        self._count_temporal -= 1
        self._indexes.pop((pred, time), None)
        return True

    def discard_fact(self, fact: Fact) -> bool:
        return self.discard(fact.pred, fact.time, fact.args)

    # -- lookup ------------------------------------------------------------

    def contains(self, pred: str, time: Union[int, None],
                 args: ArgTuple) -> bool:
        if time is None:
            return self._nt.contains(pred, args)
        by_time = self._slices.get(pred)
        if by_time is None:
            return False
        relation = by_time.get(time)
        return relation is not None and args in relation

    def __contains__(self, fact: Fact) -> bool:
        return self.contains(fact.pred, fact.time, fact.args)

    def lookup_at(self, pred: str, time: int, positions: tuple[int, ...],
                  key: ArgTuple) -> list[ArgTuple]:
        """Tuples of ``pred`` at ``time`` whose ``positions`` equal ``key``."""
        by_time = self._slices.get(pred)
        if by_time is None:
            return []
        relation = by_time.get(time)
        if not relation:
            return []
        if not positions:
            return list(relation)
        slice_indexes = self._indexes.setdefault((pred, time), {})
        index = slice_indexes.get(positions)
        if index is None:
            index = {}
            for args in relation:
                k = tuple(args[p] for p in positions)
                index.setdefault(k, []).append(args)
            slice_indexes[positions] = index
            if self.stats is not None:
                self.stats.index_misses += 1
        elif self.stats is not None:
            self.stats.index_hits += 1
        return index.get(key, [])

    def times(self, pred: str) -> list[int]:
        """All timepoints at which ``pred`` has at least one tuple."""
        by_time = self._slices.get(pred)
        if by_time is None:
            return []
        return [t for t, rel in by_time.items() if rel]

    @property
    def nt(self) -> FactStore:
        """The non-temporal part ``M_nt``."""
        return self._nt

    def temporal_predicates(self) -> set[str]:
        return set(self._slices)

    def max_time(self) -> int:
        """The largest timepoint carrying a fact; -1 when none do."""
        best = -1
        for by_time in self._slices.values():
            for t, relation in by_time.items():
                if relation and t > best:
                    best = t
        return best

    # -- states, snapshots, segments (Section 3.2) --------------------------

    def state(self, t: int) -> State:
        """The state ``M[t]``: temporal arguments projected out."""
        items: list[tuple[str, ArgTuple]] = []
        for pred, by_time in self._slices.items():
            relation = by_time.get(t)
            if relation:
                items.extend((pred, args) for args in relation)
        return frozenset(items)

    def states(self, t0: int, t1: int) -> list[State]:
        """States ``M[t0] .. M[t1]`` inclusive."""
        return [self.state(t) for t in range(t0, t1 + 1)]

    def snapshot(self, t: int) -> set[Fact]:
        """The snapshot ``M(t)``: all temporal facts at time ``t``."""
        return {
            Fact(pred, t, args)
            for pred, by_time in self._slices.items()
            for args in by_time.get(t, ())
        }

    def segment(self, t0: int, t1: int) -> set[Fact]:
        """The segment ``M(t0...t1)``: all facts at times in [t0, t1]."""
        out: set[Fact] = set()
        for pred, by_time in self._slices.items():
            for t, relation in by_time.items():
                if t0 <= t <= t1:
                    out.update(Fact(pred, t, args) for args in relation)
        return out

    # -- iteration / copying -------------------------------------------------

    def slices(self) -> Iterator[tuple[str, int, set[ArgTuple]]]:
        """Non-empty ``(pred, time, relation)`` triples.

        The raw slice view — no :class:`Fact` objects are materialized,
        which is what bulk importers (the compiled engine's store
        loader) want.  The yielded sets are live; callers must not
        mutate them.
        """
        for pred, by_time in self._slices.items():
            for t, relation in by_time.items():
                if relation:
                    yield pred, t, relation

    def adopt_slices(self, slices: dict[str,
                                        dict[int, set[ArgTuple]]]) -> None:
        """Install many temporal slices in one step.

        The bulk counterpart of repeated :meth:`add` calls, used when
        converting a compiled store's int rows back into facts.  Takes
        ownership of each relation set when the slice is empty here;
        merges (and drops the slice's lazy indexes) otherwise.
        """
        for pred, by_time in slices.items():
            mine = self._slices.setdefault(pred, {})
            for time, relation in by_time.items():
                existing = mine.get(time)
                if existing:
                    self._count_temporal += len(relation - existing)
                    existing |= relation
                    self._indexes.pop((pred, time), None)
                else:
                    mine[time] = relation
                    self._count_temporal += len(relation)

    def temporal_facts(self) -> Iterator[Fact]:
        for pred, by_time in self._slices.items():
            for t, relation in by_time.items():
                for args in relation:
                    yield Fact(pred, t, args)

    def facts(self) -> Iterator[Fact]:
        yield from self.temporal_facts()
        yield from self._nt.facts()

    def truncate(self, horizon: int) -> "TemporalStore":
        """A copy without the temporal facts beyond ``horizon``.

        This is the ``L'(0...m)`` step of algorithm BT (Figure 1); the
        non-temporal part is kept in full.
        """
        clone = TemporalStore()
        for pred, by_time in self._slices.items():
            for t, relation in by_time.items():
                if t <= horizon and relation:
                    clone._slices.setdefault(pred, {})[t] = set(relation)
                    clone._count_temporal += len(relation)
        for fact in self._nt.facts():
            clone._nt.add(fact.pred, fact.args)
        return clone

    def copy(self) -> "TemporalStore":
        clone = TemporalStore()
        for pred, by_time in self._slices.items():
            clone._slices[pred] = {t: set(r) for t, r in by_time.items()}
        clone._count_temporal = self._count_temporal
        for fact in self._nt.facts():
            clone._nt.add(fact.pred, fact.args)
        return clone

    def __len__(self) -> int:
        return self._count_temporal + len(self._nt)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalStore):
            return NotImplemented
        return (set(self.temporal_facts()) == set(other.temporal_facts())
                and self._nt == other._nt)

    def __repr__(self) -> str:
        return (f"TemporalStore({self._count_temporal} temporal + "
                f"{len(self._nt)} non-temporal facts, "
                f"max_time={self.max_time()})")
