"""Interval compression and timeline rendering for temporal stores.

The paper's footnote 1 already anticipates interval notation: *"we
could provide an abbreviation for intervals and represent winter and
offseason as single tuples winter(<12/20/89,03/20/90>)"*.  The parser
accepts interval facts (``winter(0..91).``); this module provides the
output direction — compressing a store's per-tuple timepoints into
maximal closed intervals, and rendering predicate timelines — plus a
periodic description combining the intervals of one period with the
period itself, which is the human-readable face of a relational
specification.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from ..datalog.facts import ArgTuple
from ..lang.atoms import Fact
from .store import TemporalStore

#: A closed interval of timepoints.
Interval = tuple[int, int]


def to_intervals(timepoints: Iterable[int]) -> list[Interval]:
    """Compress sorted-or-not timepoints into maximal closed intervals."""
    ordered = sorted(set(timepoints))
    if not ordered:
        return []
    out: list[Interval] = []
    start = previous = ordered[0]
    for t in ordered[1:]:
        if t == previous + 1:
            previous = t
            continue
        out.append((start, previous))
        start = previous = t
    out.append((start, previous))
    return out


def from_intervals(pred: str, args: ArgTuple,
                   intervals: Sequence[Interval]) -> list[Fact]:
    """Expand intervals back into facts (the parser's ``a..b`` facts)."""
    return [
        Fact(pred, t, args)
        for lo, hi in intervals
        for t in range(lo, hi + 1)
    ]


def compress(store: TemporalStore,
             predicates: Union[Iterable[str], None] = None
             ) -> dict[str, dict[ArgTuple, list[Interval]]]:
    """Per-predicate, per-tuple interval view of a temporal store."""
    wanted = set(predicates) if predicates is not None else None
    by_tuple: dict[str, dict[ArgTuple, list[int]]] = {}
    for fact in store.temporal_facts():
        if wanted is not None and fact.pred not in wanted:
            continue
        by_tuple.setdefault(fact.pred, {}).setdefault(
            fact.args, []).append(fact.time)
    return {
        pred: {args: to_intervals(times)
               for args, times in tuples.items()}
        for pred, tuples in by_tuple.items()
    }


def format_intervals(intervals: Sequence[Interval]) -> str:
    """``0..3, 7, 9..12`` — single points render without dots."""
    parts = [
        f"{lo}..{hi}" if hi > lo else str(lo)
        for lo, hi in intervals
    ]
    return ", ".join(parts)


def describe_periodic(store: TemporalStore, b: int, p: int
                      ) -> dict[str, dict[ArgTuple, str]]:
    """A finite, human-readable description of the infinite model.

    For each tuple: the pre-periodic timepoints (< b) as intervals, plus
    the periodic residues in ``[b, b+p)`` rendered as ``t, t+p, t+2p,
    ...``.  Requires the store to cover ``[0, b+p-1]``.
    """
    out: dict[str, dict[ArgTuple, str]] = {}
    compressed = compress(store.truncate(b + p - 1))
    for pred, tuples in compressed.items():
        rendered: dict[ArgTuple, str] = {}
        for args, intervals in tuples.items():
            times = [t for lo, hi in intervals
                     for t in range(lo, hi + 1)]
            prefix = [t for t in times if t < b]
            residues = [t for t in times if t >= b]
            parts = []
            if prefix:
                parts.append(format_intervals(to_intervals(prefix)))
            parts.extend(f"{t}+{p}k" for t in residues)
            rendered[args] = ", ".join(parts) if parts else "(never)"
        out[pred] = rendered
    return out


def timeline(store: TemporalStore, predicates: Sequence[str],
             until: int, mark: str = "x", gap: str = ".") -> str:
    """An ASCII timeline: one row per (predicate, tuple), one column
    per timepoint ``0..until``."""
    rows: list[str] = []
    header = "  ".ljust(24) + "".join(
        str(t % 10) for t in range(until + 1))
    rows.append(header)
    for pred in predicates:
        tuples: dict[ArgTuple, set[int]] = {}
        for t in store.times(pred):
            if t > until:
                continue
            for args in store.lookup_at(pred, t, (), ()):
                tuples.setdefault(args, set()).add(t)
        for args in sorted(tuples, key=str):
            label = f"{pred}({', '.join(map(str, args))})" if args \
                else pred
            cells = "".join(
                mark if t in tuples[args] else gap
                for t in range(until + 1)
            )
            rows.append(label.ljust(24)[:24] + cells)
    return "\n".join(rows)
