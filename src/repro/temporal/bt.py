"""Algorithm BT: bottom-up query processing for temporal rules.

Figure 1 of the paper::

    L' := D
    repeat
        L  := L'(0...m)
        L' := T_{Z∧D}(L)
    until L(0...m) = L'(0...m) and L_nt = L'_nt
    answer := L |= Q

BT terminates in time polynomial in the database size whenever the least
model's period is polynomially bounded (Theorem 4.1).  The window bound is
``m = max(c, h) + range(Z∧D)`` where ``c`` is the maximum temporal depth
in the database, ``h`` the depth of the query, and ``range`` the number of
distinct states of the least model.

Two implementations are provided:

* :func:`bt_verbatim` — Figure 1 word-for-word (whole-window naive
  re-derivation each round); the reference used in tests and in the E7
  ablation benchmark.
* :func:`bt_evaluate` — the production path: semi-naive evaluation of the
  same truncated fixpoint, plus period detection.  The paper assumes
  ``range(Z∧D)`` is known; when no window is supplied we find one by
  iterative deepening — double the window until the minimal period
  detected inside it either carries a forwardness certificate
  (:func:`~repro.temporal.periodicity.forward_lookback`) or re-verifies
  unchanged at the doubled horizon.

The result object answers ground atomic yes/no queries at *any* temporal
depth by folding the timepoint through the detected period, which is
exactly how the relational specification of Section 3.3 answers them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from ..engines import window_fixpoint
from ..lang.atoms import Atom, Fact
from ..lang.errors import EvaluationError
from ..lang.rules import Rule, validate_rules
from ..obs.stats import EvalStats
from ..obs.timing import phase_timer
from .database import TemporalDatabase
from .operator import step
from .stratified import is_definite, stratified_fixpoint
from .periodicity import (Period, find_minimal_period,
                          find_period_by_recurrence, forward_lookback,
                          holds_with_period, range_of)
from .store import TemporalStore


def evaluate_window(rules: Sequence[Rule], database: TemporalStore,
                    horizon: int, stats=None,
                    tracer=None, metrics=None,
                    engine: str = "seminaive",
                    provenance=None) -> TemporalStore:
    """The window model: truncated least fixpoint, or — for rules with
    negative literals (the stratified extension) — the truncated perfect
    model computed stratum by stratum.  ``engine`` names the window
    engine (see :mod:`repro.engines`): ``seminaive`` (the generic loop)
    or ``compiled`` (interned ints + indexed join plans).
    ``provenance`` records support edges for every derived fact."""
    fixpoint_fn = window_fixpoint(engine)
    if is_definite(rules):
        return fixpoint_fn(rules, database, horizon,
                           stats=stats, tracer=tracer,
                           metrics=metrics, provenance=provenance)
    return stratified_fixpoint(rules, database, horizon,
                               stats=stats, tracer=tracer,
                               metrics=metrics, fixpoint_fn=fixpoint_fn,
                               provenance=provenance)


@dataclass
class BTResult:
    """Outcome of algorithm BT: the window fixpoint plus period data."""

    store: TemporalStore
    horizon: int
    c: int
    g: int
    period: Union[Period, None]
    rounds: int = 0
    #: Populated when the caller passed an EvalStats accumulator.
    stats: Union["EvalStats", None] = None

    def holds(self, fact: Union[Fact, Atom]) -> bool:
        """Ground atomic yes/no query ``M(Z∧D) ⊨ fact``.

        Timepoints within the window are answered directly; beyond the
        window the timepoint is folded through the period.  Raises
        :class:`EvaluationError` for a beyond-window query when no period
        is available.
        """
        if isinstance(fact, Atom):
            fact = fact.to_fact()
        if fact.time is None or fact.time <= self.horizon:
            return fact in self.store
        if self.period is None:
            raise EvaluationError(
                f"query at time {fact.time} exceeds horizon {self.horizon} "
                "and no period was detected"
            )
        folded = self.period.fold(fact.time)
        return self.store.contains(fact.pred, folded, fact.args)

    def states(self, t0: int, t1: int):
        return self.store.states(t0, t1)

    @property
    def range(self) -> int:
        """Number of distinct states within the computed window."""
        return range_of(self.store.states(0, self.horizon))


def bt_verbatim(rules: Sequence[Rule], database: TemporalDatabase,
                window: int, stats: Union[EvalStats, None] = None,
                tracer=None, metrics=None) -> BTResult:
    """Algorithm BT exactly as printed in Figure 1 of the paper.

    ``window`` is the paper's ``m``.  Returns the converged ``L`` (no
    period detection; use :func:`bt_evaluate` for that).
    """
    validate_rules(rules)
    if not is_definite(rules):
        raise EvaluationError(
            "bt_verbatim implements Figure 1 for the paper's definite "
            "rules; stratified programs go through bt_evaluate"
        )
    proper_rules = [r for r in rules if not r.is_fact]
    current = database.copy()  # L' := D
    rounds = 0
    size = len(current.truncate(window))
    if stats is not None:
        stats.engine = "bt_verbatim"
        stats.horizon = window
        stats.extra["initial_facts"] = size
    if tracer is not None:
        tracer.emit("eval_start", engine="bt_verbatim", horizon=window,
                    rules=len(proper_rules), initial_facts=size)
    while True:
        rounds += 1
        truncated = current.truncate(window)           # L := L'(0...m)
        nxt = step(proper_rules, truncated, database,  # L' := T(L)
                   metrics=metrics, window=window)
        same_segment = (truncated.segment(0, window)
                        == nxt.segment(0, window))
        same_nt = truncated.nt == nxt.nt
        if stats is not None or tracer is not None:
            new_size = len(nxt.truncate(window))
            derived = max(new_size - size, 0)
            size = max(new_size, size)
            if stats is not None:
                stats.record_round(derived=derived)
            if tracer is not None:
                tracer.emit("round", round=rounds, derived=derived,
                            store=new_size)
        if same_segment and same_nt:
            if tracer is not None:
                tracer.emit("eval_end", facts=len(truncated))
            if metrics is not None and stats is not None:
                metrics.export_into(stats)
            return BTResult(store=truncated, horizon=window,
                            c=database.c, g=1, period=None,
                            rounds=rounds, stats=stats)
        current = nxt


def _initial_window(c: int, g: int, query_depth: int) -> int:
    return max(c, query_depth) + max(4 * (g + 1), 16)


def _bt_result(store: TemporalStore, horizon: int, c: int, g: int,
               period: Union[Period, None],
               stats: Union[EvalStats, None], tracer) -> BTResult:
    """Finalize a BT run: fold the outcome into the observability layer."""
    if stats is not None:
        stats.horizon = horizon
        if period is not None:
            stats.period = (period.b, period.p)
        if stats.engine in ("", "seminaive"):
            stats.engine = "bt"
    if tracer is not None and period is not None:
        tracer.emit("period", b=period.b, p=period.p,
                    certified=period.certified, horizon=horizon)
    return BTResult(store=store, horizon=horizon, c=c, g=g,
                    period=period, stats=stats)


def bt_evaluate(rules: Sequence[Rule], database: TemporalDatabase,
                window: Union[int, None] = None,
                query_depth: int = 0,
                range_bound: Union[int, None] = None,
                max_window: int = 1 << 20,
                evidence: int = 2,
                stats: Union[EvalStats, None] = None,
                tracer=None, metrics=None,
                engine: str = "seminaive",
                provenance=None) -> BTResult:
    """Semi-naive BT with period detection.

    ``engine`` selects the window engine each (re-)evaluation runs on
    (``seminaive`` or ``compiled``; see :mod:`repro.engines`) — the BT
    driver itself (windowing, deepening, period detection) is shared.

    Window selection, in order of precedence:

    * explicit ``window`` — used as-is (period detection may fail if it is
      too small; ``BTResult.period`` is then None);
    * ``range_bound`` — paper mode: ``m = max(c, h) + range_bound``,
      mirroring ``m = max(c, h) + range(Z∧D)`` from Theorem 4.1's proof;
    * neither — iterative deepening until a detected period is certified
      (forward ruleset) or re-verified at a doubled horizon.

    Raises :class:`EvaluationError` if deepening passes ``max_window``
    without a stable period (only possible for very long periods or
    non-forward rulesets).
    """
    validate_rules(rules)
    c = database.c
    lookback = forward_lookback([r for r in rules if not r.is_fact])
    g = max((r.temporal_depth for r in rules), default=1)
    g = max(g, 1)

    if window is not None or range_bound is not None:
        m = window if window is not None else max(c, query_depth) + range_bound
        with phase_timer(stats, "evaluate", tracer):
            store = evaluate_window(rules, database, m,
                                    stats=stats, tracer=tracer,
                                    metrics=metrics, engine=engine,
                                    provenance=provenance)
        with phase_timer(stats, "period_detection", tracer):
            states = store.states(0, m)
            found = find_minimal_period(states, floor=0, g=g,
                                        evidence=evidence)
        period = None
        if found is not None:
            b, p = found
            certified = (lookback is not None
                         and max(b, c + 1) + p + g - 1 <= m)
            period = Period(b, p, certified=certified, verified_horizon=m)
        elif lookback == 1:
            # Paper-style short windows (m = max(c, h) + range): for
            # normal forward programs a single state recurrence beyond
            # the database horizon already proves the period (the [6]
            # procedure's argument).
            recurred = find_period_by_recurrence(states, floor=c + 1)
            if recurred is not None:
                b, p = recurred
                period = Period(b, p, certified=True,
                                verified_horizon=m)
        return _bt_result(store, m, c, g, period, stats, tracer)

    m = _initial_window(c, g, query_depth)
    # (candidate (b, p), the trusted state sequence it was found in).
    previous: Union[tuple[tuple[int, int], list], None] = None
    while m <= max_window:
        if provenance is not None:
            # Each deepening pass re-derives the whole window; stale
            # edges from the narrower run would reference facts the
            # wider model may support differently.
            provenance.reset()
        with phase_timer(stats, "evaluate", tracer):
            store = evaluate_window(rules, database, m,
                                    stats=stats, tracer=tracer,
                                    metrics=metrics, engine=engine,
                                    provenance=provenance)
        # For non-forward rulesets the right edge of the window is
        # under-derived (facts there lack support from beyond the
        # window), so periods are detected on a trusted sub-window only.
        trusted = m if lookback is not None else max((3 * m) // 4, 1)
        with phase_timer(stats, "period_detection", tracer):
            states = store.states(0, trusted)
            found = find_minimal_period(states, floor=0, g=g,
                                        evidence=evidence)
        if found is not None:
            b, p = found
            if lookback is not None and max(b, c + 1) + p + g - 1 <= m:
                # Forward ruleset: the window computation is exact (facts
                # never depend on later facts), so observed equalities are
                # true equalities, and a repeated g-block beyond the
                # database horizon certifies the period for the infinite
                # least model.
                period = Period(b, p, certified=True, verified_horizon=m)
                return _bt_result(store, m, c, g, period, stats, tracer)
            if (previous is not None and previous[0] == found
                    and states[:len(previous[1])] == previous[1]):
                # Same minimal period at two consecutive horizons (the
                # second twice as large) and an unchanged trusted state
                # prefix: accept as verified (not certified — backward
                # rules can in principle be influenced from beyond any
                # finite window).  The store is truncated to the trusted
                # region so direct lookups never see the polluted edge.
                period = Period(b, p, certified=False, verified_horizon=m)
                return _bt_result(store.truncate(trusted), trusted,
                                  c, g, period, stats, tracer)
            previous = (found, states)
        else:
            previous = None
        m *= 2
    raise EvaluationError(
        f"no stable period found within window {max_window}; the period "
        "of this TDD may be too large (Theorem 3.1 only bounds it "
        "exponentially in the database size)"
    )


def verify_period(rules: Sequence[Rule], database: TemporalDatabase,
                  b: int, p: int, horizon: int) -> bool:
    """Recompute up to ``horizon`` and check that ``(b, p)`` still holds.

    Used by tests and by callers who obtained a period from an external
    bound (e.g. Theorem 5.1's ``(poly(n)+1, 1)`` or a Theorem 6.3
    1-period) and want to confront it with an actual model prefix.
    """
    store = evaluate_window(rules, database, horizon)
    return holds_with_period(store.states(0, horizon), b, p)
