"""Tabled top-down evaluation (QSQ-style) for temporal rules.

The third evaluation strategy, complementing bottom-up BT (Figure 1)
and the magic-sets rewriting of Section 8: goal-driven resolution with
*tabling*.  Subgoals are canonicalised into call patterns (predicate +
ground/free slots); each pattern owns an answer table, and the engine
sweeps the dependency structure until every table is saturated — the
iterative variant of QSQR, which terminates because call patterns and
window facts are both finite.

Semantics matches the window-truncated fixpoint exactly (property-
tested against :func:`repro.temporal.operator.fixpoint`): a body atom
whose timepoint exceeds the window simply has no answers, mirroring
BT's truncation.  Definite rules only — combining tabling with
stratified negation (SLG resolution) is out of scope.

Typical use: a handful of ground or half-ground queries against a large
program where even the magic-rewritten bottom-up pass derives more than
the questions need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator, Sequence, Union

from ..lang.atoms import Atom, Fact
from ..lang.errors import EvaluationError
from ..lang.rules import Rule, validate_rules
from ..lang.terms import Const
from .database import TemporalDatabase

#: Placeholder for an unbound slot in a call pattern.
FREE = object()

#: A call pattern: (pred, time slot, data slots); slots are ground
#: values or FREE.
CallPattern = tuple


def _pattern_of(atom: Atom, binding: dict) -> CallPattern:
    if atom.time is None:
        time_slot: object = None
    elif atom.time.var is None:
        time_slot = atom.time.offset
    elif atom.time.var in binding:
        time_slot = binding[atom.time.var] + atom.time.offset
    else:
        time_slot = FREE
    args = tuple(
        arg.value if isinstance(arg, Const)
        else binding.get(arg.name, FREE)
        for arg in atom.args
    )
    return (atom.pred, time_slot, args)


def _pattern_matches(pattern: CallPattern, fact: Fact) -> bool:
    pred, time_slot, args = pattern
    if fact.pred != pred or len(args) != len(fact.args):
        return False
    if time_slot is None:
        if fact.time is not None:
            return False
    elif time_slot is not FREE:
        if fact.time != time_slot:
            return False
    elif fact.time is None:
        return False
    return all(slot is FREE or slot == value
               for slot, value in zip(args, fact.args))


@dataclass
class _Table:
    answers: set[Fact] = field(default_factory=set)


class TopDownEngine:
    """Tabled top-down evaluation over a window ``[0..horizon]``."""

    def __init__(self, rules: Sequence[Rule],
                 database: TemporalDatabase, horizon: int,
                 stats=None, tracer=None, metrics=None):
        validate_rules(rules)
        proper = [r for r in rules if not r.is_fact]
        if any(not r.is_definite for r in proper):
            raise EvaluationError(
                "the top-down engine handles definite rules; stratified "
                "programs go through bt_evaluate"
            )
        self.rules = proper
        self.facts = [r.head.to_fact() for r in rules if r.is_fact]
        self.database = database
        self.horizon = horizon
        self._by_head: dict[str, list[Rule]] = {}
        for rule in self.rules:
            self._by_head.setdefault(rule.head.pred, []).append(rule)
        self._tables: dict[CallPattern, _Table] = {}
        self.stats = {"subgoals": 0, "sweeps": 0, "answers": 0}
        self.eval_stats = stats
        self.tracer = tracer
        self.metrics = metrics
        if stats is not None:
            stats.engine = "topdown"
            stats.horizon = horizon

    # -- public API -----------------------------------------------------

    def query(self, atom: Atom) -> set[Fact]:
        """All window facts matching ``atom`` (vars are free slots)."""
        pattern = _pattern_of(atom, {})
        self._register(pattern)
        self._saturate()
        return set(self._tables[pattern].answers)

    def ask(self, goal: Union[Fact, Atom]) -> bool:
        """Ground membership within the window."""
        if isinstance(goal, Atom):
            goal = goal.to_fact()
        if goal.time is not None and goal.time > self.horizon:
            raise EvaluationError(
                f"goal at time {goal.time} exceeds the window "
                f"{self.horizon}"
            )
        return bool(self.query(goal.to_atom()))

    def table_sizes(self) -> dict[CallPattern, int]:
        return {pattern: len(table.answers)
                for pattern, table in self._tables.items()}

    # -- internals -------------------------------------------------------

    def _register(self, pattern: CallPattern) -> _Table:
        table = self._tables.get(pattern)
        if table is None:
            table = _Table()
            self._tables[pattern] = table
            self.stats["subgoals"] += 1
            self._seed_extensional(pattern, table)
            if self.tracer is not None:
                pred, time_slot, args = pattern
                self.tracer.emit(
                    "subgoal", pred=pred,
                    time="free" if time_slot is FREE else time_slot,
                    args=["free" if a is FREE else a for a in args],
                    seeded=len(table.answers))
        return table

    def _seed_extensional(self, pattern: CallPattern,
                          table: _Table) -> None:
        pred, time_slot, args = pattern
        if time_slot is None:
            candidates = [Fact(pred, None, values)
                          for values in self.database.nt.lookup(
                              pred, (), ())]
        elif time_slot is FREE:
            candidates = [
                Fact(pred, t, values)
                for t in self.database.times(pred)
                if t <= self.horizon
                for values in self.database.lookup_at(pred, t, (), ())
            ]
        else:
            candidates = [
                Fact(pred, time_slot, values)
                for values in self.database.lookup_at(
                    pred, time_slot, (), ())
            ] if isinstance(time_slot, int) and \
                0 <= time_slot <= self.horizon else []
        for fact in candidates:
            if _pattern_matches(pattern, fact):
                table.answers.add(fact)
        for fact in self.facts:
            if _pattern_matches(pattern, fact) and (
                    fact.time is None or fact.time <= self.horizon):
                table.answers.add(fact)

    def _saturate(self) -> None:
        handles = ([self.metrics.rule(r) for r in self.rules]
                   if self.metrics is not None else None)
        while True:
            self.stats["sweeps"] += 1
            answers_before = self.stats["answers"]
            tables_before = len(self._tables)
            if handles is not None:
                for rm in handles:
                    rm.begin_round()
            changed = False
            for pattern in list(self._tables):
                if self._solve(pattern):
                    changed = True
            if handles is not None:
                for rm in handles:
                    rm.end_round()
            derived = self.stats["answers"] - answers_before
            if self.eval_stats is not None:
                self.eval_stats.record_round(derived=derived)
                self.eval_stats.extra["subgoals"] = \
                    self.stats["subgoals"]
            if self.tracer is not None:
                self.tracer.emit("round",
                                 round=self.stats["sweeps"],
                                 derived=derived,
                                 subgoals=len(self._tables))
            # A sweep that registered new subgoal tables must be
            # followed by another even if no answer was produced yet.
            if not changed and len(self._tables) == tables_before:
                if self.metrics is not None and \
                        self.eval_stats is not None:
                    self.metrics.export_into(self.eval_stats)
                return

    def _solve(self, pattern: CallPattern) -> bool:
        pred, time_slot, arg_slots = pattern
        table = self._tables[pattern]
        grew = False
        for rule in self._by_head.get(pred, []):
            rm = self.metrics.rule(rule) if self.metrics is not None \
                else None
            binding = self._bind_head(rule.head, time_slot, arg_slots)
            if binding is None:
                continue
            if rm is not None:
                rule_t0 = perf_counter()
            for full in self._solve_body(rule.body, 0, binding, rm):
                fact = self._head_fact(rule.head, full)
                if rm is not None:
                    rm.firings += 1
                if fact.time is not None and (
                        fact.time > self.horizon or fact.time < 0):
                    continue
                if _pattern_matches(pattern, fact):
                    if fact not in table.answers:
                        table.answers.add(fact)
                        self.stats["answers"] += 1
                        grew = True
                        if rm is not None:
                            rm.new_facts += 1
                    elif rm is not None:
                        rm.duplicates += 1
            if rm is not None:
                rm.seconds += perf_counter() - rule_t0
        return grew

    def _bind_head(self, head: Atom, time_slot,
                   arg_slots) -> Union[dict, None]:
        binding: dict = {}
        if head.time is not None and time_slot is not None \
                and time_slot is not FREE:
            if head.time.var is None:
                if head.time.offset != time_slot:
                    return None
            else:
                base = time_slot - head.time.offset
                if base < 0:
                    return None
                binding[head.time.var] = base
        for arg, slot in zip(head.args, arg_slots):
            if slot is FREE:
                continue
            if isinstance(arg, Const):
                if arg.value != slot:
                    return None
            else:
                bound = binding.get(arg.name)
                if bound is None:
                    binding[arg.name] = slot
                elif bound != slot:
                    return None
        return binding

    def _solve_body(self, body: tuple, index: int,
                    binding: dict, rm=None) -> Iterator[dict]:
        if index == len(body):
            yield binding
            return
        atom = body[index]
        sub_pattern = _pattern_of(atom, binding)
        if isinstance(sub_pattern[1], int) and (
                sub_pattern[1] > self.horizon or sub_pattern[1] < 0):
            return
        sub_table = self._register(sub_pattern)
        from ..lang.subst import match_atom
        stats = self.eval_stats
        for answer in list(sub_table.answers):
            if stats is not None:
                stats.join_probes += 1
            if rm is not None:
                rm.probes += 1
            extended = match_atom(atom, answer, binding)
            if extended is not None:
                yield from self._solve_body(body, index + 1, extended,
                                            rm)

    @staticmethod
    def _head_fact(head: Atom, binding: dict) -> Fact:
        from ..lang.subst import instantiate_head
        return instantiate_head(head, binding)


def topdown_ask(rules: Sequence[Rule], database: TemporalDatabase,
                goal: Union[Fact, Atom],
                horizon: Union[int, None] = None,
                stats=None, tracer=None, metrics=None) -> bool:
    """One-shot goal-directed ground query via tabled top-down
    resolution.  ``horizon`` defaults to the goal's timepoint plus one
    rule depth (exact for forward programs, whose derivations never
    overshoot the goal by more than ``g``)."""
    if isinstance(goal, Atom):
        goal = goal.to_fact()
    if horizon is None:
        g = max((r.temporal_depth for r in rules), default=1)
        query_depth = goal.time if goal.time is not None else 0
        horizon = max(query_depth, database.c) + g
    engine = TopDownEngine(rules, database, horizon, stats=stats,
                           tracer=tracer, metrics=metrics)
    return engine.ask(goal)
