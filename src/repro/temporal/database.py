"""Temporal databases: the finite extensional part of a TDD.

A temporal database ``D`` (Section 3.1) is a finite set of ground temporal
and non-temporal tuples.  :class:`TemporalDatabase` is a
:class:`~repro.temporal.store.TemporalStore` with the paper's size
metrics attached:

* ``n`` — the number of tuples;
* ``c`` — the maximum depth of a temporal term in ``D``;
* ``size`` — ``max(n, c)``, the paper's database-size measure under the
  unary encoding of temporal terms (Section 4).
"""

from __future__ import annotations

from typing import Iterable

from ..lang.atoms import Fact
from .store import TemporalStore


class TemporalDatabase(TemporalStore):
    """A finite temporal database with the paper's size measures."""

    @property
    def n(self) -> int:
        """Number of tuples in the database."""
        return len(self)

    @property
    def c(self) -> int:
        """Maximum depth of a temporal term in the database (0 if none)."""
        return max(self.max_time(), 0)

    @property
    def size(self) -> int:
        """The paper's database size: ``max(n, c)``."""
        return max(self.n, self.c)

    @classmethod
    def from_facts(cls, facts: Iterable[Fact]) -> "TemporalDatabase":
        return cls(facts)

    def __repr__(self) -> str:
        return f"TemporalDatabase(n={self.n}, c={self.c})"
