"""Request-level telemetry: spans, trace contexts, latency histograms.

PRs 1 and 3 made engine internals observable (EvalStats, traces,
per-rule metrics); this module gives the *serving path* the same
treatment.  A :class:`Span` is one timed unit of work — an HTTP
request, a program parse, a cache lookup, a spec computation — carrying
a :class:`SpanContext` (``trace_id`` shared by every span of one
request, ``span_id`` unique per span, ``parent_id`` linking the tree).
Spans are cheap enough to create unconditionally: a disabled
:class:`Telemetry` (no tracer) still produces real ids and durations —
so responses can always report ``trace_id`` and ``duration_ms`` — it
just exports nothing.

Export reuses the existing :class:`~repro.obs.trace.Tracer` sink
machinery: every ended span becomes one schema-3 ``span`` event
(``trace_id``, ``span_id``, ``parent``, ``name``, ``start_ms``,
``duration_ms``, ``attrs``) on the same JSON-lines stream engines
trace to, guarded by a lock so concurrent handler threads interleave
whole lines, never bytes.  ``repro serve --trace FILE`` writes this
stream; the schema is documented in ``docs/INTERNALS.md``.

:class:`LatencyHistogram` is the fixed-bucket (native-histogram-free)
latency distribution behind ``GET /metrics`` and the ``p50/p95/p99``
block of ``GET /stats``: thread-safe ``observe``, bucket counts whose
sum always equals the total count, interpolated quantiles, and a
Prometheus text-format renderer (cumulative ``le`` buckets, seconds).
"""

from __future__ import annotations

import os
import re
import threading
import time
from dataclasses import dataclass
from typing import Iterator, Sequence, Union

from .trace import Tracer

#: Trace ids accepted from the wire (``X-Repro-Trace-Id``): 8-64 hex
#: characters.  Anything else is replaced by a fresh id — a client can
#: label its request but cannot inject arbitrary bytes into logs.
_TRACE_ID = re.compile(r"^[0-9a-f]{8,64}$")

#: Span ids accepted from the wire (``X-Repro-Parent-Span``): exactly
#: 16 hex characters, the shape :func:`new_span_id` mints.  The tier's
#: front-end sends its *forward* span's id with each sub-batch so the
#: worker's root span nests under it in the assembled trace tree.
_SPAN_ID = re.compile(r"^[0-9a-f]{16}$")

#: Fixed latency bucket upper bounds, in milliseconds.  Chosen to span
#: a warm cache hit (sub-millisecond) through a cold BT run (seconds);
#: an implicit +Inf bucket always follows.
DEFAULT_LATENCY_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 lowercase hex characters)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (16 lowercase hex characters)."""
    return os.urandom(8).hex()


def valid_trace_id(value) -> bool:
    """Whether a client-supplied trace id is safe to honor."""
    return isinstance(value, str) and _TRACE_ID.match(value) is not None


def valid_span_id(value) -> bool:
    """Whether a wire-supplied parent span id is safe to honor."""
    return isinstance(value, str) and _SPAN_ID.match(value) is not None


@dataclass(frozen=True)
class SpanContext:
    """The identity of one span inside one trace."""

    trace_id: str
    span_id: str
    parent_id: Union[str, None] = None


class Span:
    """One timed unit of work; created via :meth:`Telemetry.root`,
    :meth:`Telemetry.span`, or :meth:`Span.child`.

    Usable as a context manager (``with telemetry.span(...) as s:``);
    :meth:`end` is idempotent and returns the duration in ms.
    """

    __slots__ = ("name", "context", "attributes", "children",
                 "start_ms", "duration_ms", "_telemetry", "_start")

    def __init__(self, name: str, context: SpanContext,
                 telemetry: "Telemetry", attributes: dict):
        self.name = name
        self.context = context
        self.attributes = attributes
        self.children: list["Span"] = []
        self._telemetry = telemetry
        self._start = telemetry._clock()
        self.start_ms = (self._start - telemetry._t0) * 1e3
        self.duration_ms: Union[float, None] = None

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def ended(self) -> bool:
        return self.duration_ms is not None

    def child(self, name: str, **attributes) -> "Span":
        """A new span under this one (same trace, this span as parent)."""
        return self._telemetry.span(name, parent=self, **attributes)

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def end(self) -> float:
        """Close the span; export it once; return its duration in ms."""
        if self.duration_ms is None:
            self.duration_ms = (self._telemetry._clock()
                                - self._start) * 1e3
            self._telemetry._export(self)
        return self.duration_ms

    def tree(self) -> dict:
        """This span and its descendants as one nested dictionary —
        the shape the slow-query log dumps."""
        return {
            "name": self.name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": (None if self.duration_ms is None
                            else round(self.duration_ms, 3)),
            "attrs": dict(self.attributes),
            "children": [child.tree() for child in self.children],
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", str(exc))
        self.end()

    def __repr__(self) -> str:
        state = (f"{self.duration_ms:.3f}ms" if self.ended
                 else "open")
        return (f"Span({self.name!r}, trace={self.trace_id[:12]}…, "
                f"{state})")


class Telemetry:
    """Span factory + exporter.

    ``Telemetry()`` (no tracer) creates fully functional spans — ids,
    durations, trees — and exports nothing; ``Telemetry(tracer)``
    additionally emits one schema-3 ``span`` event per ended span
    through the tracer's sink, serialised by an internal lock so the
    stream stays line-atomic under concurrent requests.

    ``collector`` is an optional second export target — anything with
    a ``record_span(span)`` method (a
    :class:`repro.serve.collect.Collector` locally, a
    :class:`~repro.serve.collect.CollectorClient` inside a tier
    worker).  It receives every ended span even when no tracer is
    configured, which is what feeds the front-end's assembled
    cross-process trace store.
    """

    def __init__(self, tracer: Union[Tracer, None] = None,
                 clock=time.perf_counter, collector=None):
        self.tracer = tracer
        self.collector = collector
        self._clock = clock
        self._t0 = clock()
        self._lock = threading.Lock()

    def root(self, name: str, trace_id: Union[str, None] = None,
             parent_id: Union[str, None] = None,
             **attributes) -> Span:
        """Open a trace: a span with no local parent.  A valid
        client-supplied ``trace_id`` (8-64 hex chars,
        case-insensitive) is honored; anything else gets a fresh id.
        ``parent_id`` (a 16-hex span id, from ``X-Repro-Parent-Span``)
        names a *remote* parent: the span still roots this process's
        tree, but the exported event links it under the sending
        process's span so the collector can stitch the two trees."""
        if trace_id is not None:
            trace_id = str(trace_id).lower()
        if not valid_trace_id(trace_id):
            trace_id = new_trace_id()
        if parent_id is not None:
            parent_id = str(parent_id).lower()
            if not valid_span_id(parent_id):
                parent_id = None
        context = SpanContext(trace_id=trace_id, span_id=new_span_id(),
                              parent_id=parent_id)
        return Span(name, context, self, attributes)

    def span(self, name: str, parent: Union[Span, None] = None,
             **attributes) -> Span:
        """A new span; under ``parent`` when given, else a new trace."""
        if parent is None:
            return self.root(name, **attributes)
        context = SpanContext(trace_id=parent.context.trace_id,
                              span_id=new_span_id(),
                              parent_id=parent.context.span_id)
        span = Span(name, context, self, attributes)
        parent.children.append(span)
        return span

    def _export(self, span: Span) -> None:
        collector = self.collector
        if collector is not None:
            collector.record_span(span)
        if self.tracer is None or not self.tracer.enabled:
            return
        with self._lock:
            self.tracer.emit(
                "span",
                trace_id=span.context.trace_id,
                span_id=span.context.span_id,
                parent=span.context.parent_id,
                name=span.name,
                start_ms=round(span.start_ms, 3),
                duration_ms=round(span.duration_ms or 0.0, 3),
                attrs=dict(span.attributes),
            )
            # Stream, don't buffer: a server's trace must be
            # tail-able while it runs.
            flush = getattr(self.tracer.sink, "flush", None)
            if flush is not None:
                flush()


class LatencyHistogram:
    """Fixed-bucket latency distribution, thread-safe.

    Observations are milliseconds.  Per-bucket counts (not cumulative)
    always sum to ``count`` — the invariant
    ``benchmarks/check_stats_json.py`` gates on — and
    :meth:`prometheus_lines` renders the Prometheus exposition shape
    (cumulative ``le`` buckets, in seconds, ``+Inf`` last).
    """

    def __init__(self, buckets_ms: Sequence[float]
                 = DEFAULT_LATENCY_BUCKETS_MS):
        bounds = [float(b) for b in buckets_ms]
        if not bounds or any(b <= 0 for b in bounds) \
                or any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be positive and "
                             "strictly increasing")
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self._sum_ms = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, ms: float) -> None:
        """Record one latency observation (milliseconds)."""
        ms = max(0.0, float(ms))
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if ms <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum_ms += ms
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum_ms(self) -> float:
        with self._lock:
            return self._sum_ms

    def _snapshot(self) -> tuple[list[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum_ms, self._count

    def quantile(self, q: float) -> float:
        """Estimated q-quantile in ms, interpolated inside the bucket
        (the +Inf bucket reports the largest finite bound).  0.0 when
        empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        counts, _, total = self._snapshot()
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for i, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if i >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                if bucket_count == 0:
                    return upper
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(1.0, fraction)
        return self.bounds[-1]  # pragma: no cover - rank <= total

    @classmethod
    def from_dicts(cls, payloads: Sequence[dict]) -> "LatencyHistogram":
        """Rebuild one histogram from :meth:`to_dict` payloads, summed.

        The multi-process front-end merges per-worker ``latency``
        blocks with this: bucket counts, totals and sums add, and the
        quantile estimator then runs on the merged counts.  All
        payloads must share one bucket layout (they do — every worker
        uses :data:`DEFAULT_LATENCY_BUCKETS_MS`); an empty sequence
        yields an empty default histogram.
        """
        merged: Union[LatencyHistogram, None] = None
        for payload in payloads:
            buckets = payload["buckets"]
            bounds = tuple(float(bound) for bound, _ in buckets[:-1])
            if merged is None:
                merged = cls(bounds)
            elif bounds != merged.bounds:
                raise ValueError(
                    "cannot merge histograms with different buckets: "
                    f"{bounds} vs {merged.bounds}")
            for index, (_, count) in enumerate(buckets):
                merged._counts[index] += count
            merged._sum_ms += float(payload["sum_ms"])
            merged._count += int(payload["count"])
        return merged if merged is not None else cls()

    def to_dict(self) -> dict:
        """The ``latency`` block of ``/stats``: per-bucket counts
        (``"inf"`` last), total count, sum, and p50/p95/p99."""
        counts, sum_ms, total = self._snapshot()
        buckets = [[bound, counts[i]]
                   for i, bound in enumerate(self.bounds)]
        buckets.append(["inf", counts[-1]])
        return {
            "buckets": buckets,
            "count": total,
            "sum_ms": round(sum_ms, 3),
            "p50": round(self.quantile(0.50), 3),
            "p95": round(self.quantile(0.95), 3),
            "p99": round(self.quantile(0.99), 3),
        }

    def prometheus_lines(self, name: str) -> Iterator[str]:
        """Render as a Prometheus histogram (seconds, cumulative)."""
        counts, sum_ms, total = self._snapshot()
        yield f"# HELP {name} Request latency distribution."
        yield f"# TYPE {name} histogram"
        cumulative = 0
        for i, bound in enumerate(self.bounds):
            cumulative += counts[i]
            yield (f'{name}_bucket{{le="{bound / 1e3:g}"}} '
                   f"{cumulative}")
        yield f'{name}_bucket{{le="+Inf"}} {total}'
        yield f"{name}_sum {sum_ms / 1e3:.6f}"
        yield f"{name}_count {total}"
