"""Phase timing helpers shared by the engines and the CLI.

:func:`phase_timer` wraps a phase of work, accumulating its wall time
into :attr:`EvalStats.phase_seconds` and (optionally) emitting a
``phase`` trace event.  Both the stats and the tracer may be ``None``,
so call sites need no guards of their own.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Union

from .stats import EvalStats
from .trace import Tracer


class Stopwatch:
    """A restartable wall-clock timer (``perf_counter`` based)."""

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    def restart(self) -> None:
        self._t0 = time.perf_counter()

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._t0


@contextmanager
def phase_timer(stats: Union[EvalStats, None], name: str,
                tracer: Union[Tracer, None] = None) -> Iterator[None]:
    """Time a phase; no-op (beyond one clock read) when both are None."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        seconds = time.perf_counter() - t0
        if stats is not None:
            stats.add_phase(name, seconds)
        if tracer is not None:
            tracer.emit("phase", name=name, seconds=round(seconds, 6))
