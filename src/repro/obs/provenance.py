"""Recorded why-provenance: the proof DAG the engine actually built.

``temporal/explain.py`` reconstructs derivations *after the fact* by
searching the computed model — which re-derives proofs and can go
exponential on negation-heavy programs.  This module records provenance
*during* the fixpoint instead: a :class:`ProvenanceStore` threaded as an
optional ``provenance=None`` parameter through the engines captures, for
every derived fact, its first (and optionally all) support edges
``(rule, head, body_facts, round)`` as a compact interned DAG.  On top
of the store sit

* :meth:`ProvenanceStore.derivation` — the recorded minimal proof tree,
  reusing :class:`repro.temporal.explain.Derivation` so rendering is
  shared with the search path (``repro why``);
* :meth:`ProvenanceStore.verify` — independent soundness check of a
  recorded proof against the model (every internal node is a sound rule
  instance, leaves are extensional);
* :func:`why_not` — nearest *failed* rule firings for a fact that is
  **not** in the model (``repro whynot``);
* JSON / DOT export and support-count statistics
  (``stats.extra["provenance"]``).

The same zero-cost discipline as :mod:`repro.obs.metrics` applies: every
engine takes ``provenance=None`` and the disabled path must not allocate
or call anything — a single ``is not None`` test per *new* fact at most.
The test suite asserts this the same way it does for the disabled
metrics path.
"""

from __future__ import annotations

import json
from typing import Iterator, Sequence, Union

from ..lang.atoms import Atom, Fact
from .metrics import Histogram


class Support:
    """One recorded support edge: ``rule`` derived ``head`` (implicit —
    the store keys supports by head id) from the positive premises
    ``body`` and the absent negative premises ``neg`` in fixpoint round
    ``round``.  Premises are fact ids into the owning store."""

    __slots__ = ("rule", "body", "neg", "round")

    def __init__(self, rule, body: tuple[int, ...],
                 neg: tuple[int, ...], round_no: int):
        self.rule = rule
        self.body = body
        self.neg = neg
        self.round = round_no


class ProvenanceStore:
    """An interned why-provenance DAG recorded during evaluation.

    Facts are interned to dense integer ids; each derived fact carries
    its first support edge (insertion order makes the DAG acyclic: every
    premise of an edge was added strictly before its head).  With
    ``all_supports=True`` later supports are kept too (the data DRed-
    style deletion needs); the default keeps exactly one proof per fact.

    ``tracer``/``sample`` emit every ``sample``-th recorded edge as a
    schema-4 ``derive`` trace event, bounding trace volume on large
    windows (CLI: ``--trace-provenance N``).
    """

    def __init__(self, all_supports: bool = False, tracer=None,
                 sample: int = 1):
        self.all_supports = all_supports
        self.tracer = tracer
        self.sample = max(1, int(sample))
        self._ids: dict[Fact, int] = {}
        self._facts: list[Fact] = []
        self._edges: dict[int, Support] = {}
        self._more: dict[int, list[Support]] = {}
        self._recorded = 0  # every record() call, for trace sampling

    # -- recording (the engine-facing hot path) -------------------------

    def _intern(self, fact: Fact) -> int:
        fid = self._ids.get(fact)
        if fid is None:
            fid = len(self._facts)
            self._ids[fact] = fid
            self._facts.append(fact)
        return fid

    def record(self, rule, head: Fact, body: Sequence[Fact],
               neg: Sequence[Fact] = (), round_no: int = 0) -> None:
        """Record one support edge for a *newly added* fact.

        Premises are interned before the head, so ids topologically
        order the DAG.  The first support wins; extras are kept only
        under ``all_supports``.
        """
        body_ids = tuple(self._intern(f) for f in body)
        neg_ids = tuple(self._intern(f) for f in neg)
        hid = self._intern(head)
        support = Support(rule, body_ids, neg_ids, round_no)
        if hid not in self._edges:
            self._edges[hid] = support
        elif self.all_supports:
            self._more.setdefault(hid, []).append(support)
        else:
            return  # duplicate first-support; nothing new to trace
        self._recorded += 1
        tracer = self.tracer
        if tracer is not None and self._recorded % self.sample == 0:
            span = rule.span if rule.span is not None else rule.head.span
            tracer.emit(
                "derive", pred=head.pred, time=head.time,
                args=list(head.args), rule=str(rule),
                line=span.line if span is not None else None,
                round=round_no,
                body=[[f.pred, f.time, list(f.args)] for f in body],
                neg=[[f.pred, f.time, list(f.args)] for f in neg])

    def reset(self) -> None:
        """Drop all recorded edges (e.g. before re-running a wider
        window during BT's iterative deepening) but keep configuration."""
        self._ids.clear()
        self._facts.clear()
        self._edges.clear()
        self._more.clear()
        self._recorded = 0

    # -- inspection -----------------------------------------------------

    def __len__(self) -> int:
        """Number of derived facts (facts carrying a support edge)."""
        return len(self._edges)

    def __contains__(self, fact: Fact) -> bool:
        fid = self._ids.get(fact)
        return fid is not None and fid in self._edges

    def fact(self, fid: int) -> Fact:
        return self._facts[fid]

    def supports(self, fact: Fact) -> list[Support]:
        """All recorded supports for ``fact`` (first one first)."""
        fid = self._ids.get(fact)
        if fid is None or fid not in self._edges:
            return []
        return [self._edges[fid]] + self._more.get(fid, [])

    def _ancestors(self, fid: int) -> list[int]:
        """``fid`` plus every premise id reachable from it (first
        supports only), in discovery order."""
        seen = {fid}
        order = [fid]
        stack = [fid]
        while stack:
            sup = self._edges.get(stack.pop())
            if sup is None:
                continue
            for child in sup.body + sup.neg:
                if child not in seen:
                    seen.add(child)
                    order.append(child)
                    stack.append(child)
        return order

    def derivation(self, fact: Union[Fact, Atom], database=None):
        """The recorded minimal proof tree for ``fact``, or ``None``.

        Returns a :class:`repro.temporal.explain.Derivation` (shared
        with the search-based explainer, so rendering and depth work the
        same).  Facts without a recorded edge are extensional leaves
        when ``database`` contains them (or when no database is given);
        otherwise the fact is unknown here and ``None`` is returned so
        callers can fall back to the search.
        """
        from ..temporal.explain import Derivation
        if isinstance(fact, Atom):
            fact = fact.to_fact()
        fid = self._ids.get(fact)
        if fid is None or fid not in self._edges:
            if database is not None:
                return (Derivation(fact, "database")
                        if fact in database else None)
            return Derivation(fact, "database") if fid is not None \
                else None
        memo: dict[int, object] = {}
        stack = [fid]
        while stack:
            cur = stack[-1]
            if cur in memo:
                stack.pop()
                continue
            sup = self._edges.get(cur)
            if sup is None:
                memo[cur] = Derivation(self._facts[cur], "database")
                stack.pop()
                continue
            pending = [b for b in sup.body if b not in memo]
            if pending:
                stack.extend(pending)
                continue
            premises = [memo[b] for b in sup.body]
            premises.extend(Derivation(self._facts[n], "absent")
                            for n in sup.neg)
            memo[cur] = Derivation(self._facts[cur], "rule",
                                   rule=sup.rule, premises=premises)
            stack.pop()
        return memo[fid]

    def verify(self, fact: Union[Fact, Atom], database,
               store) -> list[str]:
        """Soundness-check the recorded proof of ``fact`` and return the
        problems found (empty list = the proof checks out).

        Independent of how the proof was recorded: every internal node
        must be a sound instance of its rule (head and premises match
        under one binding, premises in the model, negated premises
        absent), and every leaf must be an extensional ``database``
        fact.
        """
        from ..lang.subst import match_atom
        if isinstance(fact, Atom):
            fact = fact.to_fact()
        fid = self._ids.get(fact)
        if fid is None:
            if fact in database:
                return []
            return [f"{fact}: no recorded derivation and not extensional"]
        problems: list[str] = []
        for nid in self._ancestors(fid):
            node = self._facts[nid]
            sup = self._edges.get(nid)
            if sup is None:
                if node not in database:
                    # a negative premise is justified by absence, not
                    # by being extensional
                    if not self._is_negative_leaf(nid):
                        problems.append(
                            f"leaf {node} is not a database fact")
                continue
            rule = sup.rule
            binding = match_atom(rule.head, node, {})
            if binding is None:
                problems.append(f"{node}: head does not match rule "
                                f"{rule}")
                continue
            if len(sup.body) != len(rule.body):
                problems.append(f"{node}: {len(sup.body)} premises "
                                f"recorded for rule {rule}")
                continue
            ok = True
            for atom, bid in zip(rule.body, sup.body):
                premise = self._facts[bid]
                binding = match_atom(atom, premise, binding)
                if binding is None:
                    problems.append(
                        f"{node}: premise {premise} does not match "
                        f"{atom} of rule {rule}")
                    ok = False
                    break
                if not store.contains(premise.pred, premise.time,
                                      premise.args):
                    problems.append(
                        f"{node}: premise {premise} is not in the model")
                    ok = False
                    break
            if not ok:
                continue
            if len(sup.neg) != len(rule.negative):
                problems.append(f"{node}: {len(sup.neg)} negative "
                                f"premises recorded for rule {rule}")
                continue
            for atom, nid2 in zip(rule.negative, sup.neg):
                absent = self._facts[nid2]
                check = match_atom(atom, absent, binding)
                if check is None:
                    problems.append(
                        f"{node}: absent premise {absent} does not "
                        f"match not {atom} of rule {rule}")
                    break
                if store.contains(absent.pred, absent.time, absent.args):
                    problems.append(
                        f"{node}: negated premise {absent} is in the "
                        "model")
                    break
        return problems

    def _is_negative_leaf(self, fid: int) -> bool:
        """True when ``fid`` only ever appears as a negated premise."""
        for sup in self._all_supports():
            if fid in sup.body:
                return False
        return True

    def _all_supports(self) -> Iterator[Support]:
        yield from self._edges.values()
        for extras in self._more.values():
            yield from extras

    # -- statistics -----------------------------------------------------

    def _depths(self) -> dict[int, int]:
        """Proof depth per fact id (leaf = 1), iteratively memoized."""
        memo: dict[int, int] = {}
        for root in self._edges:
            if root in memo:
                continue
            stack = [root]
            while stack:
                cur = stack[-1]
                if cur in memo:
                    stack.pop()
                    continue
                sup = self._edges.get(cur)
                if sup is None:
                    memo[cur] = 1
                    stack.pop()
                    continue
                pending = [b for b in sup.body if b not in memo]
                if pending:
                    stack.extend(pending)
                    continue
                memo[cur] = 1 + max((memo[b] for b in sup.body),
                                    default=0)
                stack.pop()
        return memo

    def stats_dict(self) -> dict:
        """Support-count statistics for ``stats.extra["provenance"]``:
        interned/derived fact counts, edge count, supports histogram,
        maximum premise in-degree, and DAG depth."""
        in_degree: dict[int, int] = {}
        edges = 0
        supports = Histogram()
        for hid in self._edges:
            count = 1 + len(self._more.get(hid, []))
            supports.record(count)
        for sup in self._all_supports():
            edges += 1
            for bid in sup.body:
                in_degree[bid] = in_degree.get(bid, 0) + 1
        depths = self._depths()
        return {
            "facts": len(self._facts),
            "derived": len(self._edges),
            "edges": edges,
            "max_in_degree": max(in_degree.values(), default=0),
            "depth": max(depths.values(), default=0),
            "supports": supports.to_dict(),
        }

    def export_into(self, stats) -> None:
        """Attach :meth:`stats_dict` to an :class:`EvalStats`."""
        stats.extra["provenance"] = self.stats_dict()

    # -- export ---------------------------------------------------------

    def to_json_dict(self, root: Union[Fact, None] = None) -> dict:
        """The proof DAG as plain JSON data: interned node and edge
        lists, restricted to the ancestors of ``root`` when given."""
        if root is not None:
            fid = self._ids.get(root)
            ids = self._ancestors(fid) if fid is not None else []
        else:
            ids = list(range(len(self._facts)))
        remap = {fid: k for k, fid in enumerate(ids)}
        nodes = []
        for fid in ids:
            fact = self._facts[fid]
            nodes.append({
                "id": remap[fid],
                "pred": fact.pred,
                "time": fact.time,
                "args": list(fact.args),
                "kind": "derived" if fid in self._edges else "leaf",
            })
        edges = []
        for fid in ids:
            for sup in ([self._edges[fid]] + self._more.get(fid, [])
                        if fid in self._edges else []):
                span = (sup.rule.span if sup.rule.span is not None
                        else sup.rule.head.span)
                edges.append({
                    "head": remap[fid],
                    "rule": str(sup.rule),
                    "line": span.line if span is not None else None,
                    "body": [remap[b] for b in sup.body],
                    "neg": [remap[n] for n in sup.neg],
                    "round": sup.round,
                })
        return {"nodes": nodes, "edges": edges}

    def to_json(self, root: Union[Fact, None] = None, indent=2) -> str:
        return json.dumps(self.to_json_dict(root), indent=indent)

    def to_dot(self, root: Union[Fact, None] = None) -> str:
        """The proof DAG in Graphviz DOT (``repro why --format dot``)."""
        data = self.to_json_dict(root)
        lines = ["digraph provenance {", "  rankdir=BT;",
                 '  node [fontname="monospace"];']
        for node in data["nodes"]:
            args = ", ".join(str(a) for a in node["args"])
            inner = args if node["time"] is None else (
                f"{node['time']}, {args}" if args else str(node["time"]))
            label = f"{node['pred']}({inner})" if inner else node["pred"]
            shape = "box" if node["kind"] == "leaf" else "ellipse"
            lines.append(f'  n{node["id"]} [label="{label}", '
                         f"shape={shape}];")
        for edge in data["edges"]:
            tag = (f"line {edge['line']}" if edge["line"] is not None
                   else "rule")
            for bid in edge["body"]:
                lines.append(f'  n{bid} -> n{edge["head"]} '
                             f'[label="{tag}"];')
            for nid in edge["neg"]:
                lines.append(f'  n{nid} -> n{edge["head"]} '
                             f'[label="not ({tag})", style=dashed];')
        lines.append("}")
        return "\n".join(lines)


def render_proof(derivation, path: Union[str, None] = None) -> str:
    """Render a proof tree with ``file:line`` rule spans.

    Like :meth:`Derivation.render` but each rule node carries its source
    location (``path:line``), matching ``repro why``'s output contract.
    """
    def loc(rule) -> str:
        span = rule.span if rule.span is not None else rule.head.span
        if span is None:
            return ""
        prefix = f"{path}:" if path else "line "
        return f"{prefix}{span.line}  "

    parts: list[str] = []

    def walk(node, indent: str) -> None:
        if node.kind == "database":
            parts.append(f"{indent}{node.fact}   [database]")
        elif node.kind == "absent":
            parts.append(f"{indent}not {node.fact}   [closed world]")
        else:
            parts.append(f"{indent}{node.fact}   "
                         f"[by  {loc(node.rule)}{node.rule}]")
        for premise in node.premises:
            walk(premise, indent + "    ")

    walk(derivation, "")
    return "\n".join(parts)


class FailedFiring:
    """One nearest-miss rule firing for an absent fact: the rule, the
    premises that held, and the literal that broke (with its time)."""

    __slots__ = ("rule", "satisfied", "failed", "reason")

    def __init__(self, rule, satisfied: list[Fact], failed: str,
                 reason: str):
        self.rule = rule
        self.satisfied = satisfied
        self.failed = failed
        self.reason = reason

    def to_dict(self) -> dict:
        span = (self.rule.span if self.rule.span is not None
                else self.rule.head.span)
        return {
            "rule": str(self.rule),
            "line": span.line if span is not None else None,
            "satisfied": [str(f) for f in self.satisfied],
            "failed": self.failed,
            "reason": self.reason,
        }


class WhyNotReport:
    """Why a fact is **not** in the model: the candidate rules and, for
    each, the nearest failed firing (deepest satisfied premise prefix)."""

    def __init__(self, fact: Fact, in_model: bool,
                 firings: list[FailedFiring], note: str = ""):
        self.fact = fact
        self.in_model = in_model
        self.firings = firings
        self.note = note

    def to_dict(self) -> dict:
        return {
            "fact": str(self.fact),
            "in_model": self.in_model,
            "note": self.note,
            "firings": [f.to_dict() for f in self.firings],
        }

    def render(self, path: Union[str, None] = None) -> str:
        lines = [f"why not {self.fact}?"]
        if self.note:
            lines.append(f"  {self.note}")
        for firing in self.firings:
            span = (firing.rule.span if firing.rule.span is not None
                    else firing.rule.head.span)
            where = ""
            if span is not None:
                where = (f"{path}:{span.line}" if path
                         else f"line {span.line}")
                where = f" ({where})"
            lines.append(f"  rule{where}: {firing.rule}")
            if firing.satisfied:
                held = ", ".join(str(f) for f in firing.satisfied)
                lines.append(f"    satisfied: {held}")
            lines.append(f"    {firing.reason}: {firing.failed}")
        return "\n".join(lines)


def _instantiate(atom: Atom, binding) -> str:
    """Render ``atom`` with the bound variables substituted — the shape
    of the literal that failed, at its concrete time when known."""
    from ..lang.subst import apply_to_atom
    return str(apply_to_atom(atom, binding))


def why_not(rules, store, fact: Union[Fact, Atom],
            max_nodes: int = 10_000) -> WhyNotReport:
    """Nearest failed rule firings for a fact absent from the model.

    For every rule whose head can produce ``fact``, searches the firing
    space over the computed ``store`` and reports the attempt satisfying
    the longest premise prefix — naming the body literal that broke (or
    the negative literal that blocked), instantiated at its time point.
    """
    from ..lang.subst import match_atom
    from ..temporal.operator import _atom_matches, _head_values
    if isinstance(fact, Atom):
        fact = fact.to_fact()
    if fact in store:
        return WhyNotReport(fact, True, [],
                            note="the fact IS in the model "
                                 "(use `repro why`)")
    firings: list[FailedFiring] = []
    candidates = [r for r in rules
                  if not r.is_fact and r.head.pred == fact.pred]
    if not candidates:
        return WhyNotReport(fact, False, [],
                            note=f"no rule derives predicate "
                                 f"{fact.pred!r}")
    budget = [max_nodes]
    for rule in candidates:
        binding = match_atom(rule.head, fact, {})
        if binding is None:
            continue
        best: list[Union[FailedFiring, None]] = [None]
        best_count = [-1]

        def consider(satisfied, failed, reason):
            if len(satisfied) > best_count[0]:
                best_count[0] = len(satisfied)
                best[0] = FailedFiring(rule, list(satisfied), failed,
                                       reason)

        def walk(i, binding, satisfied):
            if budget[0] <= 0:
                return
            if i == len(rule.body):
                for neg in rule.negative:
                    pred, time, args = _head_values(neg, binding)
                    if store.contains(pred, time, args):
                        consider(satisfied,
                                 str(Fact(pred, time, args)),
                                 "blocked by")
                        return
                consider(satisfied, str(fact),
                         "every premise holds, yet the head is beyond "
                         "the window for")
                return
            matched = False
            for ext in _atom_matches(rule.body[i], store, binding):
                budget[0] -= 1
                matched = True
                pred, time, args = _head_values(rule.body[i], ext)
                walk(i + 1, ext, satisfied + [Fact(pred, time, args)])
                if budget[0] <= 0:
                    return
            if not matched:
                consider(satisfied, _instantiate(rule.body[i], binding),
                         "no matching fact for")

        walk(0, binding, [])
        if best[0] is not None:
            firings.append(best[0])
    firings.sort(key=lambda f: len(f.satisfied), reverse=True)
    note = ""
    if not firings:
        note = (f"no instance of any rule head matches {fact} "
                "(the head time offsets exclude this timepoint)")
    return WhyNotReport(fact, False, firings, note=note)
