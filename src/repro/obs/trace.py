"""Structured tracing: a JSON-lines event stream with pluggable sinks.

Engines call :meth:`Tracer.emit` at round boundaries, phase ends, and
period detection; each emit produces one event dictionary handed to the
sink.  A :class:`Tracer` built over ``sink=None`` is disabled: ``emit``
returns immediately and no event objects are allocated, so leaving a
tracer plumbed through but unconfigured is free.  Engines additionally
treat ``tracer=None`` as "no tracing" and skip the call sites entirely.

The event schema (one JSON object per line) is documented in
``docs/INTERNALS.md``; every event carries ``event`` (the type) and
``ts`` (a monotonic timestamp in seconds).  Schema version 2 adds an
optional ``run_start`` header event (:meth:`Tracer.emit_run_start`)
naming the engine, the program, and the tool version, so multi-run
trace files and external consumers can tell runs apart.  Schema
version 3 adds the ``span`` event — request-level telemetry exported
by :mod:`repro.obs.telemetry` through this same sink machinery.
Schema version 4 adds the ``derive`` event — one recorded support edge
``(rule, head, body facts, round)``, emitted (sampled) by
:class:`repro.obs.provenance.ProvenanceStore` when the engine runs
with provenance recording on.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import IO, Union

#: Version of the trace event schema; bumped when events gain meaning
#: (consumers must still ignore unknown events and fields).
TRACE_SCHEMA = 4


class ListSink:
    """Collects events in memory — the test double."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def write_event(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonLinesSink:
    """Writes one compact JSON object per line to a stream or path."""

    def __init__(self, target: Union[str, Path, IO[str]]):
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False

    def write_event(self, event: dict) -> None:
        self._stream.write(json.dumps(event, sort_keys=True,
                                      separators=(",", ":")) + "\n")

    def flush(self) -> None:
        """Push buffered lines out — long-running emitters (the serve
        telemetry) call this so traces stream instead of appearing
        only at close."""
        self._stream.flush()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()
        else:
            self._stream.flush()


class Tracer:
    """Front-end the engines emit through.

    ``Tracer(None)`` is disabled (``enabled`` is False and ``emit`` is a
    cheap early return); any object with a ``write_event(dict)`` method
    works as a sink.
    """

    __slots__ = ("sink", "enabled", "_clock", "_t0")

    def __init__(self, sink=None, clock=time.perf_counter):
        self.sink = sink
        self.enabled = sink is not None
        self._clock = clock
        self._t0 = clock()

    def emit(self, event: str, **payload) -> None:
        if self.sink is None:
            return
        record = {"event": event,
                  "ts": round(self._clock() - self._t0, 6)}
        record.update(payload)
        self.sink.write_event(record)

    def emit_run_start(self, engine: str,
                       program: Union[str, Path, None] = None,
                       text: Union[str, None] = None) -> None:
        """Emit the schema-2 ``run_start`` header event.

        ``program`` is the source path (as the user named it); ``text``
        the program text, hashed (sha256) so traces of renamed or edited
        files remain distinguishable.  Callers that drive an engine
        directly may skip this — consumers treat the header as optional.
        """
        if self.sink is None:
            return
        from .. import __version__
        payload: dict = {"engine": engine, "schema": TRACE_SCHEMA,
                         "version": __version__}
        if program is not None:
            payload["program"] = str(program)
        if text is not None:
            payload["sha256"] = hashlib.sha256(
                text.encode("utf-8")).hexdigest()
        self.emit("run_start", **payload)

    def close(self) -> None:
        if self.sink is not None:
            close = getattr(self.sink, "close", None)
            if close is not None:
                close()
