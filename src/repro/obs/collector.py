"""Cross-process trace assembly and windowed rule profiling.

PR 9 scaled serving across processes and thereby *scattered* the
observability PR 5 built: each worker exports its spans and ``derive``
events into its own sink, so no single place can show one request
end-to-end anymore.  This module holds the process-neutral data
structures that reassemble the picture — Dapper's model, applied to the
tier: spans carry ``(trace_id, span_id, parent_id)``, so a store keyed
by trace id can rebuild the whole request tree no matter which process
each span ran in.

Three structures, all thread-safe, all bounded:

* :class:`TraceStore` — a bounded ring of recent traces (oldest trace
  evicted on overflow, per-trace span cap with a ``dropped`` counter).
  ``tree(trace_id)`` links spans through their parent ids into one
  nested dictionary; spans whose parent never arrived (sampling, a
  killed worker, eviction) surface as extra roots rather than
  vanishing.
* :class:`RuleWindowAggregator` — the continuous profile: per-rule
  counters bucketed into a sliding window (default 60 s of 5 s
  buckets) plus process-lifetime totals for the
  ``repro_rule_seconds_total`` counter.  Rules are keyed by
  ``(label, line)`` — the per-process ``r1``/``r2`` registry ids are
  *not* stable across workers, but a rule's text and source line are.
* :class:`CostCalibration` — measured derived rows vs. the static
  planner's predicted ``est_rows`` (:func:`repro.analysis.static.cost.
  plan_est_rows`), the feedback loop the admission controller never
  had.  The exposed ratio is 0.0 (not NaN) before any data arrives so
  the Prometheus exposition stays parseable.

Loss semantics (documented here because every consumer inherits them):
all three structures are *best-effort sliding state*, not ledgers.  A
SIGKILLed worker loses at most the window its client had not flushed;
an evicted trace is gone; the windowed profile forgets anything older
than its horizon.  The durable record remains the per-process trace
files — this layer trades completeness for a live, assembled view.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Iterable, Union

from ..analysis.static.cost import plan_est_rows

#: Default bound on distinct traces retained (oldest evicted first).
MAX_TRACES = 256

#: Default bound on spans retained per trace; excess spans are counted
#: in the trace's ``dropped`` field instead of stored.
MAX_SPANS_PER_TRACE = 512

#: Default bound on sampled ``derive`` events retained per trace.
MAX_DERIVES_PER_TRACE = 256


class TraceStore:
    """A bounded ring of recent traces, keyed by trace id.

    ``add_span`` ingests one exported span *event* (the plain-dict
    schema-3 shape :class:`~repro.obs.telemetry.Telemetry` emits) plus
    an ``origin`` dict naming the process it came from (``pid``,
    ``worker``).  ``add_derive`` attaches sampled derivation events to
    the same trace.  Insertion refreshes the trace's recency, so a
    long-running request's trace survives as long as spans keep
    arriving.
    """

    def __init__(self, max_traces: int = MAX_TRACES,
                 max_spans: int = MAX_SPANS_PER_TRACE,
                 max_derives: int = MAX_DERIVES_PER_TRACE,
                 clock=time.time):
        self.max_traces = max(1, int(max_traces))
        self.max_spans = max(1, int(max_spans))
        self.max_derives = max(0, int(max_derives))
        self._clock = clock
        self._traces: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self.evicted = 0  # traces dropped to honor max_traces

    # -- ingestion -------------------------------------------------------

    def _entry(self, trace_id: str) -> dict:
        entry = self._traces.get(trace_id)
        if entry is None:
            entry = {"spans": [], "derives": [], "dropped": 0,
                     "updated": self._clock()}
            self._traces[trace_id] = entry
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)
                self.evicted += 1
        else:
            entry["updated"] = self._clock()
            self._traces.move_to_end(trace_id)
        return entry

    def add_span(self, event: dict, origin: Union[dict, None] = None
                 ) -> None:
        """Ingest one exported span event (must carry ``trace_id``)."""
        trace_id = event.get("trace_id")
        if not trace_id:
            return
        span = {
            "span_id": event.get("span_id"),
            "parent": event.get("parent"),
            "name": event.get("name"),
            "start_ms": event.get("start_ms"),
            "duration_ms": event.get("duration_ms"),
            "attrs": event.get("attrs") or {},
        }
        if origin:
            span["pid"] = origin.get("pid")
            span["worker"] = origin.get("worker")
        with self._lock:
            entry = self._entry(str(trace_id))
            if len(entry["spans"]) >= self.max_spans:
                entry["dropped"] += 1
            else:
                entry["spans"].append(span)

    def add_derive(self, event: dict, origin: Union[dict, None] = None
                   ) -> None:
        """Attach one sampled ``derive`` event to its trace."""
        trace_id = event.get("trace_id")
        if not trace_id:
            return
        derive = {key: event[key]
                  for key in ("pred", "time", "args", "rule", "line",
                              "round", "neg")
                  if key in event}
        if origin:
            derive["worker"] = origin.get("worker")
        with self._lock:
            entry = self._entry(str(trace_id))
            if len(entry["derives"]) >= self.max_derives:
                entry["dropped"] += 1
            else:
                entry["derives"].append(derive)

    # -- assembly --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def __contains__(self, trace_id: str) -> bool:
        with self._lock:
            return trace_id in self._traces

    def tree(self, trace_id: str) -> Union[dict, None]:
        """The assembled cross-process span tree of one trace.

        Spans link through ``parent`` span ids; children sort by their
        process-local ``start_ms`` (clocks are per-process, so ordering
        across processes is approximate — good enough for reading, not
        for time arithmetic).  Spans whose parent is missing become
        additional roots.  Returns ``None`` for an unknown trace.
        """
        with self._lock:
            entry = self._traces.get(trace_id)
            if entry is None:
                return None
            spans = [dict(span) for span in entry["spans"]]
            derives = [dict(d) for d in entry["derives"]]
            dropped = entry["dropped"]
        nodes = {}
        for span in spans:
            span["children"] = []
            if span.get("span_id"):
                nodes[span["span_id"]] = span
        roots = []
        for span in spans:
            parent = nodes.get(span.get("parent"))
            if parent is not None and parent is not span:
                parent["children"].append(span)
            else:
                roots.append(span)

        def sort_children(span: dict) -> None:
            span["children"].sort(key=lambda s: (s.get("start_ms") or 0.0))
            for child in span["children"]:
                sort_children(child)

        for root in roots:
            sort_children(root)
        roots.sort(key=lambda s: (s.get("start_ms") or 0.0))
        return {
            "trace_id": trace_id,
            "spans": len(spans),
            "dropped": dropped,
            "roots": roots,
            "derives": derives,
        }

    def summaries(self) -> list[dict]:
        """One row per retained trace, most recent first — the
        ``repro trace ls`` listing."""
        with self._lock:
            items = list(self._traces.items())
        rows = []
        for trace_id, entry in reversed(items):
            spans = entry["spans"]
            root = None
            duration = None
            workers = set()
            for span in spans:
                if span.get("worker") is not None:
                    workers.add(span["worker"])
                if span.get("parent") is None and root is None:
                    root = span
            if root is None and spans:
                root = spans[0]
            if root is not None:
                duration = root.get("duration_ms")
            rows.append({
                "trace_id": trace_id,
                "spans": len(spans),
                "derives": len(entry["derives"]),
                "dropped": entry["dropped"],
                "root": None if root is None else root.get("name"),
                "duration_ms": duration,
                "workers": sorted(workers, key=str),
                "updated": entry["updated"],
            })
        return rows


def render_trace_tree(tree: dict) -> str:
    """Human-readable rendering of :meth:`TraceStore.tree` output —
    the body of ``repro trace show``."""
    lines = [f"trace {tree['trace_id']}  "
             f"({tree['spans']} spans"
             + (f", {tree['dropped']} dropped" if tree["dropped"] else "")
             + ")"]

    def origin_of(span: dict) -> str:
        worker = span.get("worker")
        pid = span.get("pid")
        if worker is not None:
            return f" [{worker}]"
        if pid is not None:
            return f" [pid {pid}]"
        return ""

    def walk(span: dict, depth: int) -> None:
        duration = span.get("duration_ms")
        shown = "?" if duration is None else f"{duration:.3f}ms"
        attrs = span.get("attrs") or {}
        extras = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs)
                          if k in ("method", "path", "status", "worker",
                                   "requests", "key", "engine", "error"))
        lines.append("  " * depth + f"- {span.get('name')} {shown}"
                     + origin_of(span)
                     + (f"  {extras}" if extras else ""))
        for child in span["children"]:
            walk(child, depth + 1)

    for root in tree["roots"]:
        walk(root, 1)
    if tree["derives"]:
        lines.append(f"  {len(tree['derives'])} sampled derive event(s):")
        for derive in tree["derives"][:8]:
            pred = derive.get("pred", "?")
            at = derive.get("time")
            rule = derive.get("rule", "?")
            lines.append(f"    + {pred}@{at}  via {rule}")
        if len(tree["derives"]) > 8:
            lines.append(f"    … {len(tree['derives']) - 8} more")
    return "\n".join(lines)


class RuleWindowAggregator:
    """Sliding-window per-rule hotness, merged across processes.

    Workers periodically ship their :class:`~repro.obs.metrics.
    MetricsRegistry` *deltas* (counter increments since the last ship);
    this aggregator files each delta into the current time bucket and
    into process-lifetime totals.  ``window()`` sums the live buckets —
    the ``GET /profile`` payload; ``totals()`` backs
    ``repro_rule_seconds_total``.

    Keyed by ``(label, line)``: registry ids (``r1``…) restart in every
    process, but a rule's text plus source line identify it across the
    whole tier.
    """

    _FIELDS = ("firings", "new_facts", "duplicates", "probes", "seconds")

    def __init__(self, window_s: float = 60.0, bucket_s: float = 5.0,
                 clock=time.time):
        if bucket_s <= 0 or window_s < bucket_s:
            raise ValueError("window must cover at least one bucket")
        self.window_s = float(window_s)
        self.bucket_s = float(bucket_s)
        self._clock = clock
        # deque of (bucket_index, {key: {field: value}})
        self._buckets: "deque[tuple[int, dict]]" = deque()
        self._totals: dict = {}
        self._lock = threading.Lock()

    def _current_bucket(self) -> dict:
        index = int(self._clock() // self.bucket_s)
        if not self._buckets or self._buckets[-1][0] != index:
            self._buckets.append((index, {}))
        horizon = index - int(self.window_s // self.bucket_s)
        while self._buckets and self._buckets[0][0] <= horizon:
            self._buckets.popleft()
        return self._buckets[-1][1]

    def observe(self, records: Iterable[dict]) -> None:
        """File one batch of per-rule counter deltas (``to_dict`` rows
        from a :class:`~repro.obs.metrics.MetricsRegistry`)."""
        with self._lock:
            bucket = self._current_bucket()
            for record in records:
                key = (record.get("label", "?"), record.get("line"))
                for store in (bucket, self._totals):
                    row = store.get(key)
                    if row is None:
                        row = store[key] = dict.fromkeys(self._FIELDS, 0)
                        row["seconds"] = 0.0
                    for field in self._FIELDS:
                        row[field] += record.get(field) or 0

    @staticmethod
    def _rows(store: dict) -> list[dict]:
        rows = []
        for (label, line), values in store.items():
            row = {"label": label, "line": line}
            row.update(values)
            row["seconds"] = round(row["seconds"], 9)
            rows.append(row)
        rows.sort(key=lambda r: r["seconds"], reverse=True)
        return rows

    def window(self) -> dict:
        """The live window's per-rule rows, hottest first."""
        with self._lock:
            self._current_bucket()  # expire stale buckets
            merged: dict = {}
            for _, bucket in self._buckets:
                for key, values in bucket.items():
                    row = merged.get(key)
                    if row is None:
                        merged[key] = dict(values)
                    else:
                        for field in self._FIELDS:
                            row[field] += values[field]
            return {"window_s": self.window_s,
                    "rules": self._rows(merged)}

    def totals(self) -> list[dict]:
        """Process-lifetime per-rule totals, hottest first."""
        with self._lock:
            return self._rows(self._totals)


class CostCalibration:
    """Measured derived rows vs. the planner's predicted ``est_rows``.

    Accumulates ``(est, measured)`` pairs per rule key.  The headline
    ``ratio()`` — measured ÷ predicted over all observations — is the
    ``repro_cost_calibration_ratio`` gauge: 1.0 means the static model
    is calibrated, >1 it under-predicts, <1 it over-predicts, and 0.0
    is the empty-state sentinel (never NaN; the CI metrics check
    requires every sample line to parse as a number).
    """

    def __init__(self) -> None:
        self._rules: dict = {}
        self._lock = threading.Lock()

    def observe(self, rows: Iterable[dict]) -> None:
        """File ``{label, line, est_rows, measured_rows}`` rows."""
        with self._lock:
            for row in rows:
                key = (row.get("label", "?"), row.get("line"))
                entry = self._rules.get(key)
                if entry is None:
                    entry = self._rules[key] = {
                        "est": 0.0, "measured": 0.0, "samples": 0}
                entry["est"] += float(row.get("est_rows") or 0.0)
                entry["measured"] += float(row.get("measured_rows") or 0.0)
                entry["samples"] += 1

    def ratio(self) -> float:
        with self._lock:
            est = sum(e["est"] for e in self._rules.values())
            measured = sum(e["measured"] for e in self._rules.values())
        return measured / est if est > 0 else 0.0

    def rows(self) -> list[dict]:
        """Per-rule calibration rows, most under-predicted first."""
        with self._lock:
            items = list(self._rules.items())
        rows = []
        for (label, line), entry in items:
            ratio = (entry["measured"] / entry["est"]
                     if entry["est"] > 0 else 0.0)
            rows.append({"label": label, "line": line,
                         "est_rows": round(entry["est"], 3),
                         "measured_rows": round(entry["measured"], 3),
                         "samples": entry["samples"],
                         "ratio": round(ratio, 4)})
        rows.sort(key=lambda r: r["ratio"], reverse=True)
        return rows

    def to_dict(self) -> dict:
        return {"ratio": round(self.ratio(), 4), "rules": self.rows()}


def calibration_rows(registry) -> list[dict]:
    """Calibration observations from one finished evaluation.

    Pairs each registered rule's *measured* derived rows (``new_facts +
    duplicates`` — every binding that reached the head, which is what
    ``est_rows`` predicts) with the canonical plan's estimate.  Facts
    and empty-bodied rules carry no join plan worth calibrating and are
    skipped.
    """
    rows = []
    for rule, record in registry.items():
        if getattr(rule, "is_fact", False) or not rule.body:
            continue
        rows.append({
            "label": record.label,
            "line": record.line,
            "est_rows": plan_est_rows(rule),
            "measured_rows": float(record.new_facts + record.duplicates),
        })
    return rows
