"""The shared evaluation-statistics accumulator.

One :class:`EvalStats` instance travels through an evaluation run and is
populated by whichever engines execute: fixpoint rounds, per-round delta
sizes and derived-fact counts, join probes, index hits/misses, the
horizon actually used, the detected period ``(b, p)``, and per-phase
wall time.  Instances merge (for multi-stage runs such as incremental
maintenance) and serialize to plain JSON dictionaries (for benchmark
reports and trace files).

Counting inference steps is the lens of the paper's polynomial-time
claims (Theorem 4.1 bounds the work of algorithm BT); these counters
make the bound observable on real runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Union


@dataclass
class EvalStats:
    """Counters describing one evaluation run.

    ``facts_per_round[i]`` is the number of *new* facts derived in round
    ``i`` and ``delta_sizes[i]`` the size of the delta entering it (for
    the naive engine, which has no deltas, ``delta_sizes`` stays empty
    and ``facts_per_round`` holds the store growth per round).
    ``join_probes`` counts candidate bindings enumerated by the join
    machinery; ``index_hits``/``index_misses`` count positional-index
    probes against already-built vs freshly-built indexes.
    """

    engine: str = ""
    rounds: int = 0
    facts_per_round: list[int] = field(default_factory=list)
    delta_sizes: list[int] = field(default_factory=list)
    join_probes: int = 0
    index_hits: int = 0
    index_misses: int = 0
    facts_derived: int = 0
    horizon: Union[int, None] = None
    period: Union[tuple[int, int], None] = None
    phase_seconds: dict[str, float] = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    # -- recording -------------------------------------------------------

    def record_round(self, derived: int,
                     delta: Union[int, None] = None) -> None:
        """Account one fixpoint round: ``derived`` new facts, optionally
        the size of the delta that drove it."""
        self.rounds += 1
        self.facts_per_round.append(derived)
        if delta is not None:
            self.delta_sizes.append(delta)
        self.facts_derived += derived

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate wall time into the named phase."""
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    # -- combination -----------------------------------------------------

    def merge(self, other: "EvalStats") -> "EvalStats":
        """Fold ``other`` into this accumulator, in place.

        Counters add, round lists concatenate, the horizon takes the
        max, and the period/engine of ``other`` win when set (the later
        stage knows best).  Returns ``self`` for chaining.
        """
        if other.engine:
            self.engine = other.engine
        self.rounds += other.rounds
        self.facts_per_round.extend(other.facts_per_round)
        self.delta_sizes.extend(other.delta_sizes)
        self.join_probes += other.join_probes
        self.index_hits += other.index_hits
        self.index_misses += other.index_misses
        self.facts_derived += other.facts_derived
        if other.horizon is not None:
            self.horizon = (other.horizon if self.horizon is None
                            else max(self.horizon, other.horizon))
        if other.period is not None:
            self.period = other.period
        for name, seconds in other.phase_seconds.items():
            self.add_phase(name, seconds)
        self.extra.update(other.extra)
        return self

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """A plain-JSON dictionary (tuples become lists)."""
        return {
            "engine": self.engine,
            "rounds": self.rounds,
            "facts_per_round": list(self.facts_per_round),
            "delta_sizes": list(self.delta_sizes),
            "join_probes": self.join_probes,
            "index_hits": self.index_hits,
            "index_misses": self.index_misses,
            "facts_derived": self.facts_derived,
            "horizon": self.horizon,
            "period": list(self.period) if self.period is not None else None,
            "phase_seconds": dict(self.phase_seconds),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EvalStats":
        period = data.get("period")
        return cls(
            engine=data.get("engine", ""),
            rounds=data.get("rounds", 0),
            facts_per_round=list(data.get("facts_per_round", ())),
            delta_sizes=list(data.get("delta_sizes", ())),
            join_probes=data.get("join_probes", 0),
            index_hits=data.get("index_hits", 0),
            index_misses=data.get("index_misses", 0),
            facts_derived=data.get("facts_derived", 0),
            horizon=data.get("horizon"),
            period=tuple(period) if period is not None else None,
            phase_seconds=dict(data.get("phase_seconds", {})),
            extra=dict(data.get("extra", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EvalStats":
        return cls.from_dict(json.loads(text))

    # -- presentation ----------------------------------------------------

    @staticmethod
    def _render_series(values: list[int], limit: int = 16) -> str:
        shown = ", ".join(map(str, values[:limit]))
        if len(values) > limit:
            shown += f", … (+{len(values) - limit} more)"
        return shown

    def summary(self) -> str:
        """The human-readable block behind the CLI's ``--stats`` flag."""
        lines = [f"engine:            {self.engine or '(unknown)'}"]
        lines.append(f"rounds:            {self.rounds}")
        if self.facts_per_round:
            lines.append("facts per round:   "
                         + self._render_series(self.facts_per_round))
        if self.delta_sizes:
            lines.append("delta sizes:       "
                         + self._render_series(self.delta_sizes))
        lines.append(f"facts derived:     {self.facts_derived}")
        lines.append(f"join probes:       {self.join_probes}")
        lines.append(f"index hits/misses: {self.index_hits}/"
                     f"{self.index_misses}")
        if self.horizon is not None:
            lines.append(f"horizon:           {self.horizon}")
        if self.period is not None:
            b, p = self.period
            lines.append(f"period:            (b={b}, p={p})")
        for name, seconds in self.phase_seconds.items():
            lines.append(f"phase {name}: {seconds * 1e3:.2f} ms")
        for key, value in self.extra.items():
            lines.append(f"{key}: {value}")
        return "\n".join(lines)
