"""Observability for the evaluation engines.

Every engine — naive/semi-naive Datalog, the temporal operator behind
algorithm BT, the incremental model, top-down tabling, magic sets, and
the interval engine — accepts an optional :class:`EvalStats` accumulator
and an optional :class:`Tracer`.  Both default to ``None`` and cost
(near) nothing when absent, so the hot paths stay unchanged; when
supplied, they make *how* an answer was computed a first-class artifact:
rounds, per-round delta sizes, join probes, index behaviour, the horizon
used, the detected period, and wall time per phase.

The trace is a JSON-lines event stream with a pluggable sink
(:class:`JsonLinesSink` for files, :class:`ListSink` for tests); the
event schema is documented in ``docs/INTERNALS.md``.

Per-rule attribution lives one level down: a :class:`MetricsRegistry`
(also accepted by every engine, as ``metrics=None``) credits firings,
new facts, duplicates, join probes and wall time to individual rules,
and :mod:`repro.obs.profile` / :mod:`repro.obs.traceview` render the
``repro profile`` and ``repro traceview`` reports on top.

Request-level telemetry lives in :mod:`repro.obs.telemetry`: a
:class:`Telemetry` mints :class:`Span` trees (trace_id / span_id /
parent) across the serving path and exports them as schema-3 ``span``
events through the same Tracer sinks, and :class:`LatencyHistogram`
backs the ``/metrics`` endpoint and the ``/stats`` percentile block.

Derivation provenance lives in :mod:`repro.obs.provenance`: a
:class:`ProvenanceStore` (accepted by every bottom-up engine, as
``provenance=None``) records one support edge per derived fact — an
interned proof DAG — and powers ``repro why`` / ``repro whynot``, the
``explain: true`` flag on ``POST /query``, and the sampled schema-4
``derive`` trace events.
"""

from .collector import (CostCalibration, RuleWindowAggregator,
                        TraceStore, calibration_rows, render_trace_tree)
from .metrics import Histogram, MetricsRegistry, RuleMetrics
from .provenance import (FailedFiring, ProvenanceStore, WhyNotReport,
                         render_proof, why_not)
from .stats import EvalStats
from .telemetry import (DEFAULT_LATENCY_BUCKETS_MS, LatencyHistogram,
                        Span, SpanContext, Telemetry, new_span_id,
                        new_trace_id, valid_span_id, valid_trace_id)
from .timing import Stopwatch, phase_timer
from .trace import TRACE_SCHEMA, JsonLinesSink, ListSink, Tracer

__all__ = [
    "EvalStats",
    "Tracer", "JsonLinesSink", "ListSink", "TRACE_SCHEMA",
    "MetricsRegistry", "RuleMetrics", "Histogram",
    "Stopwatch", "phase_timer",
    "Telemetry", "Span", "SpanContext", "LatencyHistogram",
    "new_trace_id", "new_span_id", "valid_trace_id", "valid_span_id",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "ProvenanceStore", "FailedFiring", "WhyNotReport",
    "render_proof", "why_not",
    "TraceStore", "RuleWindowAggregator", "CostCalibration",
    "calibration_rows", "render_trace_tree",
]
