"""Per-rule cost attribution: the metrics registry behind ``repro profile``.

:class:`EvalStats` sees an evaluation globally — rounds, total deltas,
total join probes.  Theorem 4.1, however, bounds the work of algorithm
BT *rule by rule* over the window ``[0..m]``, and in practice a single
hot rule usually dominates a slow run.  A :class:`MetricsRegistry`
attributes the work to individual rules: firings, new facts, duplicate
(already-derived) derivations, join probes, wall time, and a compact
power-of-two histogram of new facts per round.

The discipline mirrors :class:`~repro.obs.trace.Tracer`: every engine
takes ``metrics=None`` and the disabled path costs nothing — no record
objects, no histogram buckets, no clock reads; the hot loops guard every
touch with ``is not None`` checks hoisted out of the inner loops (the
per-rule handle is resolved once per rule, not once per derivation).

Rule identity is the rule *object* (two textually identical rules at
different source lines stay distinct), and each record carries the
rule's :class:`~repro.lang.spans.Span` line so reports can cite
``file:line``.  Records serialize to the plain-JSON list that engines
publish under ``EvalStats.extra["rules"]``.
"""

from __future__ import annotations

from typing import Iterator, Union

#: Bucket count for :class:`Histogram`: bucket ``i`` holds values whose
#: bit length is ``i`` (0, 1, 2-3, 4-7, ...); the last bucket is open.
_HISTOGRAM_BUCKETS = 18


class Histogram:
    """A compact power-of-two histogram of non-negative integers.

    Bucket 0 counts zeros, bucket 1 counts ones, bucket ``i`` counts
    values in ``[2**(i-1), 2**i - 1]``; the final bucket is unbounded.
    Fixed memory regardless of the value range, which is what lets every
    rule afford one.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts = [0] * _HISTOGRAM_BUCKETS

    def record(self, value: int) -> None:
        self.counts[min(value.bit_length(), _HISTOGRAM_BUCKETS - 1)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    @staticmethod
    def bucket_label(index: int) -> str:
        if index == 0:
            return "0"
        if index == 1:
            return "1"
        lo = 1 << (index - 1)
        if index == _HISTOGRAM_BUCKETS - 1:
            return f"{lo}+"
        return f"{lo}-{(1 << index) - 1}"

    def to_dict(self) -> dict:
        """Sparse mapping of bucket label to count (zero buckets drop)."""
        return {self.bucket_label(i): count
                for i, count in enumerate(self.counts) if count}

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        histogram = cls()
        labels = {cls.bucket_label(i): i
                  for i in range(_HISTOGRAM_BUCKETS)}
        for label, count in data.items():
            histogram.counts[labels[label]] = count
        return histogram


class RuleMetrics:
    """Mutable per-rule counters; engines poke the public attributes
    directly from their firing loops.

    * ``firings`` — derivation attempts: body bindings that survived the
      negation check (head instantiations attempted);
    * ``new_facts`` — derivations that actually grew the model (exactly
      the per-rule share of :attr:`EvalStats.facts_derived`);
    * ``duplicates`` — derivations of facts already present (the
      re-derivation overhead semi-naive evaluation tries to avoid);
    * ``probes`` — join candidate bindings enumerated for this rule;
    * ``seconds`` — wall time spent firing this rule (``perf_counter``);
    * ``per_round`` — histogram of new facts per fixpoint round.
    """

    __slots__ = ("id", "label", "line", "firings", "new_facts",
                 "duplicates", "probes", "seconds", "per_round",
                 "_round_base")

    def __init__(self, rule_id: str, label: str,
                 line: Union[int, None]) -> None:
        self.id = rule_id
        self.label = label
        self.line = line
        self.firings = 0
        self.new_facts = 0
        self.duplicates = 0
        self.probes = 0
        self.seconds = 0.0
        self.per_round = Histogram()
        self._round_base = 0

    # -- round bookkeeping ----------------------------------------------

    def begin_round(self) -> None:
        self._round_base = self.new_facts

    def end_round(self) -> None:
        self.per_round.record(self.new_facts - self._round_base)

    # -- derived quantities ---------------------------------------------

    @property
    def duplicate_ratio(self) -> float:
        """Duplicate derivations as a fraction of all derivations."""
        derivations = self.new_facts + self.duplicates
        return self.duplicates / derivations if derivations else 0.0

    @property
    def probes_per_fact(self) -> float:
        """Join probes paid per new fact (the rule's selectivity cost)."""
        return self.probes / self.new_facts if self.new_facts else 0.0

    def span_label(self, path: Union[str, None] = None) -> str:
        """``file:line`` (or just ``line``) for reports; ``-`` unknown."""
        if self.line is None:
            return "-"
        return f"{path}:{self.line}" if path else f"line {self.line}"

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "label": self.label,
            "line": self.line,
            "firings": self.firings,
            "new_facts": self.new_facts,
            "duplicates": self.duplicates,
            "probes": self.probes,
            "seconds": round(self.seconds, 9),
            "per_round": self.per_round.to_dict(),
        }


class MetricsRegistry:
    """Owns the per-rule records of one (or several merged) runs.

    Engines call :meth:`rule` once per rule outside their inner loops
    and mutate the returned :class:`RuleMetrics` directly.  The registry
    accumulates across engine invocations (a stratified run's strata, an
    incremental model's insertions), so a snapshot taken at any exit
    point is complete up to that moment.
    """

    def __init__(self) -> None:
        # id(rule) -> record: structurally equal rules at different
        # source lines must not share a record, and Rule equality
        # ignores spans — so key by object identity and pin the rule
        # alive (id() reuse after garbage collection would mis-attribute).
        self._records: dict[int, RuleMetrics] = {}
        self._rules: list = []

    def rule(self, rule) -> RuleMetrics:
        """The record for ``rule``, created on first sight."""
        record = self._records.get(id(rule))
        if record is None:
            span = rule.span if rule.span is not None else rule.head.span
            record = RuleMetrics(
                rule_id=f"r{len(self._records) + 1}",
                label=str(rule),
                line=span.line if span is not None else None,
            )
            self._records[id(rule)] = record
            self._rules.append(rule)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RuleMetrics]:
        """Records in registration order."""
        return iter(self._records.values())

    def records(self) -> list[RuleMetrics]:
        return list(self._records.values())

    def items(self) -> list:
        """``(rule, record)`` pairs in registration order.

        The cost-calibration path needs the rule *objects* back (to
        re-derive each rule's planned ``est_rows``), not just the
        serialized records; ``_rules`` and ``_records`` insert in
        lockstep, so a positional zip is exact.
        """
        return list(zip(self._rules, self._records.values()))

    def hot(self, key: str = "seconds") -> list[RuleMetrics]:
        """Records sorted by the named attribute, hottest first."""
        return sorted(self._records.values(),
                      key=lambda r: getattr(r, key), reverse=True)

    # -- aggregates ------------------------------------------------------

    @property
    def total_new_facts(self) -> int:
        return sum(r.new_facts for r in self._records.values())

    @property
    def total_duplicates(self) -> int:
        return sum(r.duplicates for r in self._records.values())

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self._records.values())

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> list[dict]:
        """Plain-JSON list of per-rule records, registration order."""
        return [record.to_dict() for record in self._records.values()]

    def export_into(self, stats) -> None:
        """Publish the current snapshot under ``stats.extra["rules"]``.

        Engines call this at their exit points; because the registry is
        cumulative, the last exporter wins with the full picture.
        """
        stats.extra["rules"] = self.to_dict()
