"""Hot-rule reports: run an engine under a :class:`MetricsRegistry`.

The profiler behind ``repro profile``.  Theorem 4.1 bounds algorithm
BT's work *per rule* over the window ``[0..m]``, and in practice one
hot rule usually dominates a slow evaluation; this module runs the
requested engine with a fresh registry attached and renders the
per-rule attribution three ways:

* a text table sorted by self-time (rule ``file:line`` span, wall time,
  firings, new facts, duplicate ratio, join probes per fact);
* JSON carrying the same records plus the full
  :class:`~repro.obs.stats.EvalStats` block;
* folded stacks (``frame;frame value``) consumable by ``flamegraph.pl``
  and speedscope, one stack per rule with the self-time in
  microseconds.

Engines: ``bt`` (default) and ``compiled`` (the BT driver on the
compiled window engine), ``verbatim`` (Figure 1 word-for-word),
``interval`` (interval algebra) profile the whole model; ``magic`` and
``topdown`` are goal-directed and need a ground query atom.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Union

from ..engines import PROFILE_ENGINES
from .metrics import MetricsRegistry, RuleMetrics
from .stats import EvalStats


@dataclass
class ProfileReport:
    """One profiled run: the registry, the stats, and how it was made."""

    program: str
    engine: str
    registry: MetricsRegistry
    stats: EvalStats
    #: Goal verdict for the goal-directed engines; None otherwise.
    answer: Union[bool, None] = None
    #: Chosen join plans with their cost rationale (compiled engine).
    plans: "list[dict]" = None
    #: Cost-calibration rows — measured bindings vs. the static plan's
    #: ``est_rows`` prediction, per rule (compiled engine).
    calibration: "list[dict]" = None

    @property
    def records(self) -> list[RuleMetrics]:
        """Per-rule records, hottest (most self-time) first."""
        return self.registry.hot("seconds")


def _plan_records(rules) -> "list[dict]":
    """The compiled plans of ``rules``, with the cost model's rationale
    per probe step — what ``repro profile --format json`` exports."""
    from ..datalog.compiled import compile_program

    program = compile_program(rules)
    records = []
    for rule, per_rule in zip(program.rules, program.plans):
        for plan in per_rule:
            records.append({
                "rule": str(rule),
                "lead": plan.lead,
                "order": list(plan.order),
                "est_cost": plan.est_cost,
                "describe": plan.describe(),
                "steps": [
                    {"atom": step.atom_index, "pred": step.pred,
                     "mode": step.mode, "time": step.time,
                     "bound_vars": step.bound_vars,
                     "est_matches": step.est_matches,
                     "est_rows": step.est_rows}
                    for step in plan.steps
                ],
            })
    return records


def profile_tdd(tdd, program: str, engine: str = "bt",
                query=None, tracer=None) -> ProfileReport:
    """Evaluate ``tdd`` under a fresh registry with the named engine.

    ``query`` (a ground :class:`~repro.lang.atoms.Atom`) is required by
    the goal-directed engines and ignored by the others.  Raises
    :class:`~repro.lang.errors.EvaluationError` on a missing query or
    an engine/fragment mismatch.
    """
    from ..lang.errors import EvaluationError

    if engine not in PROFILE_ENGINES:
        raise EvaluationError(
            f"unknown profile engine {engine!r}; "
            f"choose from {', '.join(PROFILE_ENGINES)}"
        )
    from .provenance import ProvenanceStore

    registry = MetricsRegistry()
    stats = EvalStats()
    answer: Union[bool, None] = None
    if engine == "bt":
        # The full-model engines also record provenance, so the profile
        # carries the proof-DAG shape (supports histogram, depth,
        # in-degree) next to the per-rule time.
        tdd.evaluate(stats=stats, tracer=tracer, metrics=registry,
                     provenance=ProvenanceStore())
    elif engine == "compiled":
        # The same BT driver, with the compiled window engine (interned
        # ints + indexed join plans) doing each window's fixpoint.
        tdd.evaluate(stats=stats, tracer=tracer, metrics=registry,
                     provenance=ProvenanceStore(), engine="compiled")
    elif engine in ("verbatim", "interval"):
        # These take an explicit window; borrow the one BT settles on
        # (computed uninstrumented, so the profile is engine-pure).
        horizon = tdd.evaluate().horizon
        if engine == "verbatim":
            from ..temporal.bt import bt_verbatim
            bt_verbatim(tdd.rules, tdd.database, horizon, stats=stats,
                        tracer=tracer, metrics=registry)
        else:
            from ..temporal.interval_engine import interval_fixpoint
            interval_fixpoint(tdd.rules, tdd.database, horizon,
                              stats=stats, tracer=tracer,
                              metrics=registry)
    else:
        if query is None:
            raise EvaluationError(
                f"engine {engine!r} is goal-directed; pass --query "
                "with a ground atom (e.g. --query 'even(4)')"
            )
        if engine == "magic":
            from ..core.magic import magic_ask
            answer = magic_ask(tdd.rules, tdd.database, query,
                               stats=stats, tracer=tracer,
                               metrics=registry)
        else:
            from ..temporal.topdown import topdown_ask
            answer = topdown_ask(tdd.rules, tdd.database, query,
                                 stats=stats, tracer=tracer,
                                 metrics=registry)
    plans = (_plan_records(tdd.rules) if engine == "compiled"
             else None)
    calibration = (_calibration_records(registry)
                   if engine == "compiled" else None)
    return ProfileReport(program=program, engine=engine,
                         registry=registry, stats=stats, answer=answer,
                         plans=plans, calibration=calibration)


def _calibration_records(registry: MetricsRegistry) -> "list[dict]":
    """Per-rule calibration of the cost model against the run: the
    plan's predicted bindings (``est_rows``) next to what the registry
    actually measured, worst-calibrated rule first."""
    from .collector import CostCalibration, calibration_rows

    calibration = CostCalibration()
    calibration.observe(calibration_rows(registry))
    return calibration.rows()


# -- renderers -----------------------------------------------------------


def _pct(ratio: float) -> str:
    return f"{100.0 * ratio:.1f}%"


def render_table(report: ProfileReport) -> str:
    """The human hot-rule table, hottest rule first."""
    stats = report.stats
    lines = [f"profile: {report.program}  engine={report.engine}"]
    if report.answer is not None:
        lines[0] += f"  answer={'yes' if report.answer else 'no'}"
    header = ("rule", "location", "time(ms)", "firings", "new",
              "dup%", "probes/fact")
    rows = [header]
    for r in report.records:
        rows.append((
            r.id,
            r.span_label(report.program),
            f"{r.seconds * 1e3:.2f}",
            str(r.firings),
            str(r.new_facts),
            _pct(r.duplicate_ratio),
            f"{r.probes_per_fact:.1f}",
        ))
    total = report.registry
    rows.append((
        "total", "",
        f"{total.total_seconds * 1e3:.2f}",
        str(sum(r.firings for r in total)),
        str(total.total_new_facts),
        _pct(total.total_duplicates
             / max(total.total_new_facts + total.total_duplicates, 1)),
        "",
    ))
    widths = [max(len(row[i]) for row in rows)
              for i in range(len(header))]
    for index, row in enumerate(rows):
        cells = [row[0].ljust(widths[0]), row[1].ljust(widths[1])]
        cells += [cell.rjust(widths[i + 2])
                  for i, cell in enumerate(row[2:])]
        lines.append("  ".join(cells).rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    for record in report.records:
        lines.append(f"{record.id}: {record.label}")
    summary = (f"facts derived: {stats.facts_derived}   "
               f"rounds: {stats.rounds}")
    if stats.horizon is not None:
        summary += f"   horizon: {stats.horizon}"
    if stats.period is not None:
        summary += f"   period: (b={stats.period[0]}, p={stats.period[1]})"
    lines.append(summary)
    provenance = stats.extra.get("provenance")
    if provenance:
        supports = ", ".join(
            f"{k}:{v}" for k, v in sorted(
                provenance["supports"].items(),
                key=lambda kv: str(kv[0])))
        lines.append(
            f"provenance: {provenance['derived']} derived / "
            f"{provenance['facts']} facts   "
            f"depth: {provenance['depth']}   "
            f"max in-degree: {provenance['max_in_degree']}   "
            f"supports: {{{supports or '-'}}}")
    if report.plans:
        lines.append("join plans (cost-ordered):")
        for plan in report.plans:
            lines.append(f"  [{plan['est_cost']:.1f}] "
                         f"{plan['describe']}")
    if report.calibration:
        lines.append("cost calibration (measured/est rows, "
                     "worst first):")
        for row in report.calibration:
            lines.append(
                f"  [{row['ratio']:.2f}x] line {row['line']}: "
                f"{row['measured_rows']:.0f} measured vs "
                f"{row['est_rows']:.1f} predicted  {row['label']}")
    return "\n".join(lines)


def render_json(report: ProfileReport) -> str:
    """Machine output: the records plus the full stats block."""
    payload = {
        "program": report.program,
        "engine": report.engine,
        "answer": report.answer,
        "rules": report.registry.to_dict(),
        "stats": report.stats.to_dict(),
    }
    if report.plans is not None:
        payload["plans"] = report.plans
    if report.calibration is not None:
        payload["calibration"] = report.calibration
    return json.dumps(payload, indent=2, sort_keys=True)


def render_folded(report: ProfileReport) -> str:
    """Folded stacks for flamegraph.pl / speedscope.

    One line per rule: ``engine;file:line label microseconds``.  The
    collapser splits frames on ``;`` and the sample count on the *last*
    space, so spaces inside the rule label are fine; semicolons are
    replaced to keep the frame boundary unambiguous.
    """
    lines = []
    for r in report.registry:
        label = r.label.replace(";", ",")
        frame = f"{report.engine};{r.span_label(report.program)} {label}"
        lines.append(f"{frame} {int(round(r.seconds * 1e6))}")
    return "\n".join(lines)
