"""Trace analytics: summarize a JSON-lines trace into a timeline.

``repro traceview TRACE.jsonl`` answers the questions a trace file is
usually opened for — how did the evaluation converge? — without the
reader paging through per-fact events: a round-by-round table (delta
sizes, derived counts, probes, store growth), the phase times, and the
round after which the period was detected.  Traces written by the
serving path additionally carry schema-3 ``span`` and schema-4
``derive`` events; those are counted into a telemetry footer rather
than rendered per-event.

Parsing is strict about *shape* but liberal about *content*: unknown
event types and payload fields are ignored (the schema is append-only),
while a line that is not a JSON object raises a located
:class:`~repro.lang.errors.ParseError` carrying the 1-based line and
column — the CLI renders it with the standard ``file:line:col`` caret,
so a truncated trace (killed run, partial copy) fails cleanly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Union

from ..lang.errors import ParseError


def parse_trace(text: str) -> list[dict]:
    """Parse JSON-lines trace text into event dicts.

    Raises :class:`ParseError` (with 1-based line/column) for a line
    that is not valid JSON or not a JSON object — including the
    truncated final line of an interrupted run.
    """
    events: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ParseError(
                f"corrupt trace line: {exc.msg}",
                line=lineno, column=exc.colno,
            ) from exc
        if not isinstance(event, dict):
            raise ParseError("trace line is not a JSON object",
                             line=lineno, column=1)
        events.append(event)
    return events


@dataclass
class RoundRow:
    """One fixpoint round as the trace recorded it."""

    number: int
    delta: Union[int, None]
    derived: Union[int, None]
    probes: Union[int, None]
    store: Union[int, None]


@dataclass
class TraceSummary:
    """Everything ``traceview`` prints, in structured form."""

    events: int = 0
    header: Union[dict, None] = None     # run_start payload (schema 2)
    engine: str = ""
    horizon: Union[int, None] = None
    initial_facts: Union[int, None] = None
    rounds: list[RoundRow] = field(default_factory=list)
    phases: dict[str, float] = field(default_factory=dict)
    period: Union[dict, None] = None
    period_round: Union[int, None] = None
    final_facts: Union[int, None] = None
    fact_events: int = 0
    subgoals: int = 0
    inserts: int = 0
    deletes: int = 0
    spans: int = 0          # schema-3 telemetry span events
    derives: int = 0        # schema-4 sampled provenance events


def summarize(events: list[dict]) -> TraceSummary:
    """Fold a trace event stream into a :class:`TraceSummary`."""
    summary = TraceSummary(events=len(events))
    for event in events:
        kind = event.get("event")
        if kind == "run_start" and summary.header is None:
            summary.header = {k: v for k, v in event.items()
                              if k not in ("event", "ts")}
            summary.engine = summary.engine or \
                str(event.get("engine", ""))
        elif kind == "eval_start":
            summary.engine = summary.engine or \
                str(event.get("engine", ""))
            horizon = event.get("horizon")
            if isinstance(horizon, int):
                summary.horizon = (horizon if summary.horizon is None
                                   else max(summary.horizon, horizon))
            if summary.initial_facts is None and \
                    isinstance(event.get("initial_facts"), int):
                summary.initial_facts = event["initial_facts"]
        elif kind == "round":
            summary.rounds.append(RoundRow(
                number=event.get("round", len(summary.rounds)),
                delta=event.get("delta"),
                derived=(event["derived"] if "derived" in event
                         else event.get("merges")),
                probes=event.get("probes"),
                store=event.get("store"),
            ))
        elif kind == "phase":
            name = str(event.get("name", "?"))
            seconds = event.get("seconds", 0.0)
            if isinstance(seconds, (int, float)):
                summary.phases[name] = \
                    summary.phases.get(name, 0.0) + float(seconds)
        elif kind == "period":
            summary.period = {k: v for k, v in event.items()
                              if k not in ("event", "ts")}
            summary.period_round = len(summary.rounds)
        elif kind == "eval_end":
            if isinstance(event.get("facts"), int):
                summary.final_facts = event["facts"]
        elif kind == "fact":
            summary.fact_events += 1
        elif kind == "subgoal":
            summary.subgoals += 1
        elif kind == "insert":
            summary.inserts += 1
        elif kind == "delete":
            summary.deletes += 1
        elif kind == "span":
            summary.spans += 1
        elif kind == "derive":
            summary.derives += 1
    return summary


def render_summary(summary: TraceSummary, path: str = "") -> str:
    """The human traceview block."""
    lines = []
    title = f"trace: {path}" if path else "trace:"
    lines.append(f"{title}  ({summary.events} events)")
    if summary.header is not None:
        head = summary.header
        parts = [f"engine: {head.get('engine', summary.engine or '?')}"]
        if "program" in head:
            parts.append(f"program: {head['program']}")
        if "version" in head:
            parts.append(f"version: {head['version']}")
        if "schema" in head:
            parts.append(f"schema: {head['schema']}")
        lines.append("  ".join(parts))
    elif summary.engine:
        lines.append(f"engine: {summary.engine}  (no run_start header)")
    info = []
    if summary.horizon is not None:
        info.append(f"horizon: {summary.horizon}")
    if summary.initial_facts is not None:
        info.append(f"initial facts: {summary.initial_facts}")
    if summary.final_facts is not None:
        info.append(f"final facts: {summary.final_facts}")
    if info:
        lines.append("  ".join(info))

    if summary.rounds:
        lines.append(f"rounds: {len(summary.rounds)}")
        shown = summary.rounds
        elided = 0
        if len(shown) > 28:
            elided = len(shown) - 24
            shown = shown[:16] + shown[-8:]
        header = ("round", "delta", "derived", "probes", "store")
        rows = [header]
        for row in shown:
            rows.append(tuple(
                "-" if value is None else str(value)
                for value in (row.number, row.delta, row.derived,
                              row.probes, row.store)))
        widths = [max(len(r[i]) for r in rows) for i in range(5)]
        for index, row in enumerate(rows):
            if elided and index == 17:
                lines.append(f"  ... {elided} rounds elided ...")
            lines.append("  " + "  ".join(
                cell.rjust(widths[i]) for i, cell in enumerate(row)))
        curve = " -> ".join(
            "-" if row.derived is None else str(row.derived)
            for row in shown[:16])
        if elided:
            curve += " ... -> " + " -> ".join(
                "-" if row.derived is None else str(row.derived)
                for row in shown[-3:])
        lines.append(f"delta curve (derived/round): {curve}")
    else:
        lines.append("rounds: 0 (no round events in the trace)")

    if summary.phases:
        rendered = "  ".join(f"{name}={seconds:.4f}s"
                             for name, seconds
                             in sorted(summary.phases.items()))
        lines.append(f"phases: {rendered}")
    if summary.period is not None:
        p = summary.period
        status = "certified" if p.get("certified") else "verified"
        where = (f" — detected after round {summary.period_round}"
                 if summary.period_round else "")
        lines.append(f"period: (b={p.get('b')}, p={p.get('p')}) "
                     f"[{status}]{where}")
    extras = []
    if summary.fact_events:
        extras.append(f"fact events: {summary.fact_events}")
    if summary.subgoals:
        extras.append(f"subgoals: {summary.subgoals}")
    if summary.inserts:
        extras.append(f"inserts: {summary.inserts}")
    if summary.deletes:
        extras.append(f"deletes: {summary.deletes}")
    if extras:
        lines.append("  ".join(extras))
    if summary.spans or summary.derives:
        lines.append(f"telemetry: {summary.spans} spans, "
                     f"{summary.derives} derive events")
    return "\n".join(lines)
