"""Unit tests for repro.lang.terms."""

import pytest

from repro.lang.terms import Const, TimeTerm, Var, ground_time, time_var


class TestTimeTerm:
    def test_ground_term_has_no_variable(self):
        t = ground_time(5)
        assert t.is_ground
        assert t.var is None
        assert t.depth == 5

    def test_variable_term(self):
        t = time_var("T", 3)
        assert not t.is_ground
        assert t.var == "T"
        assert t.offset == 3

    def test_zero_is_the_temporal_constant(self):
        assert ground_time(0).depth == 0
        assert str(ground_time(0)) == "0"

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            TimeTerm("T", -1)
        with pytest.raises(ValueError):
            TimeTerm(None, -2)

    def test_shift_adds_to_offset(self):
        assert time_var("T", 1).shift(2) == time_var("T", 3)
        assert ground_time(4).shift(1) == ground_time(5)

    def test_instantiate_variable(self):
        assert time_var("T", 2).instantiate(10) == 12

    def test_instantiate_ground_ignores_binding(self):
        assert ground_time(7).instantiate(100) == 7

    def test_str_forms(self):
        assert str(time_var("T", 0)) == "T"
        assert str(time_var("T", 4)) == "T+4"
        assert str(ground_time(9)) == "9"

    def test_equality_and_hash(self):
        assert time_var("T", 1) == TimeTerm("T", 1)
        assert hash(time_var("T", 1)) == hash(TimeTerm("T", 1))
        assert time_var("T", 1) != time_var("S", 1)
        assert time_var("T", 1) != time_var("T", 2)


class TestDataTerms:
    def test_const_str_and_int_values(self):
        assert Const("a").value == "a"
        assert Const(3).value == 3
        assert str(Const("a")) == "a"
        assert str(Const(3)) == "3"

    def test_var_name(self):
        assert Var("X").name == "X"
        assert str(Var("X")) == "X"

    def test_const_var_distinct(self):
        assert Const("X") != Var("X")

    def test_const_equality(self):
        assert Const("a") == Const("a")
        assert Const("a") != Const("b")
        # ints and their string forms are distinct constants
        assert Const(1) != Const("1")
