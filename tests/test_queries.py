"""Tests for the first-order temporal query language (Prop 3.1 etc.)."""

import pytest

from repro.core import (AtomQ, DataEq, Exists, Not, TimeEq,
                        answers, compute_specification, evaluate,
                        evaluate_on_model, free_variables, parse_query)
from repro.lang import parse_program
from repro.lang.atoms import Atom
from repro.lang.errors import ParseError, SortError
from repro.lang.terms import Const, TimeTerm, Var
from repro.temporal import TemporalDatabase, bt_evaluate


@pytest.fixture()
def travel_spec(travel_program, travel_db):
    return compute_specification(travel_program.rules, travel_db)


@pytest.fixture()
def even_spec(even_program, even_db):
    return compute_specification(even_program.rules, even_db)


@pytest.fixture()
def path_spec(path_program, path_db):
    return compute_specification(path_program.rules, path_db)


TP = frozenset({"even", "plane", "offseason", "winter", "holiday",
                "path", "null"})


class TestParser:
    def test_atom(self):
        q = parse_query("plane(T, hunter)", TP)
        assert isinstance(q, AtomQ)
        assert q.atom.time == TimeTerm("T", 0)
        assert q.atom.args == (Const("hunter"),)

    def test_nontemporal_atom(self):
        q = parse_query("resort(X)", TP)
        assert q.atom.time is None
        assert q.atom.args == (Var("X"),)

    def test_quantifier_chain(self):
        q = parse_query("exists T, X: plane(T, X)", TP)
        assert isinstance(q, Exists)
        assert isinstance(q.inner, Exists)

    def test_connective_precedence(self):
        q = parse_query("even(0) or even(1) and even(2)", TP)
        # 'and' binds tighter than 'or'.
        assert q.__class__.__name__ == "Or"

    def test_not_binds_tightest(self):
        q = parse_query("not even(1) and even(0)", TP)
        assert q.__class__.__name__ == "And"
        assert isinstance(q.parts[0], Not)

    def test_parentheses(self):
        q = parse_query("not (even(1) and even(0))", TP)
        assert isinstance(q, Not)

    def test_implies(self):
        q = parse_query("even(0) implies even(2)", TP)
        assert q.__class__.__name__ == "Implies"

    def test_time_equality(self):
        q = parse_query("T+1 = 3", TP)
        assert isinstance(q, TimeEq)

    def test_data_equality(self):
        q = parse_query("X = hunter", TP)
        assert isinstance(q, DataEq)

    def test_offset_in_atom(self):
        q = parse_query("even(T+2)", TP)
        assert q.atom.time == TimeTerm("T", 2)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("even(0) even(1)", TP)

    def test_missing_colon_rejected(self):
        with pytest.raises(ParseError):
            parse_query("exists T plane(T, hunter)", TP)


class TestFreeVariables:
    def test_open_atom(self):
        q = parse_query("plane(T, X)", TP)
        assert free_variables(q) == {"T": "time", "X": "data"}

    def test_quantified_are_bound(self):
        q = parse_query("exists T: plane(T, X)", TP)
        assert free_variables(q) == {"X": "data"}

    def test_sort_clash_detected(self):
        q = parse_query("plane(T, X) and resort(T)", TP)
        with pytest.raises(SortError):
            free_variables(q)


class TestClosedEvaluation:
    def test_ground_atoms(self, even_spec):
        assert evaluate(parse_query("even(4)", TP), even_spec)
        assert not evaluate(parse_query("even(3)", TP), even_spec)
        assert evaluate(parse_query("even(123456)", TP), even_spec) is True

    def test_negation_cwa(self, even_spec):
        assert evaluate(parse_query("not even(3)", TP), even_spec)
        assert not evaluate(parse_query("not even(2)", TP), even_spec)

    def test_conjunction_disjunction(self, even_spec):
        assert evaluate(parse_query("even(0) and even(2)", TP), even_spec)
        assert not evaluate(parse_query("even(0) and even(1)", TP),
                            even_spec)
        assert evaluate(parse_query("even(1) or even(2)", TP), even_spec)

    def test_implication(self, even_spec):
        assert evaluate(parse_query("even(1) implies even(3)", TP),
                        even_spec)
        assert not evaluate(parse_query("even(0) implies even(3)", TP),
                            even_spec)

    def test_existential_time(self, travel_spec):
        assert evaluate(parse_query("exists T: plane(T, hunter)", TP),
                        travel_spec)
        assert not evaluate(
            parse_query("exists T: plane(T, nowhere)", TP), travel_spec)

    def test_universal_time(self, even_spec):
        assert not evaluate(parse_query("forall T: even(T)", TP),
                            even_spec)
        assert evaluate(
            parse_query("forall T: even(T) or not even(T)", TP),
            even_spec)

    def test_mixed_quantifiers(self, path_spec):
        # Every node reaches itself at some length bound.
        assert evaluate(
            parse_query("forall X: exists K: path(K, X, X)", TP),
            path_spec)
        # Not every pair is connected.
        assert not evaluate(
            parse_query("forall X, Y: exists K: path(K, X, Y)", TP),
            path_spec)

    def test_unbound_variable_rejected(self, even_spec):
        with pytest.raises(SortError):
            evaluate(parse_query("even(T)", TP), even_spec)

    def test_explicit_binding(self, even_spec):
        q = parse_query("even(T)", TP)
        assert evaluate(q, even_spec, binding={"T": 0})
        assert not evaluate(q, even_spec, binding={"T": 1})


class TestInvariance:
    """Proposition 3.1: spec evaluation == model evaluation."""

    QUERIES = [
        "even(6)",
        "not even(7)",
        "exists T: even(T)",
        "forall T: even(T) or not even(T)",
        "exists T: even(T) and even(T+2)",
        "exists T: not even(T)",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_even_queries_invariant(self, text, even_program, even_db,
                                    even_spec):
        result = bt_evaluate(even_program.rules, even_db, window=40)
        q = parse_query(text, TP)
        assert evaluate(q, even_spec) == evaluate_on_model(q, result)

    TRAVEL_QUERIES = [
        "plane(12, hunter)",
        "plane(13, hunter)",
        "exists T: plane(T, hunter) and offseason(T)",
        "exists X: resort(X) and exists T: plane(T, X)",
        "forall X: resort(X) implies exists T: plane(T, X)",
    ]

    @pytest.mark.parametrize("text", TRAVEL_QUERIES)
    def test_travel_queries_invariant(self, text, travel_program,
                                      travel_db, travel_spec):
        result = bt_evaluate(travel_program.rules, travel_db)
        q = parse_query(text, TP)
        assert evaluate(q, travel_spec) == evaluate_on_model(q, result)


class TestSection8Counterexample:
    """Temporal equality is NOT invariant (Section 8 of the paper)."""

    def test_equality_unsound_on_spec(self):
        program = parse_program("p(T+1) :- p(T).\np(0).")
        db = TemporalDatabase(program.facts)
        spec = compute_specification(program.rules, db)
        # Period (0, 1): representative of both 0 and 1 is 0.
        assert spec.representative_of(0) == spec.representative_of(1) == 0
        q = TimeEq(TimeTerm(None, 0), TimeTerm(None, 1))
        # On the spec the two terms collapse: the paper's unsoundness.
        assert evaluate(q, spec) is True
        # Direct evaluation knows better.
        result = bt_evaluate(program.rules, db)
        assert evaluate_on_model(q, result) is False


class TestOpenQueries:
    def test_even_answers(self, even_spec):
        ans = answers(parse_query("even(X)", TP), even_spec)
        assert len(ans) == 1
        assert ans.is_infinite
        expanded = sorted(s["X"] for s in ans.expand(10))
        assert expanded == [0, 2, 4, 6, 8, 10]

    def test_travel_days(self, travel_spec):
        ans = answers(parse_query("plane(T, hunter)", TP), travel_spec)
        assert ans.is_infinite
        days = sorted(s["T"] for s in ans.expand(20))
        assert days[0] == 12

    def test_data_variable_answers(self, path_spec):
        ans = answers(
            parse_query("exists K: path(K, a, Y)", TP), path_spec)
        reached = sorted(s["Y"] for s in ans)
        assert reached == ["a", "b", "c", "d"]

    def test_negative_open_query(self, path_spec):
        ans = answers(
            parse_query("node(Y) and not (exists K: path(K, Y, d))", TP),
            path_spec)
        assert sorted(s["Y"] for s in ans) == []

    def test_empty_answer_set(self, even_spec):
        ans = answers(parse_query("even(X) and not even(X)", TP),
                      even_spec)
        assert len(ans) == 0
        assert not ans


class TestJoinStrategy:
    """The conjunctive join fast path must match enumeration."""

    CONJUNCTIVE = [
        "plane(T, X)",
        "plane(T, hunter) and offseason(T)",
        "plane(T, X) and resort(X)",
        "plane(T, X) and not winter(T)",
        "exists T: plane(T, X) and holiday(T)",
    ]

    @pytest.mark.parametrize("text", CONJUNCTIVE)
    def test_matches_enumeration(self, text, travel_spec):
        q = parse_query(text, TP)
        joined = answers(q, travel_spec, method="join")
        enumerated = answers(q, travel_spec, method="enumerate")
        assert joined.substitutions == enumerated.substitutions
        assert joined.variables == enumerated.variables

    def test_auto_uses_join_for_conjunctions(self, travel_spec):
        q = parse_query("plane(T, hunter) and offseason(T)", TP)
        auto = answers(q, travel_spec)
        explicit = answers(q, travel_spec, method="join")
        assert auto.substitutions == explicit.substitutions

    def test_join_rejects_disjunction(self, travel_spec):
        q = parse_query("plane(T, hunter) or offseason(T)", TP)
        with pytest.raises(SortError):
            answers(q, travel_spec, method="join")

    def test_join_rejects_offset_variables(self, travel_spec):
        q = parse_query("plane(T+1, hunter)", TP)
        with pytest.raises(SortError):
            answers(q, travel_spec, method="join")

    def test_join_rejects_unbound_negative(self, travel_spec):
        q = parse_query("resort(X) and not plane(T, X)", TP)
        # T appears only under negation: join unusable, fallback works.
        with pytest.raises(SortError):
            answers(q, travel_spec, method="join")
        fallback = answers(q, travel_spec)  # auto falls back
        assert fallback is not None

    def test_ground_times_canonicalised(self, even_spec):
        q = parse_query("even(X) and even(4)", TP)
        joined = answers(q, even_spec, method="join")
        assert sorted(s["X"] for s in joined) == [0]

    def test_path_join_three_atoms(self, path_spec):
        q = parse_query("path(K, a, Y) and node(Y) and edge(Y, Z)", TP)
        joined = answers(q, path_spec, method="join")
        enumerated = answers(q, path_spec, method="enumerate")
        assert joined.substitutions == enumerated.substitutions
