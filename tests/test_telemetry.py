"""Unit tests for :mod:`repro.obs.telemetry`.

Span identity (trace/span/parent ids), tree structure, schema-3
export through the existing Tracer sinks, the fixed-bucket latency
histogram (count/sum invariants, interpolated quantiles, Prometheus
rendering), and the service-level Prometheus exposition.
"""

from __future__ import annotations

import re

import pytest

from repro.obs import (DEFAULT_LATENCY_BUCKETS_MS, LatencyHistogram,
                       ListSink, Telemetry, Tracer, new_span_id,
                       new_trace_id, valid_trace_id)
from repro.serve import QueryRequest, QueryService, SpecCache

EVEN = "even(T+2) :- even(T).\neven(0).\n"


class TestIds:
    def test_trace_ids_are_32_hex_and_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(re.fullmatch(r"[0-9a-f]{32}", t) for t in ids)

    def test_span_ids_are_16_hex_and_unique(self):
        ids = {new_span_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(re.fullmatch(r"[0-9a-f]{16}", s) for s in ids)

    @pytest.mark.parametrize("value,ok", [
        ("deadbeefcafe1234", True),
        ("ab" * 32, True),
        ("ab" * 33, False),          # too long
        ("abc", False),              # too short
        ("not-hex-at-all!", False),
        ("", False),
        (None, False),
        (12345678, False),
    ])
    def test_valid_trace_id(self, value, ok):
        assert valid_trace_id(value) is ok


class TestSpans:
    def test_root_honors_valid_client_trace_id(self):
        telemetry = Telemetry()
        root = telemetry.root("http.request",
                              trace_id="DEADBEEF00112233")
        assert root.trace_id == "deadbeef00112233"

    def test_root_replaces_invalid_trace_id(self):
        telemetry = Telemetry()
        root = telemetry.root("http.request", trace_id="nope!")
        assert valid_trace_id(root.trace_id)
        assert root.trace_id != "nope!"

    def test_child_shares_trace_and_links_parent(self):
        telemetry = Telemetry()
        root = telemetry.root("root")
        child = root.child("child", layer="cache")
        grandchild = child.child("grandchild")
        assert child.context.trace_id == root.trace_id
        assert child.context.parent_id == root.context.span_id
        assert grandchild.context.parent_id == child.context.span_id
        assert root.children == [child]
        assert child.children == [grandchild]

    def test_end_is_idempotent_and_returns_duration(self):
        telemetry = Telemetry()
        span = telemetry.root("work")
        first = span.end()
        assert span.ended and first >= 0.0
        assert span.end() == first

    def test_context_manager_ends_and_flags_errors(self):
        telemetry = Telemetry()
        root = telemetry.root("root")
        with pytest.raises(RuntimeError):
            with root.child("boom") as span:
                raise RuntimeError("kaput")
        assert span.ended
        assert span.attributes["error"] == "kaput"

    def test_tree_nests_children_with_attributes(self):
        telemetry = Telemetry()
        root = telemetry.root("http.request", method="POST")
        child = root.child("parse")
        child.set_attribute("key", "abc")
        child.end()
        root.end()
        tree = root.tree()
        assert tree["name"] == "http.request"
        assert tree["attrs"] == {"method": "POST"}
        assert tree["duration_ms"] >= tree["children"][0]["start_ms"] \
            - tree["start_ms"]
        (sub,) = tree["children"]
        assert sub["name"] == "parse" and sub["attrs"]["key"] == "abc"
        assert sub["children"] == []


class TestExport:
    def test_spans_export_as_schema3_events(self):
        sink = ListSink()
        telemetry = Telemetry(Tracer(sink))
        root = telemetry.root("http.request", path="/query")
        child = root.child("cache.lookup", outcome="miss")
        child.end()
        root.end()
        assert [e["event"] for e in sink.events] == ["span", "span"]
        inner, outer = sink.events
        assert inner["name"] == "cache.lookup"
        assert outer["name"] == "http.request"
        assert inner["trace_id"] == outer["trace_id"]
        assert inner["parent"] == outer["span_id"]
        assert outer["parent"] is None
        for event in sink.events:
            assert "ts" in event
            assert event["duration_ms"] >= 0.0
            assert event["start_ms"] >= 0.0
        assert inner["attrs"] == {"outcome": "miss"}

    def test_disabled_telemetry_exports_nothing_but_still_works(self):
        telemetry = Telemetry()
        root = telemetry.root("r")
        root.child("c").end()
        assert root.end() >= 0.0
        assert valid_trace_id(root.trace_id)


class TestLatencyHistogram:
    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.count == 0 and hist.sum_ms == 0.0
        assert hist.quantile(0.5) == 0.0
        data = hist.to_dict()
        assert data["count"] == 0
        assert sum(n for _, n in data["buckets"]) == 0

    def test_count_equals_bucket_sum(self):
        hist = LatencyHistogram()
        samples = [0.1, 0.9, 3.0, 7.5, 40.0, 900.0, 99999.0]
        for ms in samples:
            hist.observe(ms)
        data = hist.to_dict()
        assert data["count"] == len(samples)
        assert sum(n for _, n in data["buckets"]) == len(samples)
        assert data["sum_ms"] == pytest.approx(sum(samples), abs=0.01)
        assert data["buckets"][-1][0] == "inf"
        assert data["buckets"][-1][1] == 1  # the 99999 sample

    def test_bucket_bounds_are_increasing(self):
        data = LatencyHistogram().to_dict()
        bounds = [b for b, _ in data["buckets"][:-1]]
        assert bounds == sorted(bounds)
        assert len(set(bounds)) == len(bounds)
        assert bounds == list(DEFAULT_LATENCY_BUCKETS_MS)

    def test_quantiles_are_ordered_and_plausible(self):
        hist = LatencyHistogram()
        for ms in range(1, 101):  # uniform 1..100 ms
            hist.observe(float(ms))
        p50, p95, p99 = (hist.quantile(q)
                         for q in (0.50, 0.95, 0.99))
        assert p50 <= p95 <= p99
        # p50 of uniform(1..100) lands in the (25, 50] bucket.
        assert 25.0 <= p50 <= 50.0
        assert p99 <= 100.0

    def test_quantiles_of_empty_histogram_are_zero_and_ordered(self):
        hist = LatencyHistogram()
        p50, p95, p99 = (hist.quantile(q) for q in (0.50, 0.95, 0.99))
        assert (p50, p95, p99) == (0.0, 0.0, 0.0)
        assert p50 <= p95 <= p99
        data = hist.to_dict()
        assert (data["p50"], data["p95"], data["p99"]) == (0, 0, 0)

    def test_quantiles_of_single_observation(self):
        hist = LatencyHistogram()
        hist.observe(3.0)  # inside the (2.5, 5] default bucket
        p50, p95, p99 = (hist.quantile(q) for q in (0.50, 0.95, 0.99))
        assert p50 <= p95 <= p99
        # Every quantile of one sample lands in that sample's bucket.
        for q in (p50, p95, p99):
            assert 2.5 <= q <= 5.0

    def test_quantiles_with_all_samples_in_one_bucket(self):
        hist = LatencyHistogram()
        for _ in range(100):
            hist.observe(3.0)
        p50, p95, p99 = (hist.quantile(q) for q in (0.50, 0.95, 0.99))
        assert p50 <= p95 <= p99
        for q in (p50, p95, p99):
            assert 2.5 <= q <= 5.0
        data = hist.to_dict()
        populated = [n for _, n in data["buckets"] if n]
        assert populated == [100]

    def test_quantiles_with_all_samples_in_overflow_bucket(self):
        hist = LatencyHistogram()
        for _ in range(10):
            hist.observe(10 ** 7)
        p50, p95, p99 = (hist.quantile(q) for q in (0.50, 0.95, 0.99))
        assert p50 <= p95 <= p99
        # The +Inf bucket has no upper edge to interpolate inside;
        # every quantile clamps to the largest finite bound.
        assert p50 == p95 == p99 == DEFAULT_LATENCY_BUCKETS_MS[-1]
        assert hist.to_dict()["buckets"][-1][1] == 10

    def test_quantile_of_inf_bucket_is_largest_finite_bound(self):
        hist = LatencyHistogram()
        hist.observe(10 ** 9)
        assert hist.quantile(0.99) == DEFAULT_LATENCY_BUCKETS_MS[-1]

    def test_rejects_bad_buckets_and_bad_quantiles(self):
        with pytest.raises(ValueError):
            LatencyHistogram(buckets_ms=[5.0, 1.0])
        with pytest.raises(ValueError):
            LatencyHistogram(buckets_ms=[])
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_prometheus_lines_are_cumulative_seconds(self):
        hist = LatencyHistogram()
        for ms in (0.5, 3.0, 30.0, 20000.0):
            hist.observe(ms)
        lines = list(hist.prometheus_lines("x_seconds"))
        assert lines[0].startswith("# HELP x_seconds")
        assert lines[1] == "# TYPE x_seconds histogram"
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in lines if "_bucket" in line]
        assert counts == sorted(counts)  # cumulative => monotone
        assert counts[-1] == 4  # +Inf bucket sees everything
        (sum_line,) = [li for li in lines if "_sum" in li]
        assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(
            (0.5 + 3.0 + 30.0 + 20000.0) / 1e3, rel=1e-6)
        (count_line,) = [li for li in lines if "_count" in li]
        assert count_line.endswith(" 4")


#: One Prometheus text-format sample line: name{labels} value.
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9.eE+-]+$")


class TestPrometheusExposition:
    def test_service_exposition_is_valid_and_reconciles(self):
        service = QueryService(cache=SpecCache())
        for t in (0, 1, 2, 1000):
            service.serve(QueryRequest(program=EVEN,
                                       query=f"even({t})"))
        text = service.prometheus_text()
        assert text.endswith("\n")
        for line in text.splitlines():
            assert line, "blank line in exposition"
            if not line.startswith("#"):
                assert _SAMPLE.match(line), line
        stats = service.stats_dict()

        def value(name: str) -> float:
            (line,) = [li for li in text.splitlines()
                       if li.startswith(name + " ")
                       or li.startswith(name + "{")]
            return float(line.rsplit(" ", 1)[1])

        assert value("repro_requests_total") == \
            stats["serve"]["requests"] == 4
        assert value("repro_request_duration_seconds_count") == \
            stats["latency"]["count"] == 4
        assert value("repro_request_duration_seconds_sum") == \
            pytest.approx(stats["latency"]["sum_ms"] / 1e3, abs=1e-3)
        assert value("repro_cache_misses_total") == \
            stats["cache"]["misses"]
        hits = [li for li in text.splitlines()
                if li.startswith("repro_cache_hits_total{")]
        assert len(hits) == 2
        mem = [li for li in hits if 'layer="memory"' in li]
        assert len(mem) == 1
        assert float(mem[0].rsplit(" ", 1)[1]) == \
            stats["cache"]["mem_hits"]

    def test_info_line_carries_version_and_schema(self):
        from repro import __version__
        from repro.obs import TRACE_SCHEMA
        text = QueryService(cache=SpecCache()).prometheus_text()
        assert (f'repro_info{{version="{__version__}",'
                f'trace_schema="{TRACE_SCHEMA}"}} 1') in text


class TestServiceSpans:
    def test_serve_batch_produces_full_span_tree(self):
        sink = ListSink()
        service = QueryService(cache=SpecCache(),
                               telemetry=Telemetry(Tracer(sink)))
        responses = service.serve_batch([
            QueryRequest(program=EVEN, query="even(0)"),
            QueryRequest(program=EVEN, query="even(5)"),
        ])
        names = [e["name"] for e in sink.events]
        assert names.count("parse") == 1
        # Cold path: the optimistic miss plus the double-check under
        # the single-flight key lock.
        assert names.count("cache.lookup") == 2
        assert names.count("spec.compute") == 1
        assert names.count("answer") == 2
        assert names[-1] == "serve.batch"  # the self-opened root
        trace_ids = {e["trace_id"] for e in sink.events}
        assert trace_ids == {responses[0].trace_id}
        assert responses[0].trace_id == responses[1].trace_id
        root = [e for e in sink.events
                if e["name"] == "serve.batch"][0]
        for event in sink.events:
            if event["name"] in ("parse", "answer"):
                assert event["parent"] == root["span_id"]

    def test_warm_batch_records_cache_hit_span(self):
        sink = ListSink()
        service = QueryService(cache=SpecCache(),
                               telemetry=Telemetry(Tracer(sink)))
        service.serve(QueryRequest(program=EVEN, query="even(0)"))
        sink.events.clear()
        service.serve(QueryRequest(program=EVEN, query="even(2)"))
        lookups = [e for e in sink.events
                   if e["name"] == "cache.lookup"]
        assert [e["attrs"]["outcome"] for e in lookups] == ["memory"]
        assert not [e for e in sink.events
                    if e["name"] == "spec.compute"]

    def test_responses_carry_trace_and_duration(self):
        service = QueryService(cache=SpecCache())
        response = service.serve(QueryRequest(program=EVEN,
                                              query="even(4)"))
        assert valid_trace_id(response.trace_id)
        assert response.duration_ms >= response.elapsed_ms >= 0.0
        data = response.to_dict()
        assert data["trace_id"] == response.trace_id
        assert data["duration_ms"] >= 0.0
        assert service.latency.count == 1

    def test_parse_error_still_observed_once(self):
        service = QueryService(cache=SpecCache())
        response = service.serve(
            QueryRequest(program="p(T+1 :- broken", query="p(0)"))
        assert not response.ok
        assert valid_trace_id(response.trace_id)
        assert service.latency.count == 1
        assert service.counters()["requests"] == 1

    def test_corruption_records_a_span(self, tmp_path):
        path = tmp_path / "specs.sqlite"
        warm = QueryService(cache=SpecCache(path))
        warm.serve(QueryRequest(program=EVEN, query="even(0)"))
        key = warm.serve(QueryRequest(program=EVEN,
                                      query="even(0)")).key
        import sqlite3
        with sqlite3.connect(path) as connection:
            connection.execute(
                "UPDATE specs SET payload = '{broken' WHERE key = ?",
                (key,))
            connection.commit()
        sink = ListSink()
        fresh = QueryService(cache=SpecCache(path),
                             telemetry=Telemetry(Tracer(sink)))
        response = fresh.serve(QueryRequest(program=EVEN,
                                            query="even(2)"))
        assert response.ok and response.answer is True
        corrupt = [e for e in sink.events
                   if e["name"] == "cache.corrupt"]
        assert [e["attrs"]["reason"] for e in corrupt] == \
            ["garbage-payload"]
        lookup = [e for e in sink.events
                  if e["name"] == "cache.lookup"][0]
        assert corrupt[0]["parent"] == lookup["span_id"]
