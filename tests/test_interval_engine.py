"""Tests for the interval-coalesced evaluation engine."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.lang import parse_program, parse_rules
from repro.lang.atoms import Fact
from repro.lang.errors import EvaluationError
from repro.temporal import (IntervalSet, TemporalDatabase, fixpoint,
                            interval_fixpoint)


class TestIntervalSet:
    def test_from_points_coalesces(self):
        s = IntervalSet.from_points([1, 2, 3, 7, 9, 8])
        assert s.intervals == ((1, 3), (7, 9))

    def test_membership_binary_search(self):
        s = IntervalSet.from_points([0, 1, 5, 6, 7, 20])
        for t in (0, 1, 5, 7, 20):
            assert t in s
        for t in (-1, 2, 4, 8, 19, 21):
            assert t not in s

    def test_union_merges_adjacent(self):
        a = IntervalSet.span(0, 3)
        b = IntervalSet.span(4, 6)
        assert a.union(b).intervals == ((0, 6),)

    def test_union_keeps_gaps(self):
        a = IntervalSet.span(0, 2)
        b = IntervalSet.span(5, 6)
        assert a.union(b).intervals == ((0, 2), (5, 6))

    def test_intersect(self):
        a = IntervalSet(((0, 5), (10, 15)))
        b = IntervalSet(((3, 12),))
        assert a.intersect(b).intervals == ((3, 5), (10, 12))

    def test_shift_and_clip(self):
        s = IntervalSet.span(2, 8).shift(-3)
        assert s.intervals == ((-1, 5),)
        assert s.clip(0, 4).intervals == ((0, 4),)

    def test_cardinality_and_points(self):
        s = IntervalSet(((0, 2), (5, 5)))
        assert s.cardinality() == 4
        assert list(s.points()) == [0, 1, 2, 5]

    @settings(max_examples=50, deadline=None)
    @given(st.sets(st.integers(0, 40)), st.sets(st.integers(0, 40)))
    def test_set_algebra_matches_python_sets(self, xs, ys):
        a, b = IntervalSet.from_points(xs), IntervalSet.from_points(ys)
        assert set(a.union(b).points()) == xs | ys
        assert set(a.intersect(b).points()) == xs & ys
        assert set(a.shift(3).points()) == {x + 3 for x in xs}
        assert set(a.clip(5, 20).points()) == {x for x in xs
                                               if 5 <= x <= 20}


class TestEquivalenceWithSliceEngine:
    def test_even_example(self, even_program, even_db):
        assert interval_fixpoint(even_program.rules, even_db, 20) == \
            fixpoint(even_program.rules, even_db, 20)

    def test_travel_example(self, travel_program, travel_db):
        assert interval_fixpoint(travel_program.rules, travel_db,
                                 500) == \
            fixpoint(travel_program.rules, travel_db, 500)

    def test_path_example(self, path_program, path_db):
        assert interval_fixpoint(path_program.rules, path_db, 8) == \
            fixpoint(path_program.rules, path_db, 8)

    def test_backward_rules(self):
        program = parse_program(
            "@temporal q.\nq(T) :- p(T+1).\np(T+1) :- p(T).\np(2).")
        db = TemporalDatabase(program.facts)
        assert interval_fixpoint(program.rules, db, 10) == \
            fixpoint(program.rules, db, 10)

    def test_non_temporal_head_from_temporal_body(self):
        program = parse_program(
            "seen(X) :- p(T, X).\np(3, a). p(7, b).\n@temporal p.")
        db = TemporalDatabase(program.facts)
        assert interval_fixpoint(program.rules, db, 10) == \
            fixpoint(program.rules, db, 10)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seeds=st.lists(st.tuples(st.integers(0, 5),
                                    st.sampled_from("ab")),
                          min_size=1, max_size=5),
           links=st.lists(st.tuples(st.sampled_from("ab"),
                                    st.sampled_from("ab")),
                          max_size=4))
    def test_random_programs_agree(self, seeds, links):
        rules = parse_rules(
            "p(T+2, Y) :- p(T, X), link(X, Y).\n"
            "p(T+1, X) :- p(T, X).")
        facts = [Fact("p", t, (c,)) for t, c in seeds]
        facts.extend(Fact("link", None, pair) for pair in links)
        db = TemporalDatabase(facts)
        assert interval_fixpoint(rules, db, 14) == \
            fixpoint(rules, db, 14)


class TestFragmentGuards:
    def test_negation_rejected(self):
        rules = parse_rules("out(T) :- slot(T), not jam(T).")
        with pytest.raises(EvaluationError):
            interval_fixpoint(rules, TemporalDatabase(), 5)

    def test_two_temporal_variables_rejected(self):
        from repro.lang.atoms import Atom
        from repro.lang.rules import Rule
        from repro.lang.terms import TimeTerm, Var
        rule = Rule(
            Atom("p", TimeTerm("T", 1), (Var("X"),)),
            (Atom("p", TimeTerm("T", 0), (Var("X"),)),
             Atom("q", TimeTerm("S", 0), (Var("X"),))),
        )
        with pytest.raises(EvaluationError):
            interval_fixpoint([rule], TemporalDatabase(), 5)


class TestCoalescingAdvantage:
    def test_interval_count_stays_small_on_runs(self, travel_program,
                                                travel_db):
        # The point of the engine: a season is O(1) intervals, not O(90)
        # slices.  Verify via the store's internal representation.
        from repro.temporal.interval_engine import interval_fixpoint
        store = interval_fixpoint(travel_program.rules, travel_db, 400)
        # Sanity: results correct (spot check).
        assert Fact("winter", 90, ()) in store
        assert Fact("offseason", 91, ()) in store
