"""Differential battery for the compiled evaluation core.

Extends the cross-engine harness of ``test_differential.py`` with the
compiled window engine (:mod:`repro.datalog.compiled`): on the same 100
generated programs, the compiled fixpoint must agree with the generic
semi-naive reference — and, through it, with BT verbatim, the interval
engine, tabled top-down, magic sets, and the incremental maintainer —
on answers *and* on the observable accounting: ``facts_derived``,
``facts_per_round``, and the per-rule credit invariant (the registry's
new-fact credits sum to the stats' derived count).

Per-engine probe/firing totals are deliberately NOT compared across
engines: a rule that joins a predicate against facts derived for that
same predicate in the same round sees them (or not) depending on
enumeration order, so duplicate/probe counts can differ between two
correct engines while the derived facts are identical.

The adversarial section pins down shapes the generator is unlikely to
hit: repeated variables inside one body atom, constants in head
positions, bodies whose atoms share no data variables, empty relations,
single-fact fixpoints, ground temporal terms (parsed with validation
off), and stratified negation through ``evaluate_window``.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.core.magic import magic_ask
from repro.core.spec import compute_specification
from repro.datalog.compiled import compiled_fixpoint
from repro.lang.sorts import parse_program
from repro.obs import EvalStats, MetricsRegistry
from repro.temporal import (TemporalDatabase, TopDownEngine, bt_evaluate,
                            bt_verbatim, fixpoint)
from repro.temporal.bt import evaluate_window
from repro.temporal.incremental import IncrementalModel
from repro.temporal.interval_engine import interval_fixpoint
from test_differential import (AUX_SETTINGS, DIFF_SETTINGS, HORIZON,
                               TEMPORAL_PREDS, _open_atom, ground_goals,
                               programs)


def _run_pair(rules, db, horizon=HORIZON):
    """Reference + compiled evaluation; returns both stores and stats."""
    ref_stats = EvalStats()
    reference = fixpoint(rules, db, horizon, stats=ref_stats)
    comp_stats, registry = EvalStats(), MetricsRegistry()
    compiled = compiled_fixpoint(rules, db, horizon, stats=comp_stats,
                                 metrics=registry)
    assert compiled == reference
    assert comp_stats.facts_derived == ref_stats.facts_derived
    assert comp_stats.facts_per_round == ref_stats.facts_per_round
    # Per-rule credit invariant, within the compiled engine.
    assert registry.total_new_facts == comp_stats.facts_derived
    assert all(r.new_facts >= 0 and r.duplicates >= 0 and r.probes >= 0
               for r in registry)
    return reference, compiled, ref_stats, comp_stats


def _parity(text, horizon=HORIZON, validate=True):
    """Parse ``text`` and assert reference/compiled parity on it."""
    program = parse_program(text, validate=validate)
    db = TemporalDatabase(program.facts)
    reference, compiled, _, _ = _run_pair(list(program.rules), db,
                                          horizon)
    return compiled


class TestCompiledAgreement:
    """The 100-program battery, compiled vs every other engine."""

    @DIFF_SETTINGS
    @given(programs(), st.lists(ground_goals(), min_size=1, max_size=3))
    def test_compiled_agrees_with_every_engine(self, program, goals):
        rules, facts = program
        db = TemporalDatabase(facts)
        _, compiled, _, _ = _run_pair(rules, db)
        window = compiled.segment(0, HORIZON)
        window |= set(compiled.nt.facts())

        verbatim = bt_verbatim(rules, db, HORIZON)
        verb_window = verbatim.store.segment(0, HORIZON)
        verb_window |= set(verbatim.store.nt.facts())
        assert verb_window == window

        interval = interval_fixpoint(rules, db, HORIZON)
        assert interval.segment(0, HORIZON) == \
            compiled.segment(0, HORIZON)
        assert interval.nt == compiled.nt

        engine = TopDownEngine(rules, db, HORIZON)
        for pred, arity in TEMPORAL_PREDS.items():
            answers = engine.query(_open_atom(pred, arity))
            expected = {f for f in window
                        if f.pred == pred and f.time is not None}
            assert answers == expected, pred

        model = IncrementalModel(rules, db)
        for goal in goals:
            expected = goal in compiled
            assert magic_ask(rules, db, goal) == expected, goal
            assert model.holds(goal) == expected, goal

    @AUX_SETTINGS
    @given(programs())
    def test_compiled_counts_reconcile(self, program):
        rules, facts = program
        stats, registry = EvalStats(), MetricsRegistry()
        store = compiled_fixpoint(rules, TemporalDatabase(facts),
                                  HORIZON, stats=stats,
                                  metrics=registry)
        assert stats.engine == "compiled"
        assert stats.horizon == HORIZON
        assert sum(stats.facts_per_round) == stats.facts_derived
        assert stats.extra["initial_facts"] + stats.facts_derived == \
            len(store)
        assert len(stats.facts_per_round) == stats.rounds
        assert len(stats.delta_sizes) == stats.rounds
        if stats.rounds:
            assert stats.facts_per_round[-1] == 0
        assert registry.total_new_facts == stats.facts_derived

    @AUX_SETTINGS
    @given(programs())
    def test_bt_driver_parity(self, program):
        """The whole BT driver (deepening + period detection) agrees
        between window engines, including beyond-window folding."""
        rules, facts = program
        db = TemporalDatabase(facts)
        ref = bt_evaluate(rules, db, window=HORIZON)
        comp = bt_evaluate(rules, db, window=HORIZON,
                           engine="compiled")
        assert comp.store == ref.store
        assert (comp.period is None) == (ref.period is None)
        if ref.period is not None:
            assert (comp.period.b, comp.period.p) == \
                (ref.period.b, ref.period.p)


class TestAdversarialShapes:
    """Hand-picked shapes the generator is unlikely to produce."""

    def test_repeated_variables_in_one_body_atom(self):
        # The +1 head offsets force temporal sorts onto `pair` (an
        # offset-free program is sort-ambiguous and parses as data).
        compiled = _parity("""
            same(T+1) :- pair(T, X, X).
            echo(T+1, X) :- pair(T, X, X).
            pair(0, a, a).
            pair(0, a, b).
            pair(1, b, b).
            pair(2, a, b).
        """)
        assert compiled.contains("same", 1, ())
        assert compiled.contains("same", 2, ())
        assert not compiled.contains("same", 3, ())
        assert compiled.contains("echo", 1, ("a",))
        assert not compiled.contains("echo", 1, ("b",))

    def test_constants_in_head_positions(self):
        compiled = _parity("""
            tagged(T+1, a) :- tick(T).
            mixed(T, a, X) :- tick(T), base(X).
            tick(T+1) :- tick(T).
            tick(0).
            base(b).
        """, horizon=6)
        assert compiled.contains("tagged", 3, ("a",))
        assert compiled.contains("mixed", 2, ("a", "b"))

    def test_body_atoms_share_no_data_variables(self):
        compiled = _parity("""
            combo(T+1, X, Y) :- left(T, X), right(T, Y).
            left(0, a).
            left(0, b).
            left(1, a).
            right(0, c).
            right(1, c).
        """)
        assert compiled.contains("combo", 1, ("a", "c"))
        assert compiled.contains("combo", 1, ("b", "c"))
        assert compiled.contains("combo", 2, ("a", "c"))
        assert not compiled.contains("combo", 2, ("b", "c"))

    def test_empty_relations_derive_nothing(self):
        compiled = _parity("""
            out(T+1, X) :- never(T, X), p(T, X).
            p(T+1, X) :- p(T, X).
            p(0, a).
        """)
        assert "out" not in compiled.temporal_predicates()

    def test_single_fact_fixpoint(self):
        # A self-loop at offset 0 saturates after one round of
        # duplicates; the single fact is the whole model.  Built from
        # term objects: the textual form is sort-ambiguous.
        from repro.lang.atoms import Atom, Fact
        from repro.lang.rules import Rule
        from repro.lang.terms import TimeTerm
        rule = Rule(Atom("loop", TimeTerm("T", 0), ()),
                    (Atom("loop", TimeTerm("T", 0), ()),))
        db = TemporalDatabase([Fact("loop", 3, ())])
        _, compiled, _, _ = _run_pair([rule], db)
        assert compiled.contains("loop", 3, ())
        assert len(compiled) == 1

    def test_ground_temporal_terms_in_rules(self):
        # The paper's validation forbids ground terms in rules;
        # building the rules directly exercises the engines' "ground"
        # time mode in bodies and heads.
        from repro.lang.atoms import Atom, Fact
        from repro.lang.rules import Rule
        from repro.lang.terms import TimeTerm
        rules = [
            Rule(Atom("ready", TimeTerm("T", 0), ()),
                 (Atom("boot", TimeTerm(None, 0), ()),
                  Atom("tick", TimeTerm("T", 0), ()))),
            Rule(Atom("late", TimeTerm(None, 5), ()),
                 (Atom("tick", TimeTerm(None, 3), ()),)),
            Rule(Atom("tick", TimeTerm("T", 1), ()),
                 (Atom("tick", TimeTerm("T", 0), ()),)),
        ]
        db = TemporalDatabase([Fact("tick", 0, ()),
                               Fact("boot", 0, ())])
        _, compiled, _, _ = _run_pair(rules, db, horizon=8)
        assert compiled.contains("ready", 7, ())
        assert compiled.contains("late", 5, ())

    def test_nullary_self_recursion(self):
        compiled = _parity("""
            done(T+2) :- done(T).
            done(1).
        """, horizon=9)
        assert compiled.contains("done", 9, ())
        assert not compiled.contains("done", 8, ())


class TestStratifiedAndSpec:
    """Negation (per-stratum compiled fixpoints) and spec parity."""

    STRATIFIED = """
        tick(T+1) :- tick(T).
        ok(T) :- tick(T), not fail(T).
        calm(T+1) :- ok(T), not fail(T).
        tick(0).
        fail(3).
        fail(7).
    """

    def test_stratified_negation_matches_generic(self):
        program = parse_program(self.STRATIFIED)
        db = TemporalDatabase(program.facts)
        sa, sb = EvalStats(), EvalStats()
        ref = evaluate_window(program.rules, db, 12,
                              engine="seminaive", stats=sa)
        comp = evaluate_window(program.rules, db, 12,
                               engine="compiled", stats=sb)
        assert set(comp.facts()) == set(ref.facts())
        assert sb.facts_derived == sa.facts_derived
        assert sb.extra.get("strata") == sa.extra.get("strata")

    def test_unknown_engine_is_a_located_evaluation_error(self):
        from repro.lang.errors import EvaluationError
        program = parse_program(self.STRATIFIED)
        db = TemporalDatabase(program.facts)
        with pytest.raises(EvaluationError, match="unknown engine"):
            evaluate_window(program.rules, db, 4, engine="warp")

    def test_specifications_are_engine_independent(self):
        program = parse_program("""
            even(T+2) :- even(T).
            odd(T+1) :- even(T).
            even(0).
        """)
        db = TemporalDatabase(program.facts)
        ref = compute_specification(program.rules, db)
        comp = compute_specification(program.rules, db,
                                     engine="compiled")
        assert comp.representatives == ref.representatives
        assert (comp.b, comp.p) == (ref.b, ref.p)
        assert comp.primary == ref.primary
        assert str(comp.rewrites) == str(ref.rewrites)
