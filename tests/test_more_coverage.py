"""Additional depth coverage: thinner paths across modules."""

import pytest

from repro.core import evaluate_on_model, parse_query
from repro.lang import (date_of, day_number, parse_program,
                        parse_rules)
from repro.lang.atoms import Fact
from repro.lang.errors import EvaluationError
from repro.temporal import bt_evaluate, explain, to_normal
from repro.workloads import travel_agent_program


class TestQueryEvaluationEdges:
    def test_evaluate_on_model_respects_time_bound(self, even_program,
                                                   even_db):
        result = bt_evaluate(even_program.rules, even_db, window=40)
        q = parse_query("exists T: even(T) and even(T+2)",
                        frozenset({"even"}))
        assert evaluate_on_model(q, result, time_bound=10)
        # Bound 0 restricts the temporal domain to the single point 0.
        q2 = parse_query("exists T: even(T)", frozenset({"even"}))
        assert evaluate_on_model(q2, result, time_bound=0)
        q3 = parse_query("exists T: not even(T)", frozenset({"even"}))
        assert not evaluate_on_model(q3, result, time_bound=0)
        assert evaluate_on_model(q3, result, time_bound=1)

    def test_implies_with_free_variables(self, travel_program,
                                         travel_db):
        from repro.core import answers, compute_specification
        spec = compute_specification(travel_program.rules, travel_db)
        q = parse_query("resort(X) implies exists T: plane(T, X)",
                        travel_program.temporal_preds)
        result = answers(q, spec)
        # Implication is true for every non-resort constant too: the
        # answer set covers the whole active domain.
        assert len(result) == len(spec.active_domain())

    def test_forall_auto_sort_data(self, path_program, path_db):
        from repro.core import compute_specification, evaluate
        spec = compute_specification(path_program.rules, path_db)
        q = parse_query("forall N: node(N) implies path(0, N, N)",
                        path_program.temporal_preds)
        assert evaluate(q, spec)


class TestNormalizeEdges:
    def test_shared_next_chains_across_rules(self):
        # Two rules referencing p(T+3) must share one chain family.
        rules = parse_rules(
            "@temporal a. @temporal b. @temporal p.\n"
            "a(T) :- p(T+3).\nb(T) :- p(T+3).")
        normal = to_normal(rules)
        chain_heads = [r.head.pred for r in normal
                       if "_nx" in r.head.pred]
        assert len(chain_heads) == len(set(chain_heads)), \
            "chain rules must not be duplicated"

    def test_travel_normal_form_is_big_but_correct(self,
                                                   travel_program):
        normal = to_normal(travel_program.rules)
        assert len(normal) > len(travel_program.rules)
        assert all(r.is_normal for r in normal)


class TestExplainEdges:
    def test_budget_exhaustion_raises(self, path_program, path_db):
        result = bt_evaluate(path_program.rules, path_db)
        deep = Fact("path", 4, ("a", "d"))
        assert result.holds(deep)
        with pytest.raises(EvaluationError):
            explain(path_program.rules, path_db, result.store, deep,
                    max_nodes=1)

    def test_memoisation_shares_subtrees(self, even_program, even_db):
        result = bt_evaluate(even_program.rules, even_db)
        tree = explain(even_program.rules, even_db, result.store,
                       Fact("even", 8, ()))
        assert tree.depth == 5


class TestDatesIntegration:
    def test_departure_dates_render(self, travel_program, travel_db):
        from repro import TDD
        tdd = TDD(travel_program.rules, travel_db)
        departures = sorted(
            s["T"] for s in tdd.answers("plane(T, hunter)").expand(20))
        rendered = [date_of(t, "12/20/89") for t in departures]
        assert rendered[0] == "01/01/90"

    def test_paper_database_from_dates(self):
        # Rebuild the paper database using the date helpers and compare
        # with the canonical workload generator.
        from repro.workloads import paper_travel_database
        epoch = "12/20/89"
        facts = [Fact("plane", day_number("01/01/90", epoch),
                      ("hunter",)),
                 Fact("resort", None, ("hunter",)),
                 Fact("holiday", day_number("12/25/89", epoch), ()),
                 Fact("holiday", day_number("01/01/90", epoch), ())]
        facts.extend(Fact("winter", t, ()) for t in range(
            day_number("12/20/89", epoch),
            day_number("03/20/90", epoch) + 1))
        facts.extend(Fact("offseason", t, ()) for t in range(
            day_number("03/21/90", epoch),
            day_number("12/19/90", epoch) + 1))
        assert set(facts) == set(paper_travel_database())


class TestParserMoreEdges:
    def test_interval_in_rule_body_rejected(self):
        from repro.lang.errors import SortError
        with pytest.raises(SortError):
            parse_program("p(T+1) :- q(1..3).")

    def test_zero_arity_temporal_predicate(self):
        program = parse_program("tick(T+1) :- tick(T).\ntick(0).")
        assert program.temporal_preds == {"tick"}
        (fact,) = program.facts
        assert fact.args == ()

    def test_quoted_constants_roundtrip(self):
        program = parse_program("resort('Hunter Mtn').")
        assert program.facts[0].args == ("Hunter Mtn",)

    def test_underscore_variables(self):
        (rule,) = parse_rules("seen(T+1, X) :- seen(T, X), log(X, _E).")
        assert "_E" in rule.data_variables()


class TestBenchreportFormatting:
    def test_value_formats(self):
        from repro.benchreport import _fmt_time, _fmt_value
        assert _fmt_time(5e-7) == "0.5 µs"
        assert _fmt_value(3.14159) == "3.142"
        assert _fmt_value([1, 2]) == "[1, 2]"
        assert _fmt_value("x") == "x"


class TestYearLengthParameter:
    def test_compressed_years_scale_periods(self):
        for year in (6, 10, 14):
            rules = travel_agent_program(year_length=year)
            offsets = {r.head.time.offset for r in rules
                       if r.head.pred != "plane"}
            assert offsets == {year}
