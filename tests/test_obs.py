"""Tests for the observability layer (repro.obs)."""

from __future__ import annotations

import io
import json

from repro.lang import parse_program
from repro.obs import (EvalStats, JsonLinesSink, ListSink, Stopwatch,
                       Tracer, phase_timer)
from repro.temporal import TemporalDatabase, bt_evaluate, fixpoint


# ---------------------------------------------------------------------------
# EvalStats
# ---------------------------------------------------------------------------

class TestEvalStats:
    def test_record_round(self):
        stats = EvalStats()
        stats.record_round(derived=3, delta=5)
        stats.record_round(derived=0)
        assert stats.rounds == 2
        assert stats.facts_per_round == [3, 0]
        assert stats.delta_sizes == [5]
        assert stats.facts_derived == 3

    def test_merge_adds_counters_and_concatenates_series(self):
        a = EvalStats(engine="seminaive", rounds=2,
                      facts_per_round=[4, 1], delta_sizes=[4, 5],
                      join_probes=10, index_hits=3, index_misses=1,
                      facts_derived=5, horizon=8)
        b = EvalStats(engine="bt", rounds=1, facts_per_round=[2],
                      delta_sizes=[2], join_probes=4, index_hits=2,
                      index_misses=2, facts_derived=2, horizon=12,
                      period=(3, 4))
        a.merge(b)
        assert a.engine == "bt"
        assert a.rounds == 3
        assert a.facts_per_round == [4, 1, 2]
        assert a.delta_sizes == [4, 5, 2]
        assert a.join_probes == 14
        assert a.index_hits == 5 and a.index_misses == 3
        assert a.facts_derived == 7
        assert a.horizon == 12
        assert a.period == (3, 4)

    def test_merge_keeps_own_fields_when_other_empty(self):
        a = EvalStats(engine="magic", horizon=9, period=(1, 2))
        a.merge(EvalStats())
        assert a.engine == "magic"
        assert a.horizon == 9
        assert a.period == (1, 2)

    def test_merge_accumulates_phases(self):
        a = EvalStats(phase_seconds={"evaluate": 1.0})
        b = EvalStats(phase_seconds={"evaluate": 0.5, "rewrite": 0.25})
        a.merge(b)
        assert a.phase_seconds == {"evaluate": 1.5, "rewrite": 0.25}

    def test_json_round_trip(self):
        stats = EvalStats(engine="bt", rounds=3,
                          facts_per_round=[5, 2, 0],
                          delta_sizes=[5, 5, 2], join_probes=17,
                          index_hits=9, index_misses=4,
                          facts_derived=7, horizon=21, period=(11, 365),
                          phase_seconds={"evaluate": 0.125},
                          extra={"initial_facts": 6})
        loaded = EvalStats.from_json(stats.to_json())
        assert loaded == stats
        # The JSON form is plain (period is a list, not a tuple).
        data = json.loads(stats.to_json())
        assert data["period"] == [11, 365]

    def test_from_dict_tolerates_missing_fields(self):
        stats = EvalStats.from_dict({"engine": "interval"})
        assert stats.engine == "interval"
        assert stats.rounds == 0
        assert stats.period is None

    def test_summary_mentions_key_fields(self):
        stats = EvalStats(engine="bt", rounds=2, facts_per_round=[3, 0],
                          delta_sizes=[3, 3], join_probes=7,
                          horizon=10, period=(2, 5),
                          facts_derived=3)
        text = stats.summary()
        assert "engine:" in text and "bt" in text
        assert "rounds:" in text and "2" in text
        assert "(b=2, p=5)" in text
        assert "horizon:" in text

    def test_summary_caps_long_series(self):
        stats = EvalStats(facts_per_round=list(range(100)))
        text = stats.summary()
        assert "(+84 more)" in text
        assert "99" not in text


# ---------------------------------------------------------------------------
# Tracer and sinks
# ---------------------------------------------------------------------------

class TestTracer:
    def test_list_sink_collects_events(self):
        sink = ListSink()
        tracer = Tracer(sink)
        tracer.emit("round", round=1, derived=4)
        tracer.emit("eval_end")
        assert [e["event"] for e in sink.events] == ["round", "eval_end"]
        assert sink.events[0]["round"] == 1
        assert sink.events[0]["derived"] == 4
        assert all("ts" in e for e in sink.events)

    def test_timestamps_are_monotone(self):
        sink = ListSink()
        tracer = Tracer(sink)
        for _ in range(5):
            tracer.emit("tick")
        stamps = [e["ts"] for e in sink.events]
        assert stamps == sorted(stamps)

    def test_disabled_tracer_emits_nothing(self):
        tracer = Tracer(None)
        assert not tracer.enabled
        tracer.emit("round", round=1)  # must not raise
        tracer.close()

    def test_jsonlines_sink_to_stream(self):
        buffer = io.StringIO()
        sink = JsonLinesSink(buffer)
        tracer = Tracer(sink)
        tracer.emit("eval_start", engine="bt", horizon=7)
        tracer.emit("round", round=1, derived=2)
        tracer.close()
        lines = buffer.getvalue().strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["event"] for e in events] == ["eval_start", "round"]
        assert events[0]["engine"] == "bt"

    def test_jsonlines_sink_to_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonLinesSink(path)
        tracer = Tracer(sink)
        tracer.emit("phase", name="evaluate", seconds=0.01)
        tracer.close()
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        assert len(events) == 1
        assert events[0]["event"] == "phase"
        assert events[0]["name"] == "evaluate"


# ---------------------------------------------------------------------------
# Timing helpers
# ---------------------------------------------------------------------------

class TestTiming:
    def test_phase_timer_accumulates(self):
        stats = EvalStats()
        with phase_timer(stats, "evaluate"):
            pass
        with phase_timer(stats, "evaluate"):
            pass
        assert "evaluate" in stats.phase_seconds
        assert stats.phase_seconds["evaluate"] >= 0.0

    def test_phase_timer_emits_event(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with phase_timer(None, "rewrite", tracer):
            pass
        assert sink.events[0]["event"] == "phase"
        assert sink.events[0]["name"] == "rewrite"

    def test_phase_timer_none_is_noop(self):
        with phase_timer(None, "anything"):
            pass

    def test_stopwatch(self):
        watch = Stopwatch()
        assert watch.elapsed >= 0.0
        watch.restart()
        assert watch.elapsed >= 0.0


# ---------------------------------------------------------------------------
# Instrumentation is inert when disabled
# ---------------------------------------------------------------------------

EVEN = """
even(T+2) :- even(T).
even(0).
"""


class TestDisabledInstrumentation:
    def test_results_identical_with_and_without(self):
        program = parse_program(EVEN)
        db = TemporalDatabase(program.facts)
        plain = fixpoint(program.rules, db, 20)
        sink = ListSink()
        stats = EvalStats()
        traced = fixpoint(program.rules, db, 20, stats=stats,
                          tracer=Tracer(sink))
        assert plain == traced
        assert stats.rounds > 0
        assert sink.events

    def test_bt_result_carries_no_stats_by_default(self):
        program = parse_program(EVEN)
        result = bt_evaluate(program.rules,
                             TemporalDatabase(program.facts))
        assert result.stats is None

    def test_bt_result_carries_stats_when_requested(self):
        program = parse_program(EVEN)
        stats = EvalStats()
        result = bt_evaluate(program.rules,
                             TemporalDatabase(program.facts),
                             stats=stats)
        assert result.stats is stats
        assert stats.engine == "bt"
        assert stats.period is not None
        assert stats.horizon == result.horizon
        assert "evaluate" in stats.phase_seconds
        assert "period_detection" in stats.phase_seconds

    def test_store_stats_hook_is_detached_after_evaluation(self):
        program = parse_program(EVEN)
        db = TemporalDatabase(program.facts)
        store = fixpoint(program.rules, db, 20, stats=EvalStats())
        assert store.stats is None
        assert db.stats is None

    def test_trace_events_follow_schema(self):
        program = parse_program(EVEN)
        sink = ListSink()
        bt_evaluate(program.rules, TemporalDatabase(program.facts),
                    tracer=Tracer(sink))
        kinds = {e["event"] for e in sink.events}
        assert {"eval_start", "round", "eval_end",
                "phase", "period"} <= kinds
        for event in sink.events:
            assert "event" in event and "ts" in event
        rounds = [e for e in sink.events if e["event"] == "round"]
        assert all(isinstance(e["round"], int) for e in rounds)
        period = [e for e in sink.events if e["event"] == "period"][-1]
        assert period["b"] >= 0 and period["p"] >= 1
