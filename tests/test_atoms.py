"""Unit tests for repro.lang.atoms."""

import pytest

from repro.lang.atoms import Atom, Fact
from repro.lang.terms import Const, TimeTerm, Var


def temporal_atom(pred="p", var="T", offset=0, *args):
    return Atom(pred, TimeTerm(var, offset), tuple(args))


class TestAtom:
    def test_temporal_flag(self):
        assert Atom("p", TimeTerm("T", 0), ()).is_temporal
        assert not Atom("r", None, (Const("a"),)).is_temporal

    def test_arity_excludes_temporal_argument(self):
        atom = Atom("p", TimeTerm("T", 1), (Var("X"), Const("a")))
        assert atom.arity == 2

    def test_groundness(self):
        assert Atom("p", TimeTerm(None, 3), (Const("a"),)).is_ground
        assert not Atom("p", TimeTerm("T", 0), (Const("a"),)).is_ground
        assert not Atom("p", TimeTerm(None, 3), (Var("X"),)).is_ground
        assert Atom("r", None, (Const("a"),)).is_ground

    def test_data_variables(self):
        atom = Atom("p", TimeTerm("T", 0), (Var("X"), Const("a"), Var("X")))
        assert [v.name for v in atom.data_variables()] == ["X", "X"]

    def test_temporal_variable(self):
        assert Atom("p", TimeTerm("T", 2), ()).temporal_variable() == "T"
        assert Atom("p", TimeTerm(None, 2), ()).temporal_variable() is None
        assert Atom("r", None, ()).temporal_variable() is None

    def test_to_fact_ground(self):
        atom = Atom("p", TimeTerm(None, 3), (Const("a"), Const(2)))
        assert atom.to_fact() == Fact("p", 3, ("a", 2))

    def test_to_fact_non_temporal(self):
        atom = Atom("r", None, (Const("a"),))
        assert atom.to_fact() == Fact("r", None, ("a",))

    def test_to_fact_rejects_non_ground(self):
        with pytest.raises(ValueError):
            Atom("p", TimeTerm("T", 0), ()).to_fact()

    def test_str(self):
        assert str(Atom("p", TimeTerm("T", 1), (Var("X"),))) == "p(T+1, X)"
        assert str(Atom("r", None, ())) == "r"
        assert str(Atom("q", TimeTerm(None, 0), ())) == "q(0)"


class TestFact:
    def test_shifted(self):
        assert Fact("p", 3, ("a",)).shifted(2) == Fact("p", 5, ("a",))

    def test_shift_non_temporal_rejected(self):
        with pytest.raises(ValueError):
            Fact("r", None, ("a",)).shifted(1)

    def test_roundtrip_atom(self):
        fact = Fact("p", 4, ("a", 7))
        assert fact.to_atom().to_fact() == fact

    def test_roundtrip_non_temporal(self):
        fact = Fact("r", None, ("a",))
        assert fact.to_atom().to_fact() == fact

    def test_str(self):
        assert str(Fact("p", 2, ("a",))) == "p(2, a)"
        assert str(Fact("r", None, ())) == "r"

    def test_hashable_in_sets(self):
        facts = {Fact("p", 1, ()), Fact("p", 1, ()), Fact("p", 2, ())}
        assert len(facts) == 2
