"""Tests for Section 6 syntax: time-only/data-only/multi-separable,
reduced-form transformation, and the Theorem 6.3 one-period bound."""

import pytest

from repro.core import (classify_ruleset, estimate_one_period,
                        is_data_only_rule, is_multi_separable,
                        is_recursive_rule, is_reduced_rule,
                        is_reduced_time_only, is_separable,
                        is_time_only_rule, one_period_bound,
                        reduce_time_only_rules)
from repro.lang import parse_program, parse_rules
from repro.lang.errors import ClassificationError
from repro.temporal import TemporalDatabase, verify_period
from repro.workloads import (scaled_travel_database,
                             travel_agent_program)


def rule_of(text):
    (rule,) = parse_rules(text)
    return rule


class TestRuleKinds:
    def test_paper_time_only_example(self):
        # From the paper: near is time-only and reduced.
        rule = rule_of("near(T+1, X, Y) :- near(T, X, Y), idle(T, X), "
                       "idle(T, Y).")
        assert is_time_only_rule(rule)
        assert is_reduced_rule(rule)

    def test_paper_data_only_example(self):
        rule = rule_of("@temporal happy.\n"
                       "happy(T, X) :- happy(T, Y), friend(X, Y).")
        assert is_data_only_rule(rule)
        assert not is_time_only_rule(rule)

    def test_non_recursive_rule_is_neither(self):
        rule = rule_of("q(T+1, X) :- p(T, X).")
        assert not is_recursive_rule(rule)
        assert not is_time_only_rule(rule)
        assert not is_data_only_rule(rule)

    def test_time_only_requires_identical_data_args(self):
        rule = rule_of("p(T+1, X, Y) :- p(T, Y, X).")
        assert is_recursive_rule(rule)
        assert not is_time_only_rule(rule)

    def test_path_append_rule_is_neither(self, path_program):
        append = path_program.rules[1]  # path(K+1,X,Z):-edge,path(K,Y,Z)
        assert is_recursive_rule(append)
        assert not is_time_only_rule(append)
        assert not is_data_only_rule(append)

    def test_not_reduced_with_extra_body_variable(self):
        rule = rule_of("near(T+1, X) :- near(T, X), idle(T, X, Z).")
        assert is_time_only_rule(rule)
        assert not is_reduced_rule(rule)

    def test_data_only_head_must_share_time(self):
        rule = rule_of("happy(T+1, X) :- happy(T, Y), friend(X, Y).")
        assert not is_data_only_rule(rule)


class TestRulesetClassification:
    def test_travel_is_multi_separable_not_separable(self,
                                                     travel_program):
        assert is_multi_separable(travel_program.rules)
        assert not is_separable(travel_program.rules)

    def test_even_is_separable(self, even_program):
        assert is_separable(even_program.rules)
        assert is_multi_separable(even_program.rules)

    def test_path_is_not_multi_separable(self, path_program):
        assert not is_multi_separable(path_program.rules)

    def test_mutual_recursion_blocks(self):
        rules = parse_rules("p(T+1, X) :- q(T, X).\n"
                            "q(T+1, X) :- p(T, X).")
        report = classify_ruleset(rules)
        assert not report.mutual_recursion_free
        assert not report.is_multi_separable

    def test_mixed_kinds_per_predicate_rejected(self):
        rules = parse_rules(
            "p(T+1, X) :- p(T, X).\n"           # time-only
            "p(T, X) :- p(T, Y), link(X, Y).")  # data-only
        report = classify_ruleset(rules)
        assert report.predicate_kinds["p"] == "mixed"
        assert not report.is_multi_separable

    def test_report_collects_offenders(self, path_program):
        report = classify_ruleset(path_program.rules)
        assert report.offending_rules
        assert report.predicate_kinds["path"] == "other"

    def test_data_only_ruleset_is_multi_separable(self):
        rules = parse_rules(
            "@temporal happy.\n"
            "happy(T, X) :- happy(T, Y), friend(X, Y).")
        assert is_multi_separable(rules)


class TestReduceTransformation:
    def test_already_reduced_untouched(self, travel_program):
        assert reduce_time_only_rules(travel_program.rules) == \
            list(travel_program.rules)

    def test_projection_aux_introduced(self):
        rules = parse_rules(
            "near(T+1, X) :- near(T, X), idle(T, X, Z).")
        reduced = reduce_time_only_rules(rules)
        assert is_reduced_time_only(reduced)
        assert len(reduced) == 2

    def test_cluster_of_connected_atoms(self):
        rules = parse_rules(
            "p(T+1, X) :- p(T, X), q(T, X, Z), r(T, Z, W).")
        reduced = reduce_time_only_rules(rules)
        assert is_reduced_time_only(reduced)
        # q and r share Z: they must fold into ONE auxiliary.
        aux_rules = [r for r in reduced if r.head.pred.startswith("_red")]
        assert len(aux_rules) == 1
        assert len(aux_rules[0].body) == 2

    def test_model_preserved(self):
        program = parse_program(
            "near(T+1, X) :- near(T, X), idle(T, X, Z).\n"
            "near(0, a).\nidle(0, a, z1). idle(1, a, z2).\n"
            "@temporal idle.")
        reduced = reduce_time_only_rules(program.rules)
        db = TemporalDatabase(program.facts)
        from repro.temporal import fixpoint
        direct = fixpoint(program.rules, db, 6)
        via = fixpoint(reduced, db, 6)
        assert ({f for f in direct.facts() if f.pred == "near"}
                == {f for f in via.facts() if f.pred == "near"})

    def test_nontemporal_cluster(self):
        rules = parse_rules(
            "p(T+1, X) :- p(T, X), owner(X, Z).")
        reduced = reduce_time_only_rules(rules)
        assert is_reduced_time_only(reduced)
        aux = [r for r in reduced if r.head.pred.startswith("_red")][0]
        assert aux.head.time is None  # purely non-temporal cluster


class TestOnePeriodBound:
    def test_even_counter(self, even_program):
        b0, p0 = one_period_bound(even_program.rules)
        assert p0 == 2

    def test_estimate_valid_across_travel_databases(self):
        # The literal construction is infeasible for the travel rules
        # (normalization yields ~40 predicates); the sampling estimator
        # must still produce a pair valid on fresh databases.
        rules = travel_agent_program(year_length=10)
        b0, p0 = estimate_one_period(rules, trials=16, seed=5)
        assert p0 % 10 == 0
        for n_resorts, seed in [(1, 0), (3, 1), (6, 2)]:
            facts = scaled_travel_database(n_resorts, year_length=10,
                                           n_holidays=3, seed=seed)
            db = TemporalDatabase(facts)
            horizon = db.c + b0 + 3 * p0
            assert verify_period(rules, db, db.c + b0, p0, horizon), \
                (n_resorts, seed, b0, p0)

    def test_bound_valid_across_counter_databases(self):
        # Normal-izable toy where the literal construction is feasible.
        rules = parse_rules("a(T+2) :- a(T).\nb(T+3) :- b(T).")
        b0, p0 = one_period_bound(rules)
        assert p0 == 6
        from repro.lang.atoms import Fact
        for phases in [(0, 0), (1, 4), (5, 2)]:
            db = TemporalDatabase([Fact("a", phases[0], ()),
                                   Fact("b", phases[1], ())])
            horizon = db.c + b0 + 3 * p0
            assert verify_period(rules, db, db.c + b0, p0, horizon), \
                (phases, b0, p0)

    def test_non_multi_separable_rejected(self, path_program):
        with pytest.raises(ClassificationError):
            one_period_bound(path_program.rules)

    def test_arity_two_rejected(self):
        rules = parse_rules("near(T+1, X, Y) :- near(T, X, Y).")
        with pytest.raises(ClassificationError):
            one_period_bound(rules)

    def test_skeleton_cap_enforced(self, even_program):
        with pytest.raises(ClassificationError):
            one_period_bound(even_program.rules, max_skeletons=1)

    def test_coprime_counters_lcm(self):
        rules = parse_rules(
            "a(T+2) :- a(T).\nb(T+3) :- b(T).")
        b0, p0 = one_period_bound(rules)
        assert p0 == 6
