"""Unit tests for TemporalStore / TemporalDatabase (Section 3.2 notions)."""

from repro.lang.atoms import Fact
from repro.temporal import TemporalDatabase, TemporalStore


def make_store():
    return TemporalStore([
        Fact("p", 0, ("a",)),
        Fact("p", 2, ("a",)),
        Fact("p", 2, ("b",)),
        Fact("q", 2, ()),
        Fact("r", None, ("a", "b")),
    ])


class TestBasics:
    def test_add_deduplicates(self):
        store = TemporalStore()
        assert store.add("p", 1, ("a",))
        assert not store.add("p", 1, ("a",))
        assert len(store) == 1

    def test_contains(self):
        store = make_store()
        assert Fact("p", 2, ("a",)) in store
        assert Fact("p", 1, ("a",)) not in store
        assert Fact("r", None, ("a", "b")) in store

    def test_max_time(self):
        assert make_store().max_time() == 2
        assert TemporalStore().max_time() == -1

    def test_times(self):
        assert sorted(make_store().times("p")) == [0, 2]
        assert make_store().times("missing") == []

    def test_nt_part_separate(self):
        store = make_store()
        assert store.nt.contains("r", ("a", "b"))
        assert len(store.nt) == 1


class TestStatesSnapshotsSegments:
    def test_state_projects_time_out(self):
        state = make_store().state(2)
        assert state == frozenset({("p", ("a",)), ("p", ("b",)),
                                   ("q", ())})

    def test_state_excludes_non_temporal(self):
        # M[t] contains only the temporal predicates' projections.
        assert ("r", ("a", "b")) not in make_store().state(2)

    def test_empty_state(self):
        assert make_store().state(1) == frozenset()

    def test_snapshot_keeps_time(self):
        snap = make_store().snapshot(2)
        assert Fact("p", 2, ("a",)) in snap
        assert len(snap) == 3

    def test_segment_inclusive(self):
        seg = make_store().segment(0, 2)
        assert len(seg) == 4
        assert make_store().segment(1, 1) == set()

    def test_states_list(self):
        states = make_store().states(0, 2)
        assert len(states) == 3
        assert states[1] == frozenset()


class TestTruncateAndCopy:
    def test_truncate_drops_beyond_horizon(self):
        truncated = make_store().truncate(1)
        assert Fact("p", 0, ("a",)) in truncated
        assert Fact("p", 2, ("a",)) not in truncated

    def test_truncate_keeps_non_temporal(self):
        truncated = make_store().truncate(0)
        assert Fact("r", None, ("a", "b")) in truncated

    def test_copy_independent(self):
        store = make_store()
        clone = store.copy()
        clone.add("p", 9, ("z",))
        assert Fact("p", 9, ("z",)) not in store
        assert store == make_store()

    def test_equality_semantics(self):
        assert make_store() == make_store()
        other = make_store()
        other.add("p", 5, ("c",))
        assert make_store() != other


class TestLookup:
    def test_lookup_at_with_index(self):
        store = make_store()
        assert store.lookup_at("p", 2, (0,), ("a",)) == [("a",)]
        store.add("p", 2, ("c",))
        assert len(store.lookup_at("p", 2, (), ())) == 3

    def test_index_maintained_after_add(self):
        store = TemporalStore()
        store.add("p", 1, ("a", "x"))
        assert store.lookup_at("p", 1, (0,), ("a",)) == [("a", "x")]
        store.add("p", 1, ("a", "y"))
        assert len(store.lookup_at("p", 1, (0,), ("a",))) == 2

    def test_lookup_missing(self):
        store = make_store()
        assert store.lookup_at("p", 99, (), ()) == []
        assert store.lookup_at("zz", 0, (), ()) == []


class TestTemporalDatabase:
    def test_size_metrics(self):
        db = TemporalDatabase(make_store().facts())
        assert db.n == 5
        assert db.c == 2
        assert db.size == 5

    def test_c_dominates_when_deep(self):
        db = TemporalDatabase([Fact("p", 100, ())])
        assert db.size == 100

    def test_empty_database(self):
        db = TemporalDatabase()
        assert db.n == 0 and db.c == 0 and db.size == 0
