"""Cross-engine differential harness (hypothesis-driven).

Generates small forward definite temporal programs plus databases and
checks that every evaluation strategy in the repo — the semi-naive
window fixpoint (the reference), BT's verbatim naive loop, the
interval-coalesced engine, tabled top-down resolution, magic sets, and
the incremental maintainer — computes the same answers.  The same runs
feed the observability layer and check its sanity invariants: derived
counts reconcile with final store sizes, per-round series have the
right lengths, and semi-naive never takes more rounds than naive.

The agreement test runs 100 generated programs (the CI floor); the
stats-invariant tests add more.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.magic import magic_ask
from repro.datalog import naive_evaluate, seminaive_evaluate
from repro.lang.atoms import Atom, Fact
from repro.lang.rules import Rule
from repro.lang.terms import Const, TimeTerm, Var
from repro.obs import EvalStats, MetricsRegistry
from repro.temporal import (TemporalDatabase, TopDownEngine, bt_verbatim,
                            fixpoint)
from repro.temporal.incremental import IncrementalModel
from repro.temporal.interval_engine import interval_fixpoint

HORIZON = 14

DIFF_SETTINGS = settings(max_examples=100, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])
AUX_SETTINGS = settings(max_examples=30, deadline=None,
                        suppress_health_check=[HealthCheck.too_slow])

CONSTANTS = ["a", "b"]
TEMPORAL_PREDS = {"p": 1, "q": 1, "r": 0}
NT_PRED = ("base", 1)


# ---------------------------------------------------------------------------
# Strategy: forward definite semi-normal programs
# ---------------------------------------------------------------------------

@st.composite
def _rule(draw) -> Rule:
    """One forward semi-normal rule: body offsets <= head offset, one
    temporal variable T, data args drawn from {X, constants}."""
    head_offset = draw(st.integers(0, 2))

    def data_args(arity):
        return tuple(
            Var("X") if draw(st.booleans())
            else Const(draw(st.sampled_from(CONSTANTS)))
            for _ in range(arity)
        )

    body = []
    n_temporal = draw(st.integers(1, 2))
    for _ in range(n_temporal):
        pred = draw(st.sampled_from(sorted(TEMPORAL_PREDS)))
        offset = draw(st.integers(0, head_offset))
        body.append(Atom(pred, TimeTerm("T", offset),
                         data_args(TEMPORAL_PREDS[pred])))
    if draw(st.booleans()):
        body.append(Atom(NT_PRED[0], None, data_args(NT_PRED[1])))

    head_pred = draw(st.sampled_from(sorted(TEMPORAL_PREDS)))
    arity = TEMPORAL_PREDS[head_pred]
    body_vars = sorted({v.name for a in body for v in a.data_variables()})
    head_args = tuple(
        (Var(draw(st.sampled_from(body_vars))) if body_vars
         and draw(st.booleans())
         else Const(draw(st.sampled_from(CONSTANTS))))
        for _ in range(arity)
    )
    # Range restriction: head data vars must occur in the body, which
    # holds by construction (head vars are drawn from body_vars).
    return Rule(Atom(head_pred, TimeTerm("T", head_offset), head_args),
                tuple(body))


@st.composite
def programs(draw):
    rules = draw(st.lists(_rule(), min_size=1, max_size=3))
    facts = []
    for _ in range(draw(st.integers(1, 5))):
        pred = draw(st.sampled_from(sorted(TEMPORAL_PREDS)))
        args = tuple(draw(st.sampled_from(CONSTANTS))
                     for _ in range(TEMPORAL_PREDS[pred]))
        facts.append(Fact(pred, draw(st.integers(0, 4)), args))
    for _ in range(draw(st.integers(0, 2))):
        facts.append(Fact(NT_PRED[0], None,
                          (draw(st.sampled_from(CONSTANTS)),)))
    return rules, facts


@st.composite
def ground_goals(draw):
    pred = draw(st.sampled_from(sorted(TEMPORAL_PREDS)))
    args = tuple(draw(st.sampled_from(CONSTANTS))
                 for _ in range(TEMPORAL_PREDS[pred]))
    return Fact(pred, draw(st.integers(0, HORIZON)), args)


def _open_atom(pred: str, arity: int) -> Atom:
    return Atom(pred, TimeTerm("S", 0),
                tuple(Var(f"X{i}") for i in range(arity)))


# ---------------------------------------------------------------------------
# Agreement across all engines
# ---------------------------------------------------------------------------

class TestEngineAgreement:
    @DIFF_SETTINGS
    @given(programs(), st.lists(ground_goals(), min_size=1, max_size=3))
    def test_all_engines_agree(self, program, goals):
        rules, facts = program
        db = TemporalDatabase(facts)

        ref_stats = EvalStats()
        reference = fixpoint(rules, db, HORIZON, stats=ref_stats)
        ref_window = reference.segment(0, HORIZON)
        ref_window |= set(reference.nt.facts())

        # BT's verbatim naive loop: same window model.
        verbatim = bt_verbatim(rules, db, HORIZON, stats=EvalStats())
        verb_window = verbatim.store.segment(0, HORIZON)
        verb_window |= set(verbatim.store.nt.facts())
        assert verb_window == ref_window

        # Interval-coalesced evaluation: exact store equality.
        interval = interval_fixpoint(rules, db, HORIZON,
                                     stats=EvalStats())
        assert interval.segment(0, HORIZON) == \
            reference.segment(0, HORIZON)
        assert interval.nt == reference.nt

        # Tabled top-down: per-predicate open queries over the window.
        engine = TopDownEngine(rules, db, HORIZON, stats=EvalStats())
        for pred, arity in TEMPORAL_PREDS.items():
            answers = engine.query(_open_atom(pred, arity))
            expected = {f for f in ref_window
                        if f.pred == pred and f.time is not None}
            assert answers == expected, pred

        # Magic sets + incremental maintenance: sampled ground goals.
        model = IncrementalModel(rules, db, stats=EvalStats())
        for goal in goals:
            expected = goal in reference
            assert magic_ask(rules, db, goal) == expected, goal
            assert model.holds(goal) == expected, goal

    @AUX_SETTINGS
    @given(programs(), st.data())
    def test_incremental_insert_matches_recomputation(self, program,
                                                      data):
        """Insert a suffix of the database one fact at a time; the
        maintained model must match a from-scratch evaluation."""
        rules, facts = program
        temporal = [f for f in facts if f.time is not None]
        if len(temporal) < 2:
            return
        nt = [f for f in facts if f.time is None]
        split = data.draw(st.integers(1, len(temporal) - 1),
                          label="split")
        model = IncrementalModel(rules,
                                 TemporalDatabase(temporal[:split] + nt))
        for fact in temporal[split:]:
            model.insert(fact)
        reference = fixpoint(rules, TemporalDatabase(facts), HORIZON)
        for goal in data.draw(st.lists(ground_goals(), min_size=2,
                                       max_size=4), label="goals"):
            assert model.holds(goal) == (goal in reference), goal


# ---------------------------------------------------------------------------
# Stats sanity invariants
# ---------------------------------------------------------------------------

class TestStatsInvariants:
    @AUX_SETTINGS
    @given(programs())
    def test_fixpoint_counts_reconcile(self, program):
        rules, facts = program
        stats = EvalStats()
        store = fixpoint(rules, TemporalDatabase(facts), HORIZON,
                         stats=stats)
        assert stats.engine == "seminaive"
        assert stats.horizon == HORIZON
        assert sum(stats.facts_per_round) == stats.facts_derived
        assert stats.extra["initial_facts"] + stats.facts_derived == \
            len(store)
        assert len(stats.facts_per_round) == stats.rounds
        assert len(stats.delta_sizes) == stats.rounds
        # The final round derives nothing (that is how the loop exits).
        if stats.rounds:
            assert stats.facts_per_round[-1] == 0

    @AUX_SETTINGS
    @given(programs())
    def test_verbatim_counts_reconcile(self, program):
        rules, facts = program
        stats = EvalStats()
        result = bt_verbatim(rules, TemporalDatabase(facts), HORIZON,
                             stats=stats)
        assert stats.engine == "bt_verbatim"
        assert sum(stats.facts_per_round) == stats.facts_derived
        assert stats.extra["initial_facts"] + stats.facts_derived == \
            len(result.store)

    @AUX_SETTINGS
    @given(programs())
    def test_seminaive_rounds_le_naive_rounds(self, program):
        rules, facts = program
        db = TemporalDatabase(facts)
        naive_stats, semi_stats = EvalStats(), EvalStats()
        bt_verbatim(rules, db, HORIZON, stats=naive_stats)
        fixpoint(rules, db, HORIZON, stats=semi_stats)
        assert semi_stats.rounds <= naive_stats.rounds

    @AUX_SETTINGS
    @given(programs())
    def test_interval_counts_reconcile(self, program):
        rules, facts = program
        stats = EvalStats()
        interval_fixpoint(rules, TemporalDatabase(facts), HORIZON,
                          stats=stats)
        assert stats.engine == "interval"
        assert sum(stats.facts_per_round) == stats.facts_derived
        # Saturation converges: the last outer round merges nothing.
        assert stats.facts_per_round[-1] == 0


class TestProfilingInvariance:
    """Per-rule attribution is an observer: enabling it never changes
    the computed model, and its credits reconcile with EvalStats."""

    @AUX_SETTINGS
    @given(programs())
    def test_profiling_never_changes_the_model(self, program):
        rules, facts = program
        db = TemporalDatabase(facts)
        reference = fixpoint(rules, db, HORIZON)

        stats, registry = EvalStats(), MetricsRegistry()
        profiled = fixpoint(rules, db, HORIZON, stats=stats,
                            metrics=registry)
        assert profiled.segment(0, HORIZON) == \
            reference.segment(0, HORIZON)
        assert profiled.nt == reference.nt
        assert registry.total_new_facts == stats.facts_derived

        verb_stats, verb_registry = EvalStats(), MetricsRegistry()
        verbatim = bt_verbatim(rules, db, HORIZON, stats=verb_stats,
                               metrics=verb_registry)
        window = verbatim.store.segment(0, HORIZON)
        window |= set(verbatim.store.nt.facts())
        ref_window = reference.segment(0, HORIZON)
        ref_window |= set(reference.nt.facts())
        assert window == ref_window
        assert verb_registry.total_new_facts == \
            verb_stats.facts_derived

    @AUX_SETTINGS
    @given(programs())
    def test_interval_credits_reconcile(self, program):
        rules, facts = program
        stats, registry = EvalStats(), MetricsRegistry()
        interval_fixpoint(rules, TemporalDatabase(facts), HORIZON,
                          stats=stats, metrics=registry)
        assert registry.total_new_facts == stats.facts_derived


class TestDatalogStatsInvariants:
    def test_datalog_seminaive_rounds_le_naive(self):
        rules_text = [
            Rule(Atom("tc", None, (Var("X"), Var("Y"))),
                 (Atom("edge", None, (Var("X"), Var("Y"))),)),
            Rule(Atom("tc", None, (Var("X"), Var("Z"))),
                 (Atom("edge", None, (Var("X"), Var("Y"))),
                  Atom("tc", None, (Var("Y"), Var("Z"))))),
        ]
        edb = [Fact("edge", None, (f"v{i}", f"v{i + 1}"))
               for i in range(6)]
        naive_stats, semi_stats = EvalStats(), EvalStats()
        naive = naive_evaluate(rules_text, edb, stats=naive_stats)
        semi = seminaive_evaluate(rules_text, edb, stats=semi_stats)
        assert naive == semi
        assert semi_stats.rounds <= naive_stats.rounds
        assert naive_stats.engine == "datalog_naive"
        assert semi_stats.engine == "datalog_seminaive"
        assert naive_stats.extra["initial_facts"] + \
            naive_stats.facts_derived == len(naive)
