"""Tests for algorithm BT (Figure 1): verbatim, semi-naive, adaptive."""

import pytest

from repro.lang import parse_program
from repro.lang.atoms import Fact
from repro.lang.errors import EvaluationError
from repro.temporal import (TemporalDatabase, bt_evaluate, bt_verbatim,
                            fixpoint, verify_period)


class TestVerbatimBT:
    def test_matches_seminaive_fixpoint(self, even_program, even_db):
        for window in (0, 1, 5, 10):
            verbatim = bt_verbatim(even_program.rules, even_db, window)
            semi = fixpoint(even_program.rules, even_db, window)
            assert verbatim.store.segment(0, window) == \
                semi.segment(0, window)
            assert verbatim.store.nt == semi.nt

    def test_matches_on_travel_example(self, travel_program, travel_db):
        window = 30
        verbatim = bt_verbatim(travel_program.rules, travel_db, window)
        semi = fixpoint(travel_program.rules, travel_db, window)
        assert verbatim.store.segment(0, window) == semi.segment(0, window)

    def test_matches_on_backward_rules(self):
        program = parse_program(
            "@temporal q.\nq(T) :- p(T+1).\np(T+1) :- p(T).\np(0).")
        db = TemporalDatabase(program.facts)
        window = 8
        verbatim = bt_verbatim(program.rules, db, window)
        semi = fixpoint(program.rules, db, window)
        assert verbatim.store.segment(0, window) == semi.segment(0, window)

    def test_round_count_reported(self, even_db, even_program):
        result = bt_verbatim(even_program.rules, even_db, 6)
        assert result.rounds >= 4  # even(0)..even(6) need 4 derivations


class TestAdaptiveBT:
    def test_even_minimal_period(self, even_program, even_db):
        result = bt_evaluate(even_program.rules, even_db)
        assert (result.period.b, result.period.p) == (0, 2)
        assert result.period.certified

    def test_even_membership_beyond_window(self, even_program, even_db):
        result = bt_evaluate(even_program.rules, even_db)
        assert result.holds(Fact("even", 10 ** 15, ()))
        assert not result.holds(Fact("even", 10 ** 15 + 1, ()))

    def test_travel_period_is_year(self, travel_program, travel_db):
        result = bt_evaluate(travel_program.rules, travel_db)
        assert result.period.p == 365
        assert result.period.certified

    def test_path_period_one(self, path_program, path_db):
        result = bt_evaluate(path_program.rules, path_db)
        assert result.period.p == 1
        # threshold: diameter of the 4-node line is 3, plus seeding.
        assert result.period.b <= 5

    def test_backward_rules_verified_not_certified(self):
        program = parse_program(
            "@temporal q.\nq(T) :- p(T+1).\np(T+1) :- p(T).\np(3).")
        db = TemporalDatabase(program.facts)
        result = bt_evaluate(program.rules, db)
        assert not result.period.certified
        assert result.holds(Fact("q", 2, ()))
        assert not result.holds(Fact("q", 1, ()))
        assert result.holds(Fact("q", 10 ** 9, ()))

    def test_no_rules_empty_period(self):
        db = TemporalDatabase([Fact("p", 3, ())])
        result = bt_evaluate([], db)
        assert result.period.p == 1
        assert not result.holds(Fact("p", 4, ()))
        assert result.holds(Fact("p", 3, ()))

    def test_non_temporal_query(self, path_program, path_db):
        result = bt_evaluate(path_program.rules, path_db)
        assert result.holds(Fact("edge", None, ("a", "b")))
        assert not result.holds(Fact("edge", None, ("b", "a")))

    def test_max_window_exceeded_raises(self):
        program = parse_program("tick(T+97) :- tick(T).\ntick(0).")
        db = TemporalDatabase(program.facts)
        with pytest.raises(EvaluationError):
            bt_evaluate(program.rules, db, max_window=64)


class TestPaperModeWindow:
    def test_explicit_window(self, even_program, even_db):
        result = bt_evaluate(even_program.rules, even_db, window=11)
        assert result.horizon == 11
        assert result.period is not None

    def test_range_bound_mode(self, even_program, even_db):
        # m = max(c, h) + range; the even example has range 2.
        result = bt_evaluate(even_program.rules, even_db,
                             query_depth=6, range_bound=2)
        assert result.horizon == 8
        assert result.holds(Fact("even", 6, ()))

    def test_window_too_small_for_period(self, even_program, even_db):
        result = bt_evaluate(even_program.rules, even_db, window=2)
        assert result.period is None
        with pytest.raises(EvaluationError):
            result.holds(Fact("even", 100, ()))

    def test_range_property(self, even_program, even_db):
        result = bt_evaluate(even_program.rules, even_db)
        assert result.range == 2  # {even}, {}


class TestVerifyPeriod:
    def test_true_period_verifies(self, even_program, even_db):
        assert verify_period(even_program.rules, even_db, b=0, p=2,
                             horizon=40)
        assert verify_period(even_program.rules, even_db, b=0, p=4,
                             horizon=40)

    def test_false_period_fails(self, even_program, even_db):
        assert not verify_period(even_program.rules, even_db, b=0, p=3,
                                 horizon=40)


class TestPaperWindowFormula:
    """Fidelity check: the Theorem 4.1 window m = max(c, h) + range."""

    def test_exact_range_bound_recovers_period(self):
        # The paper's window works with NORMAL rules (g = 1), where a
        # single state recurrence proves the period — so normalize the
        # travel program first, exactly as Section 3.1 prescribes.
        from repro.temporal import to_normal
        from repro.workloads import (scaled_travel_database,
                                     travel_agent_program)
        normal = to_normal(travel_agent_program(year_length=30))
        db = TemporalDatabase(scaled_travel_database(
            2, year_length=30, n_holidays=2, seed=1))
        adaptive = bt_evaluate(normal, db)
        true_range = adaptive.range
        paper = bt_evaluate(normal, db, query_depth=0,
                            range_bound=true_range)
        assert paper.period is not None
        assert paper.period.certified
        assert paper.period.p == adaptive.period.p
        # And the paper window is much shorter than the adaptive one.
        assert paper.horizon < adaptive.horizon

    def test_recurrence_detector_on_even(self, even_program, even_db):
        # Even has g=2; normalize to g=1 and use the short window.
        from repro.temporal import to_normal
        normal = to_normal(even_program.rules)
        paper = bt_evaluate(normal, even_db, range_bound=4)
        assert paper.period is not None
        assert paper.period.p == 2

    def test_query_depth_extends_window(self, even_program, even_db):
        h = 123
        result = bt_evaluate(even_program.rules, even_db,
                             query_depth=h, range_bound=2)
        assert result.horizon == h + 2
        assert result.store.contains("even", 122, ())

    def test_range_counts_distinct_states(self, travel_program,
                                          travel_db):
        result = bt_evaluate(travel_program.rules, travel_db)
        # At most one state per timepoint in the first period, plus the
        # transient; far less than the window length.
        assert 2 <= result.range <= result.period.b + result.period.p + 1
