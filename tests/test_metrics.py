"""Tests for per-rule attribution (repro.obs.metrics).

The central contract is the per-rule credit invariant: across every
engine, the per-rule ``new_facts`` counters sum to exactly
``EvalStats.facts_derived`` — no derivation is double-credited, none is
lost.  Seed facts (fact rules, extensional inserts) are *initial*, not
derived, and stay uncredited.
"""

from __future__ import annotations

import gc

from repro.core.magic import magic_ask
from repro.datalog import naive_evaluate, seminaive_evaluate
from repro.lang import parse_program, parse_rules
from repro.lang.atoms import Atom, Fact
from repro.lang.rules import Rule
from repro.lang.terms import Var
from repro.obs import (EvalStats, Histogram, ListSink, MetricsRegistry,
                       RuleMetrics, TRACE_SCHEMA, Tracer)
from repro.temporal import (IncrementalModel, TemporalDatabase,
                            bt_evaluate, bt_verbatim, evaluate_window,
                            explain, fixpoint, interval_fixpoint,
                            topdown_ask)

HORIZON = 12

EVEN_ODD = """\
even(T+2) :- even(T).
odd(T+2) :- odd(T).
even(0).
odd(1).
"""

#: p(t) is derivable through *both* p-rules for every t >= 1: one rule
#: gets the new-fact credit, the other records a duplicate.
DIAMOND = """\
p(T+1) :- a(T).
p(T+1) :- b(T).
a(T+1) :- a(T).
b(T+1) :- b(T).
a(0).
b(0).
"""

STRATIFIED = """\
tick(T+1) :- tick(T).
safe(T, X) :- tick(T), node(X), not bad(X).
tick(0).
node(a).
node(b).
bad(b).
"""


def _load(text):
    program = parse_program(text)
    return program.rules, TemporalDatabase(program.facts)


# ---------------------------------------------------------------------------
# Histogram
# ---------------------------------------------------------------------------

class TestHistogram:
    def test_power_of_two_buckets(self):
        h = Histogram()
        for value in (0, 1, 2, 3, 4, 7, 8, 1 << 40):
            h.record(value)
        assert h.total == 8
        assert h.to_dict() == {"0": 1, "1": 1, "2-3": 2, "4-7": 2,
                               "8-15": 1, "65536+": 1}

    def test_round_trip(self):
        h = Histogram()
        for value in (0, 0, 5, 900):
            h.record(value)
        assert Histogram.from_dict(h.to_dict()).counts == h.counts

    def test_empty_serializes_sparse(self):
        assert Histogram().to_dict() == {}


# ---------------------------------------------------------------------------
# Registry identity and bookkeeping
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_same_rule_object_shares_a_record(self):
        (rule,) = parse_rules("p(T+1) :- p(T).")
        registry = MetricsRegistry()
        assert registry.rule(rule) is registry.rule(rule)
        assert len(registry) == 1

    def test_equal_rules_at_different_lines_stay_distinct(self):
        # Rule equality ignores spans, so two textually identical rules
        # must be distinguished by object identity.
        rules = parse_rules("p(T+1) :- p(T).\np(T+1) :- p(T).")
        assert rules[0] == rules[1]
        registry = MetricsRegistry()
        a, b = registry.rule(rules[0]), registry.rule(rules[1])
        assert a is not b
        assert (a.line, b.line) == (1, 2)
        assert [r.id for r in registry] == ["r1", "r2"]

    def test_span_label(self):
        (rule,) = parse_rules("p(T+1) :- p(T).")
        record = MetricsRegistry().rule(rule)
        assert record.span_label("x.tdd") == "x.tdd:1"
        assert record.span_label() == "line 1"
        anonymous = RuleMetrics("r9", "p.", None)
        assert anonymous.span_label("x.tdd") == "-"

    def test_derived_ratios(self):
        record = RuleMetrics("r1", "p.", 1)
        assert record.duplicate_ratio == 0.0
        assert record.probes_per_fact == 0.0
        record.new_facts, record.duplicates, record.probes = 3, 1, 12
        assert record.duplicate_ratio == 0.25
        assert record.probes_per_fact == 4.0

    def test_hot_sorts_by_attribute(self):
        rules = parse_rules("p(T+1) :- p(T).\nq(T+1) :- q(T).")
        registry = MetricsRegistry()
        registry.rule(rules[0]).seconds = 0.1
        registry.rule(rules[1]).seconds = 0.9
        assert [r.id for r in registry.hot()] == ["r2", "r1"]

    def test_export_into_stats_extra(self):
        rules, db = _load(EVEN_ODD)
        stats, registry = EvalStats(), MetricsRegistry()
        fixpoint(rules, db, HORIZON, stats=stats, metrics=registry)
        assert stats.extra["rules"] == registry.to_dict()
        record = stats.extra["rules"][0]
        assert set(record) == {"id", "label", "line", "firings",
                               "new_facts", "duplicates", "probes",
                               "seconds", "per_round"}


# ---------------------------------------------------------------------------
# The credit invariant, engine by engine
# ---------------------------------------------------------------------------

class TestCreditInvariant:
    def _check(self, registry, stats):
        assert stats.facts_derived > 0
        assert registry.total_new_facts == stats.facts_derived

    def test_seminaive_fixpoint(self):
        rules, db = _load(EVEN_ODD)
        stats, registry = EvalStats(), MetricsRegistry()
        fixpoint(rules, db, HORIZON, stats=stats, metrics=registry)
        self._check(registry, stats)

    def test_bt_verbatim(self):
        rules, db = _load(EVEN_ODD)
        stats, registry = EvalStats(), MetricsRegistry()
        bt_verbatim(rules, db, HORIZON, stats=stats, metrics=registry)
        self._check(registry, stats)

    def test_bt_evaluate_with_deepening(self):
        rules, db = _load(EVEN_ODD)
        stats, registry = EvalStats(), MetricsRegistry()
        bt_evaluate(rules, db, stats=stats, metrics=registry)
        self._check(registry, stats)

    def test_stratified_window(self):
        rules, db = _load(STRATIFIED)
        stats, registry = EvalStats(), MetricsRegistry()
        store = evaluate_window(rules, db, HORIZON, stats=stats,
                                metrics=registry)
        assert Fact("safe", 3, ("a",)) in store
        assert Fact("safe", 3, ("b",)) not in store
        self._check(registry, stats)

    def test_interval_engine(self):
        rules, db = _load(EVEN_ODD)
        stats, registry = EvalStats(), MetricsRegistry()
        interval_fixpoint(rules, db, HORIZON, stats=stats,
                          metrics=registry)
        self._check(registry, stats)

    def test_topdown(self):
        rules, db = _load(EVEN_ODD)
        stats, registry = EvalStats(), MetricsRegistry()
        assert topdown_ask(rules, db, Fact("even", 8, ()),
                           stats=stats, metrics=registry)
        self._check(registry, stats)

    def test_magic(self):
        rules, db = _load(EVEN_ODD)
        stats, registry = EvalStats(), MetricsRegistry()
        assert magic_ask(rules, db, Fact("even", 8, ()),
                         stats=stats, metrics=registry)
        self._check(registry, stats)
        # Rewritten rules inherit the source rule's span.
        assert any(r.line is not None for r in registry)

    def test_incremental_insert_paths(self):
        rules, db = _load(EVEN_ODD)
        stats, registry = EvalStats(), MetricsRegistry()
        model = IncrementalModel(rules, db, stats=stats,
                                 metrics=registry)
        self._check(registry, stats)
        model.insert(Fact("even", 4, ()))      # duplicate seed
        model.insert(Fact("odd", 5, ()))
        self._check(registry, stats)

    def _datalog_rules(self):
        return [
            Rule(Atom("tc", None, (Var("X"), Var("Y"))),
                 (Atom("edge", None, (Var("X"), Var("Y"))),)),
            Rule(Atom("tc", None, (Var("X"), Var("Z"))),
                 (Atom("edge", None, (Var("X"), Var("Y"))),
                  Atom("tc", None, (Var("Y"), Var("Z"))))),
        ]

    def test_datalog_naive(self):
        edb = [Fact("edge", None, (f"v{i}", f"v{i + 1}"))
               for i in range(5)]
        stats, registry = EvalStats(), MetricsRegistry()
        naive_evaluate(self._datalog_rules(), edb, stats=stats,
                       metrics=registry)
        self._check(registry, stats)

    def test_datalog_seminaive(self):
        edb = [Fact("edge", None, (f"v{i}", f"v{i + 1}"))
               for i in range(5)]
        stats, registry = EvalStats(), MetricsRegistry()
        seminaive_evaluate(self._datalog_rules(), edb, stats=stats,
                           metrics=registry)
        self._check(registry, stats)

    def test_naive_and_seminaive_agree_per_rule(self):
        edb = [Fact("edge", None, (f"v{i}", f"v{i + 1}"))
               for i in range(5)]
        naive_reg, semi_reg = MetricsRegistry(), MetricsRegistry()
        naive_evaluate(self._datalog_rules(), edb, metrics=naive_reg)
        seminaive_evaluate(self._datalog_rules(), edb,
                           metrics=semi_reg)
        assert naive_reg.total_new_facts == semi_reg.total_new_facts
        # Semi-naive re-derives strictly less than naive iteration.
        assert semi_reg.total_duplicates <= naive_reg.total_duplicates


# ---------------------------------------------------------------------------
# Duplicates cross-checked against the explanation machinery
# ---------------------------------------------------------------------------

class TestDuplicateAttribution:
    def test_duplicates_are_alternative_derivations(self):
        rules, db = _load(DIAMOND)
        stats, registry = EvalStats(), MetricsRegistry()
        store = fixpoint(rules, db, HORIZON, stats=stats,
                         metrics=registry)
        assert registry.total_new_facts == stats.facts_derived
        # p(t) has two derivations for every t in 1..HORIZON: exactly
        # one per-rule credit and at least one duplicate each round.
        p_rules = [r for r in registry if r.label.startswith("p(")]
        assert sum(r.new_facts for r in p_rules) == HORIZON
        assert sum(r.duplicates for r in p_rules) >= HORIZON
        # The duplicated fact is genuinely in the model, with a
        # derivation tree rooted at one of the two p-rules — the
        # duplicate counter records the *other* proof existing.
        tree = explain(rules, db, store, Fact("p", 5, ()))
        assert tree.rule is not None
        assert tree.rule.head.pred == "p"

    def test_deterministic_programs_have_no_duplicates(self):
        rules, db = _load(EVEN_ODD)
        registry = MetricsRegistry()
        fixpoint(rules, db, HORIZON, metrics=registry)
        assert registry.total_duplicates == 0


# ---------------------------------------------------------------------------
# Zero-cost-when-disabled discipline
# ---------------------------------------------------------------------------

class TestDisabledPath:
    def test_disabled_run_allocates_no_metric_objects(self):
        rules, db = _load(EVEN_ODD)
        fixpoint(rules, db, HORIZON)                     # warm caches
        gc.collect()
        before = sum(isinstance(obj, (RuleMetrics, Histogram))
                     for obj in gc.get_objects())
        fixpoint(rules, db, HORIZON, stats=EvalStats())
        bt_verbatim(rules, db, HORIZON)
        interval_fixpoint(rules, db, HORIZON)
        gc.collect()
        after = sum(isinstance(obj, (RuleMetrics, Histogram))
                    for obj in gc.get_objects())
        assert after == before

    def test_profiled_model_equals_unprofiled_model(self):
        rules, db = _load(DIAMOND)
        reference = fixpoint(rules, db, HORIZON)
        profiled = fixpoint(rules, db, HORIZON,
                            metrics=MetricsRegistry())
        assert profiled.segment(0, HORIZON) == \
            reference.segment(0, HORIZON)


# ---------------------------------------------------------------------------
# run_start trace header (schema version header)
# ---------------------------------------------------------------------------

class TestRunStartEvent:
    def test_payload(self):
        sink = ListSink()
        tracer = Tracer(sink)
        tracer.emit_run_start("bt", program="x.tdd", text="even(0).\n")
        (event,) = sink.events
        assert event["event"] == "run_start"
        assert event["engine"] == "bt"
        assert event["schema"] == TRACE_SCHEMA == 4
        assert event["program"] == "x.tdd"
        assert len(event["sha256"]) == 64
        from repro import __version__
        assert event["version"] == __version__

    def test_optional_fields_omitted(self):
        sink = ListSink()
        Tracer(sink).emit_run_start("interval")
        (event,) = sink.events
        assert "program" not in event and "sha256" not in event

    def test_disabled_tracer_is_a_noop(self):
        Tracer(None).emit_run_start("bt", program="x.tdd", text="p.")
