"""Property tests for the diagnostics engine: pretty-print round trips.

Diagnostics must be a function of the program's *structure*, not of the
incidental source layout: pretty-printing a program and reparsing it has
to preserve rule/fact equality (spans are excluded from equality) and
produce the same multiset of diagnostic codes.
"""

from __future__ import annotations

from collections import Counter

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.analysis import run_checks
from repro.lang import format_program, parse_program
from repro.lang.atoms import Atom
from repro.lang.rules import Rule
from repro.lang.terms import Const, TimeTerm, Var

SETTINGS = settings(max_examples=50, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

PREDICATES = {
    # name -> (temporal, data arity)
    "p": (True, 1),
    "q": (True, 0),
    "r": (False, 2),
    "s": (False, 1),
}
DATA_VARS = ["X", "Y"]
CONSTANTS = ["a", "b", "c7"]


@st.composite
def atoms(draw, allow_vars: bool = True):
    name = draw(st.sampled_from(sorted(PREDICATES)))
    temporal, arity = PREDICATES[name]
    if temporal:
        if allow_vars:
            time = TimeTerm("T", draw(st.integers(0, 3)))
        else:
            time = TimeTerm(None, draw(st.integers(0, 9)))
    else:
        time = None
    args = []
    for _ in range(arity):
        if allow_vars and draw(st.booleans()):
            args.append(Var(draw(st.sampled_from(DATA_VARS))))
        else:
            args.append(Const(draw(st.sampled_from(CONSTANTS))))
    return Atom(name, time, tuple(args))


@st.composite
def rules(draw):
    body = [draw(atoms()) for _ in range(draw(st.integers(1, 3)))]
    if not any(a.time is not None for a in body):
        body.append(Atom("q", TimeTerm("T", 0), ()))
    body_vars = {v.name for a in body for v in a.data_variables()}
    head_name = draw(st.sampled_from(["p", "q"]))
    _, arity = PREDICATES[head_name]
    head_args = tuple(
        Var(draw(st.sampled_from(sorted(body_vars))))
        if body_vars else Const(draw(st.sampled_from(CONSTANTS)))
        for _ in range(arity)
    )
    head = Atom(head_name, TimeTerm("T", draw(st.integers(0, 3))),
                head_args)
    negative = ()
    if draw(st.booleans()) and body_vars:
        neg = draw(atoms())
        neg_vars = {v.name for v in neg.data_variables()}
        if neg_vars <= body_vars:
            negative = (neg,)
    return Rule(head, tuple(body), negative)


@st.composite
def programs(draw):
    rule_list = [draw(rules()) for _ in range(draw(st.integers(1, 4)))]
    facts = [draw(atoms(allow_vars=False)).to_fact()
             for _ in range(draw(st.integers(0, 4)))]
    return rule_list, facts


def diagnostic_codes(rules_, facts, query=None):
    return Counter(d.code for d in run_checks(rules_, facts,
                                              query=query))


class TestDiagnosticsRoundTrip:
    @SETTINGS
    @given(programs())
    def test_reparse_preserves_structure_and_codes(self, program):
        rule_list, facts = program
        temporal_preds = {name for name, (temporal, _)
                          in PREDICATES.items() if temporal}
        text = format_program(rule_list, facts, temporal_preds)
        reparsed = parse_program(text, validate=False)

        # Spans differ (generated rules have none, reparsed ones do),
        # but equality is span-blind.
        assert set(reparsed.rules) == set(rule_list)

        before = diagnostic_codes(rule_list, facts)
        after = diagnostic_codes(list(reparsed.rules),
                                 list(reparsed.facts))
        assert before == after

    @SETTINGS
    @given(programs(), st.sampled_from(sorted(PREDICATES) + ["ghost"]))
    def test_query_aware_codes_survive_reparse(self, program, query):
        """The query-gated checks (TDD018/TDD019) and the
        classification-backed ones (TDD020/TDD021) are also functions
        of structure alone: reparsing the pretty-printed program with a
        query predicate named must reproduce the same code multiset —
        including for a query predicate the program never mentions."""
        rule_list, facts = program
        temporal_preds = {name for name, (temporal, _)
                          in PREDICATES.items() if temporal}
        text = format_program(rule_list, facts, temporal_preds)
        reparsed = parse_program(text, validate=False)
        before = diagnostic_codes(rule_list, facts, query=query)
        after = diagnostic_codes(list(reparsed.rules),
                                 list(reparsed.facts), query=query)
        assert before == after

    @SETTINGS
    @given(programs())
    def test_reparsed_diagnostics_carry_spans(self, program):
        rule_list, facts = program
        temporal_preds = {name for name, (temporal, _)
                          in PREDICATES.items() if temporal}
        text = format_program(rule_list, facts, temporal_preds)
        reparsed = parse_program(text, validate=False)
        lines = text.splitlines()
        for diag in run_checks(list(reparsed.rules),
                               list(reparsed.facts)):
            if diag.span is None:
                continue  # whole-program diagnostics have no anchor
            assert 1 <= diag.span.line <= len(lines)
            assert diag.span.column >= 1
