"""Tests for relational specifications (Section 3.3)."""

import pytest

from repro.core import compute_specification, spec_from_result
from repro.lang.atoms import Fact
from repro.lang.errors import EvaluationError
from repro.rewrite import RewriteRule, RewriteSystem
from repro.temporal import bt_evaluate


class TestEvenExample:
    """The paper's worked specification: T={0,1}, B={even(0)}, W={2->0}."""

    @pytest.fixture()
    def spec(self, even_program, even_db):
        return compute_specification(even_program.rules, even_db)

    def test_representatives(self, spec):
        assert spec.representatives == (0, 1)

    def test_primary_database(self, spec):
        assert set(spec.primary.facts()) == {Fact("even", 0, ())}

    def test_rewrite_system(self, spec):
        assert spec.rewrites == RewriteSystem([RewriteRule(2, 0)])

    def test_paper_queries(self, spec):
        # even(4) ~> even(2) ~> even(0) in B: yes.
        assert spec.holds(Fact("even", 4, ()))
        # even(3) ~> even(1) not in B: no.
        assert not spec.holds(Fact("even", 3, ()))

    def test_far_queries(self, spec):
        assert spec.holds(Fact("even", 10 ** 18, ()))
        assert not spec.holds(Fact("even", 10 ** 18 + 1, ()))

    def test_size(self, spec):
        assert spec.size == 2 + 1 + 1  # |T| + |B| + |W|

    def test_state_reconstruction(self, spec):
        assert spec.state(100) == frozenset({("even", ())})
        assert spec.state(101) == frozenset()


class TestSpecProperties:
    def test_spec_matches_model_on_window(self, travel_program,
                                          travel_db):
        result = bt_evaluate(travel_program.rules, travel_db)
        spec = spec_from_result(result)
        for fact in result.store.temporal_facts():
            assert spec.holds(fact), fact
        # Sample of negatives.
        for t in range(0, 400, 17):
            fact = Fact("plane", t, ("nowhere",))
            assert spec.holds(fact) == result.holds(fact)

    def test_primary_covers_exactly_first_period(self, travel_program,
                                                 travel_db):
        spec = compute_specification(travel_program.rules, travel_db)
        assert spec.primary.max_time() <= spec.b + spec.p - 1
        assert len(spec.representatives) == spec.b + spec.p

    def test_active_domain(self, travel_program, travel_db):
        spec = compute_specification(travel_program.rules, travel_db)
        assert "hunter" in spec.active_domain()

    def test_no_period_raises(self, even_program, even_db):
        result = bt_evaluate(even_program.rules, even_db, window=2)
        assert result.period is None
        with pytest.raises(EvaluationError):
            spec_from_result(result)

    def test_non_temporal_facts_in_primary(self, path_program, path_db):
        spec = compute_specification(path_program.rules, path_db)
        assert spec.holds(Fact("edge", None, ("a", "b")))
        assert not spec.holds(Fact("edge", None, ("a", "z")))

    def test_inflationary_spec_period_one(self, path_program, path_db):
        spec = compute_specification(path_program.rules, path_db)
        assert spec.p == 1
        # Once reachable, always reachable.
        assert spec.holds(Fact("path", 10 ** 9, ("a", "d")))
        assert not spec.holds(Fact("path", 10 ** 9, ("d", "a")))

    def test_representative_of_idempotent(self, even_program, even_db):
        spec = compute_specification(even_program.rules, even_db)
        for t in range(50):
            r = spec.representative_of(t)
            assert spec.representative_of(r) == r
            assert r in spec.representatives


class TestFactsBetween:
    def test_deep_range_materialisation(self, even_program, even_db):
        spec = compute_specification(even_program.rules, even_db)
        base = 10 ** 12
        facts = list(spec.facts_between(base, base + 4))
        times = [f.time for f in facts]
        assert times == [base, base + 2, base + 4]
        assert all(f.pred == "even" for f in facts)

    def test_matches_direct_window(self, travel_program, travel_db):
        from repro.temporal import fixpoint
        spec = compute_specification(travel_program.rules, travel_db)
        direct = fixpoint(travel_program.rules, travel_db, 60)
        via_spec = {
            (f.pred, f.time, f.args)
            for f in spec.facts_between(20, 60)
        }
        expected = {
            (f.pred, f.time, f.args)
            for f in direct.temporal_facts()
            if 20 <= f.time <= 60
        }
        assert via_spec == expected
