"""Tests for static program analysis and linting."""

from repro.core import analyze, lint
from repro.lang import parse_program, parse_rules


def codes(diagnostics):
    return {d.code for d in diagnostics}


class TestReportStructure:
    def test_travel_inventory(self, travel_program):
        report = analyze(travel_program.rules, travel_program.facts)
        assert report.predicates["plane"]["temporal"]
        assert report.predicates["plane"]["arity"] == 1
        assert report.predicates["plane"]["role"] == "idb+edb"
        assert report.predicates["resort"]["role"] == "edb"
        assert not report.predicates["resort"]["temporal"]

    def test_recursion_and_forwardness(self, travel_program):
        report = analyze(travel_program.rules, travel_program.facts)
        assert report.recursive == {"plane", "offseason", "winter",
                                    "holiday"}
        assert report.forward
        assert report.lookback == 365
        assert report.temporal_depth == 365

    def test_classification_summary(self, travel_program, path_program):
        travel = analyze(travel_program.rules, travel_program.facts)
        assert travel.multi_separable and travel.inflationary is False
        path = analyze(path_program.rules, path_program.facts)
        assert path.inflationary is True and not path.multi_separable

    def test_strata_reported(self):
        program = parse_program(
            "out(T) :- slot(T), not jam(T).\n"
            "slot(T+2) :- slot(T).\nslot(0).\njam(3).\n@temporal jam.")
        report = analyze(program.rules, program.facts)
        assert report.strata["out"] == report.strata["jam"] + 1

    def test_render_is_text(self, even_program):
        report = analyze(even_program.rules, even_program.facts)
        text = report.render()
        assert "even/0" in text
        assert "recursive predicates" in text


class TestLint:
    def test_clean_program_has_no_warnings(self, travel_program):
        report = analyze(travel_program.rules, travel_program.facts)
        assert not report.warnings

    def test_dead_rule_detected(self):
        program = parse_program(
            "q(T+1, X) :- ghost(T, X).\n@temporal ghost. @temporal q.")
        diagnostics = lint(program.rules, program.facts)
        assert "TDD011" in codes(diagnostics)  # dead-rule

    def test_supported_via_chain_not_flagged(self):
        program = parse_program(
            "a(T+1, X) :- base(T, X).\nb(T+1, X) :- a(T, X).\n"
            "base(0, k).")
        diagnostics = lint(program.rules, program.facts)
        assert "TDD011" not in codes(diagnostics)

    def test_unused_predicate_is_info_only(self):
        program = parse_program(
            "top(T+1, X) :- base(T, X).\nbase(0, k).")
        report = analyze(program.rules, program.facts)
        infos = [d for d in report.diagnostics if d.code == "TDD013"]
        assert infos and all(d.severity == "info" for d in infos)
        assert all(d.name == "unused-predicate" for d in infos)

    def test_non_forward_warning(self):
        rules = parse_rules(
            "@temporal q.\np(T) :- q(T+1).\nq(T+1) :- q(T).")
        report = analyze(rules)
        assert "TDD007" in codes(report.warnings)  # non-forward

    def test_non_normal_info(self, travel_program):
        report = analyze(travel_program.rules, travel_program.facts)
        assert "TDD014" in codes(report.diagnostics)  # non-normal

    def test_intractable_warning(self):
        program = parse_program(
            "p(T+1, X) :- p(T, Y), swap(Y, X).\n"
            "p(0, a). swap(a, b). swap(b, a).")
        report = analyze(program.rules, program.facts)
        # TDD017: no-tractability-guarantee
        assert "TDD017" in codes(report.warnings)

    def test_non_stratifiable_is_error(self):
        rules = parse_rules("win(X) :- move(X, Y), not win(Y).")
        report = analyze(rules)
        assert not report.stratifiable
        assert "TDD006" in codes(report.errors)  # not-stratifiable


class TestJoinPlans:
    def test_bound_atoms_lead(self):
        from repro.core import join_plans
        rules = parse_rules(
            "p(T+1, X) :- big(T, X, Y), p(T, X), tiny(X).")
        plans = join_plans(rules)
        (order,) = plans.values()
        # tiny(X) and p(T,X) have fewer unbound slots than big/3; the
        # greedy planner must not start with the 3-ary atom... the
        # first pick maximises bound slots (all zero initially), so we
        # only assert the plan covers all atoms exactly once.
        assert sorted(order) == sorted(
            ["big(T, X, Y)", "p(T, X)", "tiny(X)"])

    def test_constants_count_as_bound(self):
        from repro.core import join_plans
        rules = parse_rules("p(T+1, X) :- q(T, X), fixed(T, a).")
        plans = join_plans(rules)
        (order,) = plans.values()
        assert order[0] == "fixed(T, a)"  # the constant makes it boundest

    def test_facts_excluded(self, even_program):
        from repro.core import join_plans
        plans = join_plans(even_program.rules)
        assert len(plans) == 1
