"""Tests for the functional-DDB generalization (Section 7)."""

import pytest

from repro.functional import (FAtom, FFact, FRule, FTerm,
                              WordRewriteSystem, WordRule, ffixpoint,
                              fvar, ground, infer_word_spec,
                              word_states)
from repro.lang.errors import EvaluationError
from repro.lang.terms import Var


class TestFTerm:
    def test_str_rendering(self):
        assert str(ground(("f", "g"))) == "f(g(0))"
        assert str(fvar("X", ("f",))) == "f(X)"
        assert str(ground(())) == "0"

    def test_apply_wraps_outermost(self):
        assert ground(("g",)).apply("f") == ground(("f", "g"))

    def test_instantiate(self):
        assert fvar("X", ("f",)).instantiate(("g",)) == ("f", "g")
        assert ground(("f",)).instantiate(("zzz",)) == ("f",)

    def test_matching(self):
        matched, binding = fvar("X", ("f",)).matches(("f", "g"))
        assert matched and binding == ("g",)
        matched, _ = fvar("X", ("f",)).matches(("g", "f"))
        assert not matched
        matched, binding = ground(("f",)).matches(("f",))
        assert matched and binding is None

    def test_variable_matches_zero(self):
        matched, binding = fvar("X").matches(())
        assert matched and binding == ()


class TestEngine:
    def test_single_symbol_mirrors_tdd(self):
        # p(f(f(X))) :- p(X): the even example with f = +1 twice.
        rule = FRule(FAtom("p", fvar("X", ("f", "f"))),
                     (FAtom("p", fvar("X")),))
        model = ffixpoint([rule], [FFact("p", ())], max_depth=8)
        depths = sorted(len(f.word) for f in model)
        assert depths == [0, 2, 4, 6, 8]

    def test_two_symbols_branch(self):
        # every word over {a, b} becomes reachable.
        rules = [
            FRule(FAtom("p", fvar("X", ("a",))),
                  (FAtom("p", fvar("X")),)),
            FRule(FAtom("p", fvar("X", ("b",))),
                  (FAtom("p", fvar("X")),)),
        ]
        model = ffixpoint(rules, [FFact("p", ())], max_depth=4)
        assert len(model) == 2 ** 5 - 1  # all words of length 0..4

    def test_depth_bound_respected(self):
        rule = FRule(FAtom("p", fvar("X", ("f",))),
                     (FAtom("p", fvar("X")),))
        model = ffixpoint([rule], [FFact("p", ())], max_depth=3)
        assert max(len(f.word) for f in model) == 3

    def test_data_arguments_join(self):
        rules = [
            FRule(FAtom("q", fvar("X", ("f",)), (Var("Y"),)),
                  (FAtom("p", fvar("X"), (Var("Y"),)),
                   FAtom("ok", None, (Var("Y"),)))),
        ]
        facts = [FFact("p", (), ("m",)), FFact("p", (), ("n",)),
                 FFact("ok", None, ("m",))]
        model = ffixpoint(rules, facts, max_depth=3)
        assert FFact("q", ("f",), ("m",)) in model
        assert FFact("q", ("f",), ("n",)) not in model

    def test_word_states_domain_explodes(self):
        rules = [
            FRule(FAtom("p", fvar("X", (s,))), (FAtom("p", fvar("X")),))
            for s in ("a", "b")
        ]
        model = ffixpoint(rules, [FFact("p", ())], max_depth=6)
        states = word_states(model)
        # 2^0 + ... + 2^6 distinct inhabited words: exponential in depth,
        # the Section 7 obstacle to Theorem 4.1.
        assert len(states) == 2 ** 7 - 1

    def test_fact_rules(self):
        rule = FRule(FAtom("p", FTerm(None, ("f",))))
        model = ffixpoint([rule], [], max_depth=2)
        assert FFact("p", ("f",)) in model


class TestWordRewriting:
    def test_single_symbol_degenerates_to_modular(self):
        # f·f -> 0 is exactly the even-example rule 2 -> 0.
        system = WordRewriteSystem([WordRule(("f", "f"), ())])
        assert system.normalize(("f",) * 6) == ()
        assert system.normalize(("f",) * 7) == ("f",)

    def test_suffix_application(self):
        # g(f(f(0))) has the subterm f(f(0)): rewriting is allowed.
        system = WordRewriteSystem([WordRule(("f", "f"), ())])
        assert system.normalize(("g", "f", "f")) == ("g",)
        # but f(g(0)) does not contain f(f(0)).
        assert system.normalize(("f", "g")) == ("f", "g")

    def test_multi_symbol_rules(self):
        system = WordRewriteSystem([
            WordRule(("a", "a"), ("b",)),
            WordRule(("b", "b"), ()),
        ])
        assert system.is_terminating
        canonical = system.normalize(("a", "a", "a", "a"))
        assert system.is_canonical(canonical)

    def test_non_terminating_guard(self):
        system = WordRewriteSystem([WordRule(("a",), ("a", "a"))])
        assert not system.is_terminating
        with pytest.raises(EvaluationError):
            system.normalize(("a",), max_steps=10)

    def test_non_decreasing_but_terminating_run(self):
        # a -> bb grows once and then stops; normalize still succeeds
        # even though the sufficient termination check is conservative.
        system = WordRewriteSystem([WordRule(("a",), ("b", "b"))])
        assert not system.is_terminating
        assert system.normalize(("a",)) == ("b", "b")

    def test_canonical_forms_exponential(self):
        # With no applicable rules over {a, b}, every word is canonical:
        # the representative set T must be exponential in the depth.
        system = WordRewriteSystem([WordRule(("a", "a", "a", "a"), ())])
        forms = system.canonical_forms(("a", "b"), max_depth=5)
        assert len(forms) > 2 ** 5


class TestWordSpecInference:
    """Myhill–Nerode-style specification inference (the [6] idea)."""

    def test_even_fddb_recovers_tdd_spec(self):
        rule = FRule(FAtom("p", fvar("X", ("f", "f"))),
                     (FAtom("p", fvar("X")),))
        model = ffixpoint([rule], [FFact("p", ())], max_depth=10)
        spec = infer_word_spec(model, ("f",), depth=10)
        assert spec is not None
        # Exactly the paper's even example: T={0, f(0)}, W={f(f(0))->0}.
        assert set(spec.representatives) == {(), ("f",)}
        assert str(spec.rewrites) == "{ff·0 -> 0}"
        assert spec.holds(FFact("p", ("f",) * 100))
        assert not spec.holds(FFact("p", ("f",) * 101))

    def test_branching_uniform_model_collapses(self):
        rules = [
            FRule(FAtom("p", fvar("X", (s,))), (FAtom("p", fvar("X")),))
            for s in ("a", "b")
        ]
        model = ffixpoint(rules, [FFact("p", ())], max_depth=6)
        spec = infer_word_spec(model, ("a", "b"), depth=6)
        assert spec is not None
        assert len(spec.representatives) == 1
        assert spec.holds(FFact("p", ("a", "b") * 40))

    def test_dead_class_for_unreachable_words(self):
        rules = [FRule(FAtom("p", fvar("X", ("a",))),
                       (FAtom("p", fvar("X")),))]
        model = ffixpoint(rules, [FFact("p", ())], max_depth=6)
        spec = infer_word_spec(model, ("a", "b"), depth=6)
        assert spec is not None
        assert spec.holds(FFact("p", ("a",) * 50))
        assert not spec.holds(FFact("p", ("a", "b", "a")))

    def test_open_congruence_reports_none(self):
        # With classify_depth 0 (depth == evidence), only the empty word
        # is classified while its extensions spawn unclassified words:
        # the congruence cannot demonstrate closure and must say so.
        rules = [FRule(FAtom("p", fvar("X", ("a", "a"))),
                       (FAtom("p", fvar("X")),))]
        model = ffixpoint(rules, [FFact("p", ())], max_depth=2)
        assert infer_word_spec(model, ("a",), depth=2,
                               evidence=2) is None

    def test_depth_too_small_raises(self):
        with pytest.raises(EvaluationError):
            infer_word_spec([], ("a",), depth=1, evidence=3)

    def test_non_temporal_facts_kept_in_primary(self):
        rules = [FRule(FAtom("p", fvar("X", ("a",))),
                       (FAtom("p", fvar("X")),
                        FAtom("ok", None, ())))]
        model = ffixpoint(rules, [FFact("p", ()),
                                  FFact("ok", None, ())], max_depth=6)
        spec = infer_word_spec(model, ("a",), depth=6)
        assert spec is not None
        assert spec.holds(FFact("ok", None, ()))

    def test_size_accounting(self):
        rule = FRule(FAtom("p", fvar("X", ("f", "f"))),
                     (FAtom("p", fvar("X")),))
        model = ffixpoint([rule], [FFact("p", ())], max_depth=10)
        spec = infer_word_spec(model, ("f",), depth=10)
        assert spec.size == 2 + 1 + 1
