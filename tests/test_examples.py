"""Golden-output tests: every example script must run and say the
right things.  These guard the examples against API drift."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": [
        "minimal period:   (b=0, p=2)",
        "W (rewrite rules):   {2 -> 0}",
        "even(1000000000000000000)? True",
        "infinite?          True",
    ],
    "travel_agent.py": [
        "multi-separable: True   separable: False   inflationary: False",
        "(b=11, p=365)",
        "day     12 [   holiday]: YES",
    ],
    "graph_reachability.py": [
        "inflationary:    True",
        "p=1",
    ],
    "maintenance_windows.py": [
        "multi-separable: True",
        "p=210",
        "web degraded on day 1000000000?",
    ],
    "boundedness_bridge.py": [
        "slice t == naive stage t, checked on the window: True",
        "16 |                 16 |                   16",
    ],
    "blackout_scheduling.py": [
        "(b=0, p=15), certified=True",
        "alarms exist:  True",
    ],
    "token_ring.py": [
        "provably tractable by the paper's criteria: False",
        "p equals the ring size 7",
        "at most one token holder at any time: True",
    ],
    "live_network.py": [
        "0 full recomputations",
        "monitor reaches edge1 within 10^9 hops? True",
        "monitor reaches edge2 within 10^9 hops? False",
    ],
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs_and_prints_expected_lines(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in CASES[script]:
        assert needle in result.stdout, (
            f"{script}: expected {needle!r} in output;\n"
            f"stdout tail:\n{result.stdout[-1500:]}"
        )


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(CASES), (
        "examples and golden cases out of sync: "
        f"{scripts ^ set(CASES)}"
    )
