"""QueryService semantics: batching, deadlines, degradation, HTTP.

Complements the differential suite (answer correctness) and the
concurrency suite (thread safety) with the service's behavioural
contract: batch grouping, per-request error isolation, deadline-driven
degradation, stats threading, and the JSON-over-HTTP protocol.
"""

from __future__ import annotations

import pytest

from repro.obs import EvalStats
from repro.serve import QueryRequest, QueryService, SpecCache

EVEN = "even(T+2) :- even(T).\neven(0).\n"
TRAVEL = """
plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
plane(T+1, X) :- plane(T, X), resort(X), holiday(T).
offseason(T+365) :- offseason(T).
winter(T+365) :- winter(T).
holiday(T+365) :- holiday(T).

plane(12, hunter).
resort(hunter).
winter(0..90).
offseason(91..364).
holiday(5).
holiday(12).
"""


@pytest.fixture()
def service():
    return QueryService(cache=SpecCache())


class TestBatching:
    def test_batch_groups_by_program(self, service):
        requests = (
            [QueryRequest(program=EVEN, query=f"even({t})")
             for t in (0, 1, 2, 3)]
            + [QueryRequest(program=TRAVEL,
                            query="plane(12, hunter)")]
        )
        responses = service.serve_batch(requests)
        assert [r.answer for r in responses] == [True, False, True,
                                                 False, True]
        # Two distinct programs -> exactly two BT runs for five
        # requests, and the spec is canonicalised through W once per
        # group (all requests share the group's spec object).
        assert service.counters()["spec_computes"] == 2
        assert service.counters()["max_batch"] == 5

    def test_response_order_matches_requests(self, service):
        requests = [
            QueryRequest(program=TRAVEL, query="plane(12, hunter)"),
            QueryRequest(program=EVEN, query="even(1)"),
            QueryRequest(program=TRAVEL, query="plane(13, hunter)"),
            QueryRequest(program=EVEN, query="even(2)"),
        ]
        answers = [r.answer for r in service.serve_batch(requests)]
        assert answers == [True, False, True, True]

    def test_bad_request_does_not_poison_the_batch(self, service):
        requests = [
            QueryRequest(program=EVEN, query="even(0)"),
            QueryRequest(program=EVEN, query="even(("),
            QueryRequest(program=EVEN, query="even(X)"),  # open 'ask'
            QueryRequest(program=EVEN, query="even(2)",
                         kind="mystery"),
            QueryRequest(program="p(T+1) :- p(T", query="p(0)"),
            QueryRequest(program=EVEN, query="even(2)"),
        ]
        responses = service.serve_batch(requests)
        assert [r.ok for r in responses] == [True, False, False, False,
                                             False, True]
        assert "closed query" in responses[2].error
        assert "unknown request kind" in responses[3].error
        assert "parse error" in responses[4].error
        assert responses[5].answer is True
        assert service.counters()["errors"] == 4


class TestDeadlines:
    def test_zero_deadline_degrades_but_still_answers(self, service):
        response = service.serve(QueryRequest(
            program=EVEN, query="even(40)", deadline=0.0))
        assert response.ok and response.degraded
        assert response.answer is True
        assert service.counters()["degraded"] == 1
        # Beyond the degraded window the spec path would still answer;
        # degraded open answers are explicitly windowed instead.
        open_response = service.serve(QueryRequest(
            program=EVEN, query="even(X)", kind="answers",
            deadline=0.0))
        assert open_response.degraded
        window = open_response.answer["window"]
        assert {sub["X"] for sub in open_response.answer["concrete"]} \
            == set(range(0, window + 1, 2))

    def test_degraded_window_covers_ground_timepoints(self, service):
        response = service.serve(QueryRequest(
            program=EVEN, query="even(500)", deadline=0.0))
        assert response.ok and response.degraded
        assert response.answer is True

    def test_cache_hit_beats_the_deadline(self, service):
        service.serve(QueryRequest(program=EVEN, query="even(0)"))
        response = service.serve(QueryRequest(
            program=EVEN, query="even(10)", deadline=0.0))
        assert response.ok and not response.degraded
        assert response.answer is True

    def test_default_deadline_applies(self):
        strict = QueryService(cache=SpecCache(),
                              default_deadline=0.0)
        response = strict.serve(QueryRequest(program=EVEN,
                                             query="even(4)"))
        assert response.degraded and response.answer is True


class TestAnswerPayloads:
    def test_canonical_answer_payload(self, service):
        response = service.serve(QueryRequest(
            program=EVEN, query="even(X)", kind="answers", expand=8))
        payload = response.answer
        assert payload["variables"] == [["X", "time"]]
        assert payload["canonical"] == [{"X": 0}]
        assert payload["infinite"] is True
        assert (payload["b"], payload["p"]) == (0, 2)
        assert payload["expanded"] == [{"X": 0}, {"X": 2}, {"X": 4},
                                       {"X": 6}, {"X": 8}]

    def test_stats_attach_to_evalstats(self, service):
        service.serve(QueryRequest(program=EVEN, query="even(0)"))
        stats = EvalStats()
        service.attach_stats(stats)
        assert stats.extra["serve"]["requests"] == 1
        assert stats.extra["cache"]["stores"] == 1
        rendered = stats.summary()
        assert "serve" in rendered and "cache" in rendered


class TestRequestValidation:
    def test_from_dict_round_trip(self):
        request = QueryRequest.from_dict(
            {"program": EVEN, "query": "even(0)", "kind": "answers",
             "deadline": 1.5, "expand": 9})
        assert request.kind == "answers"
        assert request.deadline == 1.5 and request.expand == 9

    @pytest.mark.parametrize("bad", [
        "just a string",
        {"query": "even(0)"},
        {"program": EVEN},
        {"program": 7, "query": "even(0)"},
        {"program": EVEN, "query": "even(0)", "surprise": 1},
        {"program": EVEN, "query": "even(0)", "engine": "warp"},
        {"program": EVEN, "query": "even(0)", "engine": 3},
    ])
    def test_from_dict_rejects(self, bad):
        with pytest.raises(ValueError):
            QueryRequest.from_dict(bad)

    def test_from_dict_accepts_engine(self):
        request = QueryRequest.from_dict(
            {"program": EVEN, "query": "even(0)",
             "engine": "compiled"})
        assert request.engine == "compiled"


class TestEngineSelection:
    def test_compiled_service_answers_identically(self):
        bt = QueryService(cache=SpecCache())
        compiled = QueryService(cache=SpecCache(), engine="compiled")
        for query in ("even(0)", "even(1)", "even(40)"):
            a = bt.serve(QueryRequest(program=EVEN, query=query))
            b = compiled.serve(QueryRequest(program=EVEN, query=query))
            assert (a.ok, a.answer) == (b.ok, b.answer)

    def test_per_request_override_and_warm_hits(self, service):
        cold = service.serve(QueryRequest(program=EVEN, query="even(4)",
                                          engine="compiled"))
        assert cold.ok and cold.answer is True
        assert cold.source == "computed"
        # Cache keys are engine-free: a bt request now hits the spec
        # the compiled engine built (and vice versa), zero rounds run.
        warm = service.serve(QueryRequest(program=EVEN,
                                          query="even(6)"))
        assert warm.ok and warm.answer is True
        assert warm.source == "memory"
        assert service.counters()["spec_computes"] == 1

    def test_unknown_service_engine_rejected_eagerly(self):
        from repro.lang.errors import EvaluationError
        with pytest.raises(EvaluationError, match="unknown engine"):
            QueryService(cache=SpecCache(), engine="warp")

    def test_degraded_path_honours_request_engine(self):
        strict = QueryService(cache=SpecCache(), default_deadline=0.0)
        response = strict.serve(QueryRequest(
            program=EVEN, query="even(8)", engine="compiled"))
        assert response.ok and response.degraded
        assert response.answer is True


class TestHTTPServer:
    @pytest.fixture()
    def endpoint(self, serve_endpoint):
        return serve_endpoint()

    def _post(self, point, payload, path="/query"):
        return point.post_json(payload, path=path)

    def _get(self, point, path):
        return point.get_json(path)

    def test_query_batch_round_trip(self, endpoint):
        status, data = self._post(endpoint, {"requests": [
            {"program": EVEN, "query": "even(4)"},
            {"program": EVEN, "query": "even(X)", "kind": "answers",
             "expand": 4},
        ]})
        assert status == 200
        first, second = data["responses"]
        assert first["ok"] and first["answer"] is True
        assert second["answer"]["expanded"] == [{"X": 0}, {"X": 2},
                                                {"X": 4}]

    def test_single_request_body(self, endpoint):
        status, data = self._post(
            endpoint, {"program": EVEN, "query": "even(3)"})
        assert status == 200
        assert data["responses"][0]["answer"] is False

    def test_health_and_stats(self, endpoint):
        status, health = self._get(endpoint, "/healthz")
        assert status == 200 and health["ok"] is True
        self._post(endpoint, {"program": EVEN, "query": "even(0)"})
        status, stats = self._get(endpoint, "/stats")
        assert status == 200
        assert stats["serve"]["requests"] == 1
        assert stats["cache"]["lookups"] >= 1
        assert stats["latency"]["count"] == 1

    def test_malformed_body_is_400(self, endpoint):
        status, data = self._post(endpoint, "{not json")
        assert status == 400 and "error" in data
        status, data = self._post(endpoint, {"requests": []})
        assert status == 400
        status, data = self._post(
            endpoint, {"requests": [{"program": EVEN}]})
        assert status == 400

    def test_unknown_paths_are_404(self, endpoint):
        assert self._get(endpoint, "/nope")[0] == 404
        assert self._post(endpoint, {}, path="/nope")[0] == 404


class TestAdmissionControl:
    """The --max-predicted-cost gate: refuse before any spec work."""

    def test_costly_program_is_refused(self):
        strict = QueryService(cache=SpecCache(), max_predicted_cost=1.0)
        response = strict.serve(QueryRequest(program=TRAVEL,
                                             query="plane(12, hunter)"))
        assert response.ok is False
        assert response.refused is True
        assert response.degraded is False
        assert "admission control" in response.error
        assert "max_predicted_cost=1" in response.error
        assert response.key is not None
        assert response.trace_id is not None
        # Refusal happened before spec acquisition: no BT run, and the
        # whole batch of counters reconciles.
        counters = strict.counters()
        assert counters["refused"] == 1
        assert counters["spec_computes"] == 0
        assert counters["errors"] == 0
        assert strict.latency.to_dict()["count"] == 1

    def test_generous_budget_still_answers(self):
        generous = QueryService(cache=SpecCache(),
                                max_predicted_cost=1e12)
        response = generous.serve(QueryRequest(program=EVEN,
                                               query="even(4)"))
        assert response.ok is True
        assert response.refused is False
        assert response.answer is True
        assert generous.counters()["refused"] == 0

    def test_gate_disabled_by_default(self, service):
        assert service.max_predicted_cost is None
        response = service.serve(QueryRequest(program=EVEN,
                                              query="even(4)"))
        assert response.refused is False
        assert "refused" in response.to_dict()

    def test_whole_group_refused_and_cost_memoised(self):
        strict = QueryService(cache=SpecCache(), max_predicted_cost=1.0)
        requests = [QueryRequest(program=TRAVEL,
                                 query=f"plane({t}, hunter)")
                    for t in (12, 13, 14)]
        responses = strict.serve_batch(requests)
        assert all(r.refused for r in responses)
        assert strict.counters()["refused"] == 3
        # One program, one memoised estimate.
        assert len(strict._cost_memo) == 1
        strict.serve_batch(requests)
        assert strict.counters()["refused"] == 6
        assert len(strict._cost_memo) == 1

    def test_refused_counter_in_metrics_and_stats(self):
        strict = QueryService(cache=SpecCache(), max_predicted_cost=1.0)
        strict.serve(QueryRequest(program=TRAVEL,
                                  query="plane(12, hunter)"))
        assert "repro_refused_total 1" in strict.prometheus_text()
        assert strict.stats_dict()["serve"]["refused"] == 1
