"""Tests for interval compression and timeline rendering."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang.atoms import Fact
from repro.temporal import (TemporalStore, bt_evaluate,
                            compress, describe_periodic,
                            format_intervals, from_intervals, timeline,
                            to_intervals)


class TestToIntervals:
    def test_empty(self):
        assert to_intervals([]) == []

    def test_single_point(self):
        assert to_intervals([4]) == [(4, 4)]

    def test_contiguous_run(self):
        assert to_intervals([1, 2, 3, 4]) == [(1, 4)]

    def test_gaps_split(self):
        assert to_intervals([0, 1, 5, 6, 9]) == [(0, 1), (5, 6), (9, 9)]

    def test_unordered_with_duplicates(self):
        assert to_intervals([3, 1, 2, 2, 7]) == [(1, 3), (7, 7)]

    @settings(max_examples=50, deadline=None)
    @given(st.sets(st.integers(0, 60)))
    def test_roundtrip_property(self, points):
        intervals = to_intervals(points)
        expanded = {
            f.time for f in from_intervals("p", (), intervals)
        }
        assert expanded == points
        # Intervals must be disjoint, sorted, non-adjacent.
        for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
            assert hi1 + 1 < lo2


class TestCompress:
    def test_per_tuple_compression(self):
        store = TemporalStore([
            Fact("p", 0, ("a",)), Fact("p", 1, ("a",)),
            Fact("p", 5, ("a",)), Fact("p", 0, ("b",)),
        ])
        view = compress(store)
        assert view["p"][("a",)] == [(0, 1), (5, 5)]
        assert view["p"][("b",)] == [(0, 0)]

    def test_predicate_filter(self):
        store = TemporalStore([Fact("p", 0, ()), Fact("q", 0, ())])
        assert set(compress(store, predicates=["p"])) == {"p"}

    def test_format(self):
        assert format_intervals([(0, 3), (7, 7)]) == "0..3, 7"


class TestDescribePeriodic:
    def test_even_description(self, even_program, even_db):
        result = bt_evaluate(even_program.rules, even_db)
        desc = describe_periodic(result.store, result.period.b,
                                 result.period.p)
        assert desc["even"][()] == "0+2k"

    def test_travel_description_mentions_period(self, travel_program,
                                                travel_db):
        result = bt_evaluate(travel_program.rules, travel_db)
        desc = describe_periodic(result.store, result.period.b,
                                 result.period.p)
        text = desc["plane"][("hunter",)]
        assert "+365k" in text


class TestTimeline:
    def test_marks_and_gaps(self, even_program, even_db):
        result = bt_evaluate(even_program.rules, even_db)
        art = timeline(result.store, ["even"], until=6)
        row = [line for line in art.splitlines()
               if line.startswith("even")][0]
        assert row.endswith("x.x.x.x")

    def test_multiple_tuples_get_rows(self, path_program, path_db):
        result = bt_evaluate(path_program.rules, path_db)
        art = timeline(result.store, ["path"], until=4)
        rows = [line for line in art.splitlines()
                if line.startswith("path(")]
        assert len(rows) >= 4
