"""Tests for the TDD facade."""

import pytest

from repro import TDD
from repro.lang import ValidationError
from repro.lang.atoms import Atom, Fact
from repro.lang.terms import Const, TimeTerm

EVEN = "even(T+2) :- even(T).\neven(0).\n"


class TestConstruction:
    def test_from_text(self):
        tdd = TDD.from_text(EVEN)
        assert len(tdd.rules) == 1
        assert tdd.database.n == 1
        assert tdd.temporal_preds == {"even"}

    def test_from_parts(self, even_program):
        tdd = TDD(even_program.rules, even_program.facts)
        assert tdd.ask("even(2)")

    def test_invalid_rules_rejected(self, even_program):
        from repro.lang.rules import Rule
        from repro.lang.terms import Var
        bad = Rule(Atom("p", TimeTerm("T", 1), (Var("X"),)), ())
        with pytest.raises(ValidationError):
            TDD([bad])

    def test_repr(self):
        assert "1 rules" in repr(TDD.from_text(EVEN))


class TestAsk:
    @pytest.fixture(scope="class")
    def tdd(self):
        return TDD.from_text(EVEN)

    def test_text_queries(self, tdd):
        assert tdd.ask("even(4)")
        assert not tdd.ask("even(5)")
        assert tdd.ask("exists T: even(T)")
        assert tdd.ask("not even(1)")

    def test_fact_queries(self, tdd):
        assert tdd.ask(Fact("even", 6, ()))
        assert not tdd.ask(Fact("even", 7, ()))

    def test_atom_queries(self, tdd):
        assert tdd.ask(Atom("even", TimeTerm(None, 8), ()))

    def test_binding(self, tdd):
        assert tdd.ask("even(T)", binding={"T": 4})
        assert not tdd.ask("even(T)", binding={"T": 3})

    def test_holds_fast_path(self, tdd):
        assert tdd.holds(Fact("even", 10 ** 10, ()))


class TestAnswers:
    def test_expansion(self):
        tdd = TDD.from_text(EVEN)
        ans = tdd.answers("even(X)")
        assert sorted(s["X"] for s in ans.expand(8)) == [0, 2, 4, 6, 8]

    def test_membership(self):
        tdd = TDD.from_text(EVEN)
        ans = tdd.answers("even(X)")
        assert ans.contains({"X": 100})
        assert not ans.contains({"X": 101})


class TestCaching:
    def test_evaluation_cached(self):
        tdd = TDD.from_text(EVEN)
        assert tdd.evaluate() is tdd.evaluate()
        assert tdd.specification() is tdd.specification()

    def test_kwargs_bypass_cache(self):
        tdd = TDD.from_text(EVEN)
        result = tdd.evaluate(window=5)
        assert result is not tdd.evaluate()
        assert result.horizon == 5


class TestClassification:
    def test_travel(self, travel_program):
        tdd = TDD(travel_program.rules, travel_program.facts)
        cls = tdd.classification()
        assert cls.multi_separable and not cls.separable
        assert not cls.inflationary
        assert cls.forward
        assert cls.provably_tractable

    def test_path(self, path_program):
        tdd = TDD(path_program.rules, path_program.facts)
        cls = tdd.classification()
        assert cls.inflationary and not cls.multi_separable
        assert cls.provably_tractable

    def test_intractable_shape(self):
        # Neither inflationary nor multi-separable: no guarantee.
        tdd = TDD.from_text(
            "p(T+1, X) :- p(T, Y), swap(Y, X).\n"
            "p(0, a). swap(a, b). swap(b, a).")
        cls = tdd.classification()
        assert not cls.provably_tractable

    def test_period_accessor(self):
        tdd = TDD.from_text(EVEN)
        assert (tdd.period().b, tdd.period().p) == (0, 2)


class TestTooling:
    def test_analyze_via_facade(self, travel_program):
        tdd = TDD(travel_program.rules, travel_program.facts)
        report = tdd.analyze()
        assert report.multi_separable
        assert not report.warnings

    def test_timeline_via_facade(self):
        tdd = TDD.from_text(EVEN)
        art = tdd.timeline()
        assert "x.x" in art

    def test_describe_via_facade(self):
        tdd = TDD.from_text(EVEN)
        assert tdd.describe()["even"][()] == "0+2k"

    def test_timeline_with_bounds(self, travel_program):
        tdd = TDD(travel_program.rules, travel_program.facts)
        art = tdd.timeline(predicates=["plane"], until=20)
        assert "plane(hunter)" in art
