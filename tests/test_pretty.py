"""Round-trip tests for the pretty-printer."""

from repro.lang import (format_facts, format_program, format_rules,
                        parse_program)


def roundtrip(text: str):
    program = parse_program(text)
    rendered = format_program(program.rules, program.facts,
                              program.temporal_preds)
    reparsed = parse_program(rendered)
    return program, reparsed


class TestRoundTrip:
    def test_even_example(self):
        program, reparsed = roundtrip("even(T+2) :- even(T).\neven(0).")
        assert set(program.rules) == set(reparsed.rules)
        assert set(program.facts) == set(reparsed.facts)
        assert program.temporal_preds == reparsed.temporal_preds

    def test_travel_example(self):
        text = """
        plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
        offseason(T+365) :- offseason(T).
        plane(12, hunter).
        resort(hunter).
        offseason(92..95).
        """
        program, reparsed = roundtrip(text)
        assert set(program.rules) == set(reparsed.rules)
        assert set(program.facts) == set(reparsed.facts)

    def test_declarations_preserve_orphan_sorts(self):
        # 'up' is only temporal by declaration; the rendering must keep it.
        program, reparsed = roundtrip("@temporal up.\nup(3).")
        assert reparsed.temporal_preds == {"up"}

    def test_facts_sorted_deterministically(self):
        program = parse_program("b(2). b(1). a(1).")
        lines = format_facts(program.facts).splitlines()
        assert lines == ["a(1).", "b(1).", "b(2)."]

    def test_format_rules_preserves_order(self):
        program = parse_program("p(T+1) :- q(T).\nq(T+1) :- p(T).")
        lines = format_rules(program.rules).splitlines()
        assert lines[0].startswith("p(")
        assert lines[1].startswith("q(")

    def test_empty_program(self):
        assert format_program([], []) == ""
