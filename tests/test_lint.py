"""Tests for the span-aware diagnostics engine (repro.analysis)."""

import json

import pytest

from repro.analysis import (REGISTRY, Diagnostic, LintResult,
                            UnknownCodeError, count_by_severity, gate,
                            lint_text, max_severity, render_json,
                            render_sarif, render_text, run_checks,
                            severity_rank, source_excerpt)
from repro.lang import parse_program, parse_rules
from repro.lang.spans import Span


def codes(diagnostics):
    return {d.code for d in diagnostics}


def by_code(diagnostics, code):
    return [d for d in diagnostics if d.code == code]


class TestRegistry:
    def test_at_least_ten_distinct_checks(self):
        assert len(REGISTRY) >= 10

    def test_codes_are_stable_and_unique(self):
        assert all(code.startswith("TDD") for code in REGISTRY)
        names = [check.name for check in REGISTRY.values()]
        assert len(set(names)) == len(names)

    def test_every_check_has_metadata(self):
        for code, check in REGISTRY.items():
            assert check.code == code
            assert check.severity in ("info", "warning", "error")
            assert check.description


class TestSpans:
    def test_parsed_rules_carry_spans(self):
        program = parse_program(
            "p(T+1, X) :- q(T, X).\nq(0, a).")
        (rule,) = [r for r in program.rules if not r.is_fact]
        assert rule.span is not None
        assert rule.span.line == 1 and rule.span.column == 1
        assert rule.body[0].span.line == 1
        assert rule.body[0].span.column == 14

    def test_spans_do_not_affect_equality(self):
        with_span = parse_rules("p(T+1) :- p(T).")
        without = parse_rules("  p(T+1) :- p(T).")
        assert with_span[0] == without[0]
        assert hash(with_span[0]) == hash(without[0])
        assert with_span[0].span != without[0].span


class TestRangeRestriction:
    def test_names_variable_and_location(self):
        result = lint_text("p(T+1, X) :- q(T, Y).\nq(0, a).",
                           "prog.tdd")
        (diag,) = by_code(result.diagnostics, "TDD002")
        assert diag.severity == "error"
        assert "X" in diag.message
        assert diag.file == "prog.tdd"
        assert diag.span.line == 1 and diag.span.column == 1
        assert "prog.tdd:1:1" in str(diag)

    def test_unbound_temporal_variable(self):
        result = lint_text("p(T+1) :- q(S).\n@temporal q.\nq(0).")
        messages = [d.message for d in
                    by_code(result.diagnostics, "TDD002")]
        assert any("temporal variable T" in m for m in messages)

    def test_clean_rule_is_silent(self):
        result = lint_text("p(T+1, X) :- q(T, X).\nq(0, a).")
        assert not by_code(result.diagnostics, "TDD002")


class TestCheckCatalogue:
    def test_unsafe_negation(self):
        result = lint_text(
            "@temporal q. @temporal r. @temporal p.\n"
            "p(T) :- q(T), not r(T, X).")
        (diag,) = by_code(result.diagnostics, "TDD003")
        assert "X" in diag.message

    def test_arity_mismatch(self):
        # The text-level sort resolver rejects inconsistent arities
        # itself (TDD001); TDD004 guards programmatically-built rules.
        from repro.lang.atoms import Atom
        from repro.lang.rules import Rule
        from repro.lang.terms import TimeTerm, Var
        q1 = Atom("q", TimeTerm("T", 0), (Var("X"),))
        q2 = Atom("q", TimeTerm("T", 0), (Var("X"), Var("X")))
        rules = [
            Rule(Atom("p", TimeTerm("T", 1), (Var("X"),)), (q1,)),
            Rule(Atom("r", TimeTerm("T", 1), (Var("X"),)), (q2,)),
        ]
        diagnostics = run_checks(rules)
        (diag,) = by_code(diagnostics, "TDD004")
        assert "q" in diag.message and "arity" in diag.message

    def test_sort_clash(self):
        from repro.lang.atoms import Atom
        from repro.lang.rules import Rule
        from repro.lang.terms import TimeTerm, Var
        rule = Rule(
            Atom("p", TimeTerm("T", 1), ()),
            (Atom("q", TimeTerm("T", 0), ()),
             Atom("r", None, (Var("T"),))),
        )
        diagnostics = run_checks([rule])
        (diag,) = by_code(diagnostics, "TDD005")
        assert "T" in diag.message

    def test_not_stratifiable_reports_cycle(self):
        rules = parse_rules(
            "p(X) :- base(X), not q(X).\nq(X) :- p(X).")
        diagnostics = run_checks(rules)
        (diag,) = by_code(diagnostics, "TDD006")
        assert diag.severity == "error"
        assert "p -> q -> p" in diag.message

    def test_singleton_variable_skips_underscore(self):
        result = lint_text(
            "p(T+1) :- q(T, X).\nr(T+1) :- q(T, _skip).\n"
            "@temporal p. @temporal q. @temporal r.\nq(0, a).")
        diags = by_code(result.diagnostics, "TDD008")
        assert len(diags) == 1 and "X" in diags[0].message

    def test_duplicate_rule_up_to_renaming(self):
        result = lint_text(
            "p(T+1, X) :- q(T, X).\np(T+1, Y) :- q(T, Y).\nq(0, a).")
        (diag,) = by_code(result.diagnostics, "TDD009")
        assert "line 1" in diag.message
        assert diag.span.line == 2

    def test_subsumed_rule(self):
        result = lint_text(
            "p(T+1, X) :- q(T, X).\np(T+1, X) :- q(T, X), r(X).\n"
            "q(0, a). r(a).")
        (diag,) = by_code(result.diagnostics, "TDD010")
        assert diag.span.line == 2

    def test_subsumption_requires_equal_offsets(self):
        result = lint_text(
            "p(T+1, X) :- q(T, X).\np(T+2, X) :- q(T, X), r(X).\n"
            "q(0, a). r(a).")
        assert not by_code(result.diagnostics, "TDD010")
        assert not by_code(result.diagnostics, "TDD009")

    def test_unreachable_predicate(self):
        result = lint_text("p(T+1) :- p(T).\np(0).\nnoise(a, b).")
        (diag,) = by_code(result.diagnostics, "TDD012")
        assert "noise" in diag.message

    def test_class_membership_info(self):
        result = lint_text("even(T+2) :- even(T).\neven(0).")
        (diag,) = by_code(result.diagnostics, "TDD016")
        assert diag.severity == "info"
        assert "multi-separable" in diag.message

    def test_no_tractability_guarantee(self):
        result = lint_text(
            "p(T+1, X) :- p(T, Y), swap(Y, X).\n"
            "p(0, a). swap(a, b). swap(b, a).")
        (diag,) = by_code(result.diagnostics, "TDD017")
        assert diag.severity == "warning"


class TestParseStage:
    def test_syntax_error_becomes_tdd000(self):
        result = lint_text("p(T+1 X) :- q(T).", "broken.tdd")
        (diag,) = result.diagnostics
        assert diag.code == "TDD000" and diag.severity == "error"
        assert diag.span.line == 1 and diag.span.column == 7

    def test_sort_error_becomes_tdd001(self):
        result = lint_text("@temporal p.\np(a).")
        (diag,) = result.diagnostics
        assert diag.code == "TDD001" and diag.severity == "error"
        assert diag.span is not None
        assert "temporal argument" in diag.message

    def test_invalid_program_still_lints(self):
        # Semantic checks must not crash on programs the evaluator
        # would reject (range restriction fails here).
        result = lint_text("p(T+1, X) :- q(T, Y).")
        assert "TDD002" in codes(result.diagnostics)


class TestSelection:
    TEXT = "p(T+1, X) :- q(T, Y).\nq(0, a).\n"

    def test_select_restricts(self):
        result = lint_text(self.TEXT, select=["TDD002"])
        assert codes(result.diagnostics) == {"TDD002"}

    def test_select_accepts_names_and_case(self):
        result = lint_text(self.TEXT,
                           select=["range-restriction", "tdd008"])
        assert codes(result.diagnostics) == {"TDD002", "TDD008"}

    def test_ignore_removes(self):
        result = lint_text(self.TEXT, ignore=["TDD002"])
        assert "TDD002" not in codes(result.diagnostics)

    def test_unknown_code_raises(self):
        with pytest.raises(UnknownCodeError):
            lint_text(self.TEXT, select=["TDD999"])


class TestGate:
    def _diag(self, severity):
        return Diagnostic("TDD099", "x", severity, "m")

    def test_default_tolerates_warnings(self):
        assert not gate([self._diag("warning"), self._diag("info")])
        assert gate([self._diag("error")])

    def test_info_gate_fails_on_warnings(self):
        assert gate([self._diag("warning")], "info")
        assert not gate([self._diag("info")], "info")

    def test_severity_helpers(self):
        diags = [self._diag("info"), self._diag("warning")]
        assert max_severity(diags) == "warning"
        assert count_by_severity(diags) == {
            "info": 1, "warning": 1, "error": 0}
        assert severity_rank("error") > severity_rank("warning")


class TestRenderers:
    TEXT = "p(T+1, X) :- q(T, Y).\nq(0, a).\n"

    def _result(self):
        return lint_text(self.TEXT, "prog.tdd")

    def test_text_has_caret_excerpt(self):
        rendered = render_text([self._result()])
        assert "prog.tdd:1:1: error[TDD002]" in rendered
        assert "1 | p(T+1, X) :- q(T, Y)." in rendered
        assert "^" in rendered
        assert "error(s)" in rendered

    def test_source_excerpt_underlines_span(self):
        excerpt = source_excerpt("p(T+1) :- q(T).",
                                 Span(1, 11, 15))
        gutter, caret = excerpt.splitlines()
        assert gutter.endswith("p(T+1) :- q(T).")
        assert caret.endswith("^^^^")

    def test_json_structure(self):
        payload = json.loads(render_json([self._result()]))
        (entry,) = payload["files"]
        assert entry["path"] == "prog.tdd"
        codes_ = {d["code"] for d in entry["diagnostics"]}
        assert "TDD002" in codes_
        assert payload["summary"]["error"] == 1

    def test_sarif_2_1_0(self):
        sarif = json.loads(render_sarif([self._result()]))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        driver = run["tool"]["driver"]
        rule_ids = {r["id"] for r in driver["rules"]}
        results = run["results"]
        assert {r["ruleId"] for r in results} <= rule_ids
        (rr,) = [r for r in results if r["ruleId"] == "TDD002"]
        assert rr["level"] == "error"
        region = rr["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 1

    def test_sarif_info_maps_to_note(self):
        result = lint_text("even(T+2) :- even(T).\neven(0).")
        sarif = json.loads(render_sarif([result]))
        levels = {r["ruleId"]: r["level"]
                  for r in sarif["runs"][0]["results"]}
        assert levels.get("TDD016") == "note"

    def test_diagnostics_sorted_by_position(self):
        result = self._result()
        located = [d for d in result.diagnostics if d.span]
        keys = [(d.span.line, d.span.column) for d in located]
        assert keys == sorted(keys)

    def test_lint_result_errors(self):
        result = self._result()
        assert isinstance(result, LintResult)
        assert all(d.severity == "error" for d in result.errors)
        assert result.errors


class TestExamplesAreClean:
    """The shipped example programs must stay lint-clean (CI gates on
    this via `repro lint` over examples/programs)."""

    def test_examples_have_no_warnings_or_errors(self, examples_dir):
        for path in sorted(examples_dir.glob("*.tdd")):
            result = lint_text(path.read_text(), str(path))
            offenders = [d for d in result.diagnostics
                         if d.severity != "info"]
            assert not offenders, f"{path.name}: {offenders}"
