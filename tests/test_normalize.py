"""Tests for semi-normal/normal transformations (Section 3.1).

The key property: the transforms preserve the least model on the
*original* predicates (introduced predicates start with '_').
"""

from repro.lang import parse_program, parse_rules
from repro.lang.rules import Rule
from repro.lang.atoms import Atom
from repro.lang.terms import TimeTerm, Var
from repro.temporal import (TemporalDatabase, fixpoint, is_normal,
                            is_semi_normal, to_normal, to_semi_normal)


def original_facts(store, predicates):
    return {f for f in store.facts() if f.pred in predicates}


def models_agree(rules_a, rules_b, facts, horizon):
    db = TemporalDatabase(facts)
    preds = {a.pred for r in rules_a for a in r.atoms()}
    preds.update(f.pred for f in facts)
    left = fixpoint(rules_a, db, horizon)
    right = fixpoint(rules_b, db, horizon)
    return (original_facts(left, preds) == original_facts(right, preds))


class TestSemiNormal:
    def test_already_semi_normal_untouched(self, travel_program):
        assert to_semi_normal(travel_program.rules) == \
            list(travel_program.rules)

    def test_two_temporal_variables_split(self):
        # p holds whenever q holds now and r held at *some* time.
        rule = Rule(
            Atom("p", TimeTerm("T", 1), (Var("X"),)),
            (Atom("q", TimeTerm("T", 0), (Var("X"),)),
             Atom("r", TimeTerm("S", 0), (Var("X"),))),
        )
        transformed = to_semi_normal([rule])
        assert is_semi_normal(transformed)
        assert len(transformed) == 2

    def test_two_temporal_variables_model_preserved(self):
        rule = Rule(
            Atom("p", TimeTerm("T", 1), (Var("X"),)),
            (Atom("q", TimeTerm("T", 0), (Var("X"),)),
             Atom("r", TimeTerm("S", 0), (Var("X"),))),
        )
        program = parse_program("q(2, a). q(3, b). r(7, a).\n"
                                "@temporal q. @temporal r. @temporal p.")
        transformed = to_semi_normal([rule])
        db = TemporalDatabase(program.facts)
        direct = fixpoint([rule], db, 10)
        indirect = fixpoint(transformed, db, 10)
        want = {f for f in direct.facts() if f.pred == "p"}
        got = {f for f in indirect.facts() if f.pred == "p"}
        assert want == got
        # r(7, a) makes p(3, a) derivable; b never satisfies r.
        assert ("p", 3, ("a",)) in {(f.pred, f.time, f.args) for f in got}
        assert all(f.args != ("b",) for f in got)


class TestNormal:
    def test_travel_rules_normalized(self, travel_program):
        normal = to_normal(travel_program.rules)
        assert is_normal(normal)

    def test_depth_one_untouched(self, even_program):
        # even(T+2) has depth 2; a depth-1 program stays as-is.
        rules = parse_rules("p(T+1) :- p(T).")
        assert to_normal(rules) == list(rules)

    def test_even_model_preserved(self, even_program):
        normal = to_normal(even_program.rules)
        assert is_normal(normal)
        assert models_agree(even_program.rules, normal,
                            even_program.facts, horizon=20)

    def test_travel_model_preserved(self, travel_program):
        normal = to_normal(travel_program.rules)
        assert models_agree(travel_program.rules, normal,
                            travel_program.facts, horizon=50)

    def test_head_lower_bound_preserved(self):
        # p(T+3) :- q(T) derives p only at times >= 3; the copy-chain
        # normalization must not create earlier derivations.
        program = parse_program("p(T+3) :- q(T).\nq(0). q(5).\n"
                                "@temporal p. @temporal q.")
        normal = to_normal(program.rules)
        assert is_normal(normal)
        db = TemporalDatabase(program.facts)
        store = fixpoint(normal, db, 12)
        p_times = sorted(store.times("p"))
        assert p_times == [3, 8]

    def test_deep_body_atom_next_chain(self):
        # q(T) :- p(T+2): a backward rule with depth 2.
        program = parse_program(
            "@temporal q.\nq(T) :- p(T+2).\np(4). p(7).")
        normal = to_normal(program.rules)
        assert is_normal(normal)
        db = TemporalDatabase(program.facts)
        direct = fixpoint(program.rules, db, 12)
        via_normal = fixpoint(normal, db, 12)
        assert sorted(direct.times("q")) == sorted(via_normal.times("q"))
        assert sorted(direct.times("q")) == [2, 5]

    def test_mixed_offsets_forward_rule(self):
        program = parse_program(
            "p(T+4, X) :- p(T, X), q(T+1, X).\n"
            "p(0, a).\nq(1..9, a).\n@temporal q.")
        normal = to_normal(program.rules)
        assert is_normal(normal)
        assert models_agree(program.rules, normal, program.facts,
                            horizon=16)

    def test_data_variables_carried_through_chain(self):
        program = parse_program(
            "p(T+3, X, Y) :- q(T, X, Y).\nq(1, a, b).\n"
            "@temporal p. @temporal q.")
        normal = to_normal(program.rules)
        db = TemporalDatabase(program.facts)
        store = fixpoint(normal, db, 8)
        from repro.lang.atoms import Fact
        assert Fact("p", 4, ("a", "b")) in store
