"""Differential property suite: the spec cache never changes answers.

For ≥100 hypothesis-generated forward definite programs, three query
paths must agree exactly:

1. **cached spec** — the program is rendered to text, served through a
   :class:`~repro.serve.QueryService` backed by a persistent
   :class:`~repro.serve.SpecCache` (so answers flow through program
   normalization, content keying, JSON serialization, SQLite, and
   deserialization), and
2. **fresh spec** — :func:`repro.core.compute_specification` straight
   from the in-memory rules/database, and
3. **direct model-prefix evaluation** — the reference evaluator of
   :mod:`repro.core.queries` on a windowed BT fixpoint.

Open queries additionally check :meth:`AnswerSet.contains` against the
model prefix point-by-point — the finite representation must decide the
infinite answer set exactly as the model does.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import TDD, answers, answers_on_model, compute_specification
from repro.core.queries import AtomQ, parse_query
from repro.core.serialize import spec_to_dict
from repro.lang.atoms import Atom, Fact
from repro.lang.rules import Rule
from repro.lang.terms import Const, TimeTerm, Var
from repro.serve import (QueryRequest, QueryService, SpecCache,
                         normalized_program, program_key)
from repro.temporal import TemporalDatabase, bt_evaluate

HORIZON = 14

DIFF_SETTINGS = settings(max_examples=100, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])
AUX_SETTINGS = settings(max_examples=40, deadline=None,
                        suppress_health_check=[HealthCheck.too_slow])

CONSTANTS = ["a", "b"]
TEMPORAL_PREDS = {"p": 1, "q": 1, "r": 0}
NT_PRED = ("base", 1)


# ---------------------------------------------------------------------------
# Strategy: forward definite semi-normal programs (same family as the
# cross-engine differential harness)
# ---------------------------------------------------------------------------

@st.composite
def _rule(draw) -> Rule:
    head_offset = draw(st.integers(0, 2))

    def data_args(arity):
        return tuple(
            Var("X") if draw(st.booleans())
            else Const(draw(st.sampled_from(CONSTANTS)))
            for _ in range(arity)
        )

    body = []
    for _ in range(draw(st.integers(1, 2))):
        pred = draw(st.sampled_from(sorted(TEMPORAL_PREDS)))
        offset = draw(st.integers(0, head_offset))
        body.append(Atom(pred, TimeTerm("T", offset),
                         data_args(TEMPORAL_PREDS[pred])))
    if draw(st.booleans()):
        body.append(Atom(NT_PRED[0], None, data_args(NT_PRED[1])))

    head_pred = draw(st.sampled_from(sorted(TEMPORAL_PREDS)))
    body_vars = sorted({v.name for a in body for v in a.data_variables()})
    head_args = tuple(
        (Var(draw(st.sampled_from(body_vars))) if body_vars
         and draw(st.booleans())
         else Const(draw(st.sampled_from(CONSTANTS))))
        for _ in range(TEMPORAL_PREDS[head_pred])
    )
    return Rule(Atom(head_pred, TimeTerm("T", head_offset), head_args),
                tuple(body))


@st.composite
def programs(draw):
    rules = draw(st.lists(_rule(), min_size=1, max_size=3))
    facts = []
    for _ in range(draw(st.integers(1, 5))):
        pred = draw(st.sampled_from(sorted(TEMPORAL_PREDS)))
        args = tuple(draw(st.sampled_from(CONSTANTS))
                     for _ in range(TEMPORAL_PREDS[pred]))
        facts.append(Fact(pred, draw(st.integers(0, 4)), args))
    for _ in range(draw(st.integers(0, 2))):
        facts.append(Fact(NT_PRED[0], None,
                          (draw(st.sampled_from(CONSTANTS)),)))
    return rules, facts


@st.composite
def ground_goals(draw):
    pred = draw(st.sampled_from(sorted(TEMPORAL_PREDS)))
    args = tuple(draw(st.sampled_from(CONSTANTS))
                 for _ in range(TEMPORAL_PREDS[pred]))
    return Fact(pred, draw(st.integers(0, HORIZON)), args)


# ---------------------------------------------------------------------------
# Shared service: one persistent cache across all generated programs —
# distinct programs hash to distinct keys, so sharing is safe and also
# exercises the cache under a realistic many-program population.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def service(tmp_path_factory) -> QueryService:
    path = tmp_path_factory.mktemp("serve-diff") / "specs.sqlite"
    return QueryService(cache=SpecCache(path, memory_size=8))


def _program_text(rules, facts) -> str:
    tdd = TDD(rules, facts)
    return normalized_program(tdd.rules, tdd.database.facts(),
                              tdd.temporal_preds)


# ---------------------------------------------------------------------------
# Ground queries: cached == fresh == direct (the CI floor: 100 examples)
# ---------------------------------------------------------------------------

class TestGroundAgreement:
    @DIFF_SETTINGS
    @given(programs(), st.lists(ground_goals(), min_size=1, max_size=4))
    def test_cached_fresh_and_direct_agree(self, service, program,
                                           goals):
        rules, facts = program
        text = _program_text(rules, facts)
        database = TemporalDatabase(facts)
        fresh = compute_specification(rules, database)
        direct = bt_evaluate(rules, database, window=HORIZON)

        requests = [QueryRequest(program=text, query=str(goal.to_atom()),
                                 kind="ask")
                    for goal in goals]
        responses = service.serve_batch(requests)

        for goal, response in zip(goals, responses):
            assert response.ok, response.error
            assert not response.degraded
            via_cache = response.answer
            via_fresh = fresh.holds(goal)
            via_model = direct.holds(goal)
            assert via_cache == via_fresh == via_model, (
                f"{goal}: cache={via_cache} fresh={via_fresh} "
                f"model={via_model} for\n{text}")


# ---------------------------------------------------------------------------
# Open queries: answer sets agree, and contains() decides membership
# exactly as the model prefix does
# ---------------------------------------------------------------------------

def _as_set(substitutions) -> set:
    return {frozenset(sub.items()) for sub in substitutions}


class TestOpenQueryAgreement:
    @AUX_SETTINGS
    @given(programs())
    def test_answer_sets_and_contains_agree(self, service, program):
        rules, facts = program
        text = _program_text(rules, facts)
        tdd = TDD.from_text(text)
        database = TemporalDatabase(facts)
        fresh = compute_specification(rules, database)
        query = parse_query("p(S, X0)", tdd.temporal_preds)

        # Path 1: through the persistent cache (spec deserialized).
        spec, _ = service.specification(tdd)
        via_cache = answers(query, spec)
        # Path 2: fresh spec.
        via_fresh = answers(query, fresh)
        assert via_cache.variables == via_fresh.variables
        assert via_cache.substitutions == via_fresh.substitutions
        assert (via_cache.b, via_cache.p) == (via_fresh.b, via_fresh.p)

        # Path 3: direct model-prefix enumeration.
        window = max(HORIZON, fresh.b + fresh.p)
        direct = bt_evaluate(rules, database, window=window)
        concrete = answers_on_model(query, direct, time_bound=HORIZON)
        expanded = list(via_cache.expand(HORIZON))
        assert _as_set(concrete) == _as_set(expanded)

        # contains() spot checks: every candidate point, both ways.
        for t in range(HORIZON + 1):
            for const in CONSTANTS:
                candidate = {"S": t, "X0": const}
                in_model = direct.store.contains("p", t, (const,))
                assert via_cache.contains(candidate) == in_model, (
                    f"contains({candidate}) disagrees with the model "
                    f"for\n{text}")

    @AUX_SETTINGS
    @given(programs())
    def test_spec_round_trip_is_exact(self, service, program):
        """The cached spec is bit-identical to the fresh one (as dicts):
        serialization can never perturb the finite object."""
        rules, facts = program
        text = _program_text(rules, facts)
        tdd = TDD.from_text(text)
        spec, _ = service.specification(tdd)
        fresh = compute_specification(rules, TemporalDatabase(facts))
        assert spec_to_dict(spec) == spec_to_dict(fresh)


# ---------------------------------------------------------------------------
# Keying: normalization invariance and change sensitivity
# ---------------------------------------------------------------------------

class TestContentKeys:
    @AUX_SETTINGS
    @given(programs())
    def test_key_survives_reordering_and_reparsing(self, program):
        rules, facts = program
        tdd = TDD(rules, facts)
        text = _program_text(rules, facts)
        reparsed = TDD.from_text(text)
        key_objects = program_key(tdd.rules, tdd.database.facts(),
                                  tdd.temporal_preds)
        key_reparsed = program_key(reparsed.rules,
                                   reparsed.database.facts(),
                                   reparsed.temporal_preds)
        key_shuffled = program_key(tdd.rules,
                                   reversed(list(tdd.database.facts())),
                                   tdd.temporal_preds)
        assert key_objects == key_reparsed == key_shuffled

    @AUX_SETTINGS
    @given(programs(), ground_goals())
    def test_key_changes_with_the_database(self, program, extra):
        rules, facts = program
        tdd = TDD(rules, facts)
        grown = TDD(rules, list(facts) + [Fact(extra.pred,
                                               extra.time + 50,
                                               extra.args)])
        assert (program_key(tdd.rules, tdd.database.facts(),
                            tdd.temporal_preds)
                != program_key(grown.rules, grown.database.facts(),
                               grown.temporal_preds))


def test_ground_goal_atoms_parse_back():
    """str(Fact.to_atom()) must be valid query syntax (the differential
    suite relies on it to route goals through the service)."""
    goal = Fact("p", 3, ("a",))
    query = parse_query(str(goal.to_atom()), frozenset({"p"}))
    assert isinstance(query, AtomQ)
    assert query.atom.to_fact() == goal
